//! # wlp — Parallelizing WHILE Loops for Multiprocessor Systems
//!
//! A full Rust reproduction of Rauchwerger & Padua's framework for
//! automatically transforming WHILE loops (and DO loops with conditional
//! exits) for parallel execution: dispatcher parallelization
//! (Induction-1/2, parallel prefix, General-1/2/3), undo of overshot
//! iterations, speculative execution with the run-time PD dependence test,
//! multi-recurrence loop distribution/fusion, the cost model, and the
//! memory-control strategies — together with every substrate the paper's
//! evaluation needs (linked lists, a threaded DOALL runtime, a deterministic
//! multiprocessor simulator, a sparse-matrix package, and the five
//! benchmark loops).
//!
//! This facade crate re-exports the workspace members under stable paths:
//!
//! * [`list`] — arena linked lists (the general-recurrence dispatcher).
//! * [`runtime`] — threaded DOALL/QUIT/prefix/window substrate.
//! * [`sim`] — deterministic discrete-event multiprocessor simulator.
//! * [`pd`] — the Privatizing DOALL run-time dependence test.
//! * [`sparse`] — sparse-matrix formats, generators, pivot search.
//! * [`core`] — the paper's parallelization strategies and machinery.
//! * [`ir`] — loop IR, dependence analysis, distribution/fusion.
//! * [`workloads`] — the five loops of the paper's evaluation.
//! * [`obs`] — structured tracing/profiling: one event schema shared by
//!   the runtime and the simulator, profile aggregation, Chrome traces.
//! * [`fault`] — deterministic fault injection exercising the recovery
//!   paths: seeded panic plans and linked-list corruption.
//! * [`serve`] — the `wlp-serve` daemon: multi-tenant NDJSON service
//!   with a certificate cache and per-tenant admission control.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use wlp::core::{general::{self, GeneralConfig}};
//! use wlp::list::ListArena;
//! use wlp::runtime::Pool;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! // A WHILE loop traversing a linked list (Figure 1(b) of the paper):
//! // the dispatcher is a general recurrence (pointer chase), the
//! // terminator is remainder-invariant (null pointer), and the body is
//! // independent across iterations — so it parallelizes with General-3.
//! let list = ListArena::from_values_shuffled(0u64..1000, 42);
//! let out: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
//! let pool = Pool::new(4);
//! let result = general::general3(&pool, &list, GeneralConfig::default(), |i, node| {
//!     out[i].store(list[node] * 2, Ordering::Relaxed);
//! });
//! assert_eq!(result.iterations, 1000);
//! assert_eq!(out[7].load(Ordering::Relaxed), 14);
//! ```

// Compile and run the README's code blocks as doctests so the quickstart
// can never drift from the actual API.
#[doc = include_str!("../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;

pub use wlp_core as core;
pub use wlp_fault as fault;
pub use wlp_ir as ir;
pub use wlp_list as list;
pub use wlp_obs as obs;
pub use wlp_pd as pd;
pub use wlp_runtime as runtime;
pub use wlp_serve as serve;
pub use wlp_sim as sim;
pub use wlp_sparse as sparse;
pub use wlp_workloads as workloads;
