//! Static-vs-dynamic agreement: every verdict `wlp-analyze` certifies must
//! survive contact with the dynamic PD machinery on concrete executions.
//!
//! Random loop bodies are generated, concretized for a handful of
//! iterations with a seed-derived adversarial resolver for `Unknown`
//! subscripts, and each static claim is cross-validated against the
//! oracle + shadow via [`wlp_pd::crosscheck`]:
//!
//! * a **privatizable** scalar/array must pass the privatized-DOALL check
//!   on its own access log;
//! * a **reduction** accumulator must be touched by its own statement
//!   only;
//! * a **remainder-invariant** terminator's exit reads must never hit an
//!   address the remainder writes;
//! * a **CertifiedDoall** loop's remainder log must pass the DOALL check
//!   outright — no resolver may be able to break it;
//! * a **SpeculateBounded** loop's *certified* partition (everything
//!   outside `uncertain_stmts`) must be conflict-free, since the runtime
//!   leaves exactly that partition uninstrumented, and its dynamic write
//!   counts must respect the certified per-iteration bound.
//!
//! A falsified certificate is a hard test failure.

use proptest::prelude::*;
use std::collections::BTreeSet;
use wlp_analyze::{
    analyze, array_log, remainder_log, scalar_log, CertVerdict, Owner, RecurrenceRole,
};
use wlp_core::taxonomy::TerminatorClass;
use wlp_ir::ir::examples;
use wlp_ir::{ArrayId, LoopIr, Stmt, Subscript, UpdateOp, VarId, WRef};
use wlp_pd::{crosscheck, Access, Claims};

const INDUCTION: VarId = VarId(7);

fn subscript_strategy() -> impl Strategy<Value = Subscript> {
    prop_oneof![
        (0i64..3).prop_map(Subscript::Const),
        ((1i64..3), (-1i64..3)).prop_map(|(coeff, offset)| Subscript::Affine { coeff, offset }),
        Just(Subscript::Unknown),
    ]
}

fn wref_strategy() -> impl Strategy<Value = WRef> {
    prop_oneof![
        (0u32..3).prop_map(|v| WRef::Scalar(VarId(v))),
        ((0u32..2), subscript_strategy()).prop_map(|(a, s)| WRef::Element(ArrayId(a), s)),
    ]
}

/// Arbitrary small bodies: one exit test, 1–3 assignments, and (usually)
/// the canonical `i = i + 1` dispatcher the exit predicate reads.
fn body_strategy() -> impl Strategy<Value = LoopIr> {
    (
        prop::collection::vec(wref_strategy(), 0..2),
        prop::collection::vec(
            (
                prop::collection::vec(wref_strategy(), 1..3),
                prop::collection::vec(wref_strategy(), 0..3),
            ),
            1..4,
        ),
        any::<bool>(),
    )
        .prop_map(|(mut exit_reads, assigns, with_induction)| {
            let mut l = LoopIr::new();
            if with_induction {
                exit_reads.push(WRef::Scalar(INDUCTION));
            }
            l.push(Stmt::exit_test(exit_reads));
            for (writes, reads) in assigns {
                l.push(Stmt::assign(writes, reads));
            }
            if with_induction {
                l.push(Stmt::update(INDUCTION, UpdateOp::AddConst, vec![]));
            }
            l
        })
}

/// Deterministic `Unknown` resolver: a small address space (0..5) derived
/// from the seed, so collisions — the adversarial case — are common.
fn resolver(seed: u64) -> impl FnMut(usize, usize, ArrayId) -> i64 {
    move |stmt, iter, a| {
        let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
        for x in [stmt as u64, iter as u64, a.0 as u64 + 1] {
            h = (h ^ x).wrapping_mul(0x100_0000_01b3).rotate_left(17);
        }
        (h % 5) as i64
    }
}

fn addr_of(acc: &Access) -> usize {
    match *acc {
        Access::Read(e) | Access::Write(e) => e,
    }
}

/// Runs one body under one resolver and checks every static claim.
fn check_agreement(body: &LoopIr, seed: u64, iters: usize) -> Result<(), String> {
    let a = analyze(body);
    let log = wlp_analyze::concretize(body, iters, resolver(seed));
    let private = |o: Owner| match o {
        Owner::Scalar(v) => a.privatization.scalars.contains(&v),
        Owner::Array(ar) => a.privatization.arrays.contains(&ar),
    };

    // privatization claims, one location at a time
    for v in &a.privatization.scalars {
        crosscheck(
            &scalar_log(&log, *v),
            None,
            Claims {
                doall: false,
                privatized_doall: true,
            },
        )
        .map_err(|f| format!("scalar v{} privatization falsified: {f}", v.0))?;
    }
    for arr in &a.privatization.arrays {
        crosscheck(
            &array_log(&log, *arr),
            None,
            Claims {
                doall: false,
                privatized_doall: true,
            },
        )
        .map_err(|f| format!("array A{} privatization falsified: {f}", arr.0))?;
    }

    // a reduction accumulator belongs to its statement alone
    for r in a
        .recurrences
        .iter()
        .filter(|r| r.role == RecurrenceRole::Reduction)
    {
        for (i, iter_log) in log.tagged.iter().enumerate() {
            for (stmt, acc) in iter_log {
                if log.owners[addr_of(acc)] == Owner::Scalar(r.var) && *stmt != r.stmt {
                    return Err(format!(
                        "iteration {i}: reduction accumulator v{} touched by stmt {stmt}",
                        r.var.0
                    ));
                }
            }
        }
    }

    // remainder-invariant: the exit predicate never reads a remainder-written address
    if a.terminator == TerminatorClass::RemainderInvariant {
        let exit_stmts: BTreeSet<usize> = body.exit_tests().collect();
        let update_stmts: BTreeSet<usize> = body.updates().collect();
        let mut exit_reads = BTreeSet::new();
        let mut rem_writes = BTreeSet::new();
        for iter_log in &log.tagged {
            for (stmt, acc) in iter_log {
                match acc {
                    Access::Read(e) if exit_stmts.contains(stmt) => {
                        exit_reads.insert(*e);
                    }
                    Access::Write(e)
                        if !update_stmts.contains(stmt) && !exit_stmts.contains(stmt) =>
                    {
                        rem_writes.insert(*e);
                    }
                    _ => {}
                }
            }
        }
        if !exit_reads.is_disjoint(&rem_writes) {
            return Err(format!(
                "RI falsified: exit reads {exit_reads:?} intersect remainder writes {rem_writes:?}"
            ));
        }
    }

    match a.certificate.verdict {
        CertVerdict::CertifiedDoall => {
            let rem = remainder_log(body, &log, private);
            crosscheck(
                &rem,
                None,
                Claims {
                    doall: true,
                    privatized_doall: false,
                },
            )
            .map_err(|f| format!("CertifiedDoall falsified: {f}"))?;
        }
        CertVerdict::SpeculateBounded => {
            // dynamic write counts respect the certified bounds (the
            // dispatcher's own writes are materialized, not shadowed)
            let updates: BTreeSet<usize> = body.updates().collect();
            for (i, iter_log) in log.tagged.iter().enumerate() {
                let w = iter_log
                    .iter()
                    .filter(|(stmt, acc)| {
                        matches!(acc, Access::Write(_)) && !updates.contains(stmt)
                    })
                    .count() as u64;
                if w > a.certificate.writes_per_iter {
                    return Err(format!(
                        "iteration {i} performed {w} writes > certified bound {}",
                        a.certificate.writes_per_iter
                    ));
                }
            }
            // the certified (unshadowed) partition must be conflict-free:
            // the runtime instruments only `uncertain_stmts`
            let uncertain: BTreeSet<usize> =
                a.certificate.uncertain_stmts.iter().copied().collect();
            let update_stmts: BTreeSet<usize> = body.updates().collect();
            let update_vars: BTreeSet<VarId> = update_stmts
                .iter()
                .flat_map(|&s| body.stmts[s].writes.iter())
                .filter_map(|w| match w {
                    WRef::Scalar(v) => Some(*v),
                    WRef::Element(..) => None,
                })
                .collect();
            let certified = log.filter(|stmt, _, owner| {
                if update_stmts.contains(&stmt) || uncertain.contains(&stmt) {
                    return false;
                }
                if let Owner::Scalar(v) = owner {
                    if update_vars.contains(&v) {
                        return false;
                    }
                }
                !private(owner)
            });
            crosscheck(
                &certified,
                None,
                Claims {
                    doall: true,
                    privatized_doall: false,
                },
            )
            .map_err(|f| format!("certified partition conflicts (must be shadow-free): {f}"))?;
        }
        // a provable carried dependence: nothing parallel is claimed
        CertVerdict::CertifiedSequential => {}
    }

    Ok(())
}

proptest! {
    #[test]
    fn random_loops_never_falsify_a_certificate(
        body in body_strategy(),
        seed in any::<u64>(),
        iters in 2usize..7,
    ) {
        if let Err(e) = check_agreement(&body, seed, iters) {
            prop_assert!(false, "{e}\nbody: {body:?}");
        }
    }

    #[test]
    fn paper_examples_never_falsify_a_certificate(seed in any::<u64>()) {
        for (name, body) in [
            ("figure1b", examples::figure1b_list_traversal()),
            ("figure1e", examples::figure1e_affine()),
            ("figure5a", examples::figure5a_independent()),
            ("figure5b", examples::figure5b_swap()),
            ("figure5c", examples::figure5c_recurrence()),
            ("gather_scatter", examples::gather_scatter_mixed()),
            ("track", examples::track_style_unknown()),
        ] {
            if let Err(e) = check_agreement(&body, seed, 6) {
                prop_assert!(false, "{name}: {e}");
            }
        }
    }
}

/// The certificate's coverage claim, stated sharply: removing the
/// uncertain accesses from any loop's log always leaves a valid DOALL.
/// (For CertifiedDoall loops the uncertain set is empty, so this is the
/// full remainder; for SpeculateBounded it is the unshadowed part.)
#[test]
fn figure5b_certificate_has_no_uncertainty() {
    let body = examples::figure5b_swap();
    let a = analyze(&body);
    assert_eq!(a.certificate.verdict, CertVerdict::CertifiedDoall);
    assert!(a.certificate.uncertain_stmts.is_empty());
    assert_eq!(a.certificate.write_budget(1000), 0);
}

#[test]
fn mixed_loop_certificate_bounds_only_the_indirect_array() {
    let a = analyze(&examples::gather_scatter_mixed());
    assert_eq!(a.certificate.verdict, CertVerdict::SpeculateBounded);
    assert_eq!(a.certificate.uncertain_arrays, vec![ArrayId(0)]);
    assert_eq!(a.certificate.writes_per_iter, 2);
    assert_eq!(a.certificate.uncertain_writes_per_iter, 1);
    // the certified dense write halves the undo budget
    assert!(a.certificate.write_budget(100) < a.certificate.naive_write_budget(100));
}

#[test]
fn track_style_certificate_keeps_every_write_shadowed() {
    // a single indirect write: nothing is certifiable, bound == naive
    let a = analyze(&examples::track_style_unknown());
    assert_eq!(a.certificate.verdict, CertVerdict::SpeculateBounded);
    assert_eq!(
        a.certificate.write_budget(100),
        a.certificate.naive_write_budget(100)
    );
}
