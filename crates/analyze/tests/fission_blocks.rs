//! Per-block certificate agreement over the `examples/loops` corpus:
//! every [`BlockCertificate`] and [`DoacrossEdge`] the fission certifier
//! emits must survive the dynamic PD oracle on concrete executions.
//!
//! For each corpus loop the body is concretized under several adversarial
//! `Unknown` resolvers, and each block's claim is checked on the block's
//! own slice of the access log:
//!
//! * a **CertifiedDoall** block's log (dispatcher and block-privatized
//!   locations excluded, as at run time) must pass the DOALL check;
//! * a **CertifiedSequential** block must *fail* it — the carried
//!   dependence the certificate claims has to be real, or the sequential
//!   verdict is too weak;
//! * a **SpeculateBounded** block's dynamic write counts must respect its
//!   certified per-iteration bound, and its certified (unshadowed)
//!   partition must be conflict-free;
//! * every cross-block conflict the log exhibits must span at least the
//!   certified DOACROSS sync distance, and the corpus must actually
//!   materialize some edges (the checks are not allowed to be vacuous).

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use wlp_analyze::{
    analyze, concretize, fission_plan, masked_body, CertVerdict, ConcreteLog, FissionPlan, Owner,
};
use wlp_ir::frontend::{lower, parse_program};
use wlp_ir::{ArrayId, LoopIr, VarId, WRef};
use wlp_pd::{crosscheck, Access, Claims};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/loops")
}

fn corpus_bodies() -> Vec<(String, LoopIr)> {
    let mut out = Vec::new();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus dir")
        .filter_map(|entry| {
            let p = entry.expect("read corpus dir").path();
            (p.extension().is_some_and(|x| x == "wlp")).then_some(p)
        })
        .collect();
    paths.sort();
    for p in paths {
        let name = p.file_stem().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&p).expect("read corpus source");
        let prog = parse_program(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let body = lower(&prog).unwrap_or_else(|e| panic!("{name}: {e:?}"));
        out.push((name, body));
    }
    assert!(out.len() >= 5, "corpus shrank to {} loops", out.len());
    out
}

/// Deterministic adversarial resolver: a small address space so
/// `Unknown`-subscript collisions are common (same shape as the
/// whole-loop agreement suite).
fn resolver(seed: u64) -> impl FnMut(usize, usize, ArrayId) -> i64 {
    move |stmt, iter, a| {
        let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
        for x in [stmt as u64, iter as u64, a.0 as u64 + 1] {
            h = (h ^ x).wrapping_mul(0x100_0000_01b3).rotate_left(17);
        }
        (h % 5) as i64
    }
}

fn update_vars(body: &LoopIr, update_stmts: &BTreeSet<usize>) -> BTreeSet<VarId> {
    update_stmts
        .iter()
        .flat_map(|&s| body.stmts[s].writes.iter())
        .filter_map(|w| match w {
            WRef::Scalar(v) => Some(*v),
            WRef::Element(..) => None,
        })
        .collect()
}

/// Checks every block certificate of one loop on one concrete log.
/// Returns the number of DOACROSS edges that materialized dynamically.
fn check_blocks(
    name: &str,
    body: &LoopIr,
    plan: &FissionPlan,
    log: &ConcreteLog,
) -> Result<usize, String> {
    let updates: BTreeSet<usize> = body.updates().collect();
    let dispatcher: BTreeSet<VarId> = update_vars(body, &updates);

    for b in &plan.blocks {
        // the block runs under its own certificate: re-derive the masked
        // body's privatization, exactly what certify_core saw
        let a = analyze(&masked_body(body, &b.stmts));
        let private = |o: Owner| match o {
            Owner::Scalar(v) => a.privatization.scalars.contains(&v),
            Owner::Array(ar) => a.privatization.arrays.contains(&ar),
        };
        let members: BTreeSet<usize> = b.stmts.iter().copied().collect();
        let block_log = log.filter(|stmt, _, owner| {
            members.contains(&stmt)
                && !updates.contains(&stmt)
                && !matches!(owner, Owner::Scalar(v) if dispatcher.contains(&v))
                && !private(owner)
        });

        match b.certificate.verdict {
            CertVerdict::CertifiedDoall => {
                crosscheck(
                    &block_log,
                    None,
                    Claims {
                        doall: true,
                        privatized_doall: false,
                    },
                )
                .map_err(|f| format!("{name}: block #{} CertifiedDoall falsified: {f}", b.index))?;
            }
            CertVerdict::CertifiedSequential => {
                if crosscheck(
                    &block_log,
                    None,
                    Claims {
                        doall: true,
                        privatized_doall: false,
                    },
                )
                .is_ok()
                {
                    return Err(format!(
                        "{name}: block #{} is certified sequential, but its log passes \
                         the DOALL check — the claimed carried dependence never ran",
                        b.index
                    ));
                }
            }
            CertVerdict::SpeculateBounded => {
                for (i, iter_log) in log.tagged.iter().enumerate() {
                    let w = iter_log
                        .iter()
                        .filter(|(stmt, acc)| {
                            members.contains(stmt)
                                && !updates.contains(stmt)
                                && matches!(acc, Access::Write(_))
                        })
                        .count() as u64;
                    if w > b.certificate.writes_per_iter {
                        return Err(format!(
                            "{name}: block #{} iteration {i} performed {w} writes > \
                             certified bound {}",
                            b.index, b.certificate.writes_per_iter
                        ));
                    }
                }
                let uncertain: BTreeSet<usize> =
                    b.certificate.uncertain_stmts.iter().copied().collect();
                let certified = log.filter(|stmt, _, owner| {
                    members.contains(&stmt)
                        && !updates.contains(&stmt)
                        && !uncertain.contains(&stmt)
                        && !matches!(owner, Owner::Scalar(v) if dispatcher.contains(&v))
                        && !private(owner)
                });
                crosscheck(
                    &certified,
                    None,
                    Claims {
                        doall: true,
                        privatized_doall: false,
                    },
                )
                .map_err(|f| {
                    format!(
                        "{name}: block #{} certified partition conflicts \
                         (the runtime leaves it unshadowed): {f}",
                        b.index
                    )
                })?;
            }
        }
    }

    // DOACROSS edges: every dynamic cross-block conflict must span at
    // least the certified sync distance. The censored view the edges were
    // derived from excludes dispatcher and whole-loop-privatized
    // locations, so the dynamic check does too.
    let whole = analyze(body);
    let censored = |o: Owner| match o {
        Owner::Scalar(v) => whole.privatization.scalars.contains(&v) || dispatcher.contains(&v),
        Owner::Array(ar) => whole.privatization.arrays.contains(&ar),
    };
    let mut materialized = 0usize;
    for e in &plan.edges {
        let member_of =
            |b: usize| -> BTreeSet<usize> { plan.blocks[b].stmts.iter().copied().collect() };
        let from = member_of(e.from_block);
        let to = member_of(e.to_block);
        // addr → per-endpoint (iteration, is_write) touch lists
        type Touches = (Vec<(usize, bool)>, Vec<(usize, bool)>);
        let mut touches: std::collections::HashMap<usize, Touches> =
            std::collections::HashMap::new();
        for (i, iter_log) in log.tagged.iter().enumerate() {
            for (stmt, acc) in iter_log {
                if updates.contains(stmt) {
                    continue;
                }
                let (addr, is_write) = match *acc {
                    Access::Read(x) => (x, false),
                    Access::Write(x) => (x, true),
                };
                if censored(log.owners[addr]) {
                    continue;
                }
                let slot = touches.entry(addr).or_default();
                if from.contains(stmt) {
                    slot.0.push((i, is_write));
                }
                if to.contains(stmt) {
                    slot.1.push((i, is_write));
                }
            }
        }
        let mut observed: Option<u64> = None;
        for (src, snk) in touches.values() {
            for &(i, wa) in src {
                for &(j, wb) in snk {
                    if j > i && (wa || wb) {
                        let d = (j - i) as u64;
                        observed = Some(observed.map_or(d, |o| o.min(d)));
                    }
                }
            }
        }
        if let Some(d) = observed {
            materialized += 1;
            if d < e.distance {
                return Err(format!(
                    "{name}: blocks #{}→#{} conflicted at dynamic distance {d}, \
                     tighter than the certified sync distance {}",
                    e.from_block, e.to_block, e.distance
                ));
            }
        }
    }
    Ok(materialized)
}

#[test]
fn corpus_block_certificates_agree_with_the_oracle() {
    let mut materialized_edges = 0usize;
    let mut fissioned = 0usize;
    for (name, body) in corpus_bodies() {
        let plan = fission_plan(&body);
        assert!(
            !plan.blocks.is_empty(),
            "{name}: fission produced no work blocks"
        );
        if plan.is_fissioned() {
            fissioned += 1;
        }
        for seed in [1u64, 42, 0xdead_beef] {
            let log = concretize(&body, 8, resolver(seed));
            match check_blocks(&name, &body, &plan, &log) {
                Ok(n) => materialized_edges += n,
                Err(e) => panic!("seed {seed}: {e}\nplan: {plan:?}"),
            }
        }
    }
    // the corpus must keep exercising fission and its sync edges — these
    // checks are not allowed to go vacuous
    assert!(fissioned >= 2, "only {fissioned} corpus loops fissioned");
    assert!(
        materialized_edges >= 2,
        "only {materialized_edges} DOACROSS edge conflicts materialized dynamically"
    );
}
