//! Golden-output corpus: every `.wlp` source under `examples/loops` is
//! linted and its rendered diagnostics + plan summary are compared against
//! the checked-in expectation in `examples/loops/expected/<stem>.txt`.
//!
//! The expected files are exactly what `wlp-lint <file>` prints (minus the
//! per-file header), so the corpus doubles as CLI documentation. To
//! regenerate after an intentional diagnostics change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p wlp-analyze --test corpus
//! ```

use std::path::{Path, PathBuf};
use wlp_analyze::lint_source;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/loops")
}

/// The same rendering `wlp-lint` produces for one file (human format,
/// without the `── path ──` header).
fn render(src: &str) -> String {
    let out = lint_source(src);
    let mut s = out.render(src);
    if let Some(a) = &out.analysis {
        s.push_str(&a.plan_summary());
        s.push('\n');
    }
    s
}

#[test]
fn corpus_matches_golden_output() {
    let dir = corpus_dir();
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();

    let mut sources: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .filter_map(|entry| {
            let p = entry.expect("read corpus dir").path();
            (p.extension().is_some_and(|x| x == "wlp")).then_some(p)
        })
        .collect();
    sources.sort();
    assert!(
        sources.len() >= 5,
        "corpus shrank: only {} .wlp files in {}",
        sources.len(),
        dir.display()
    );

    let mut failures = Vec::new();
    for path in &sources {
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(path).expect("read corpus source");
        let got = render(&src);
        let expected_path = dir.join("expected").join(format!("{stem}.txt"));

        if update {
            std::fs::write(&expected_path, &got).expect("write golden");
            continue;
        }

        let want = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
            panic!(
                "{}: missing golden {} ({e}); run with UPDATE_GOLDEN=1 to create it",
                stem,
                expected_path.display()
            )
        });
        if got != want {
            failures.push(format!(
                "{stem}: lint output diverged from {}\n--- expected ---\n{want}--- got ---\n{got}",
                expected_path.display()
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn corpus_covers_every_verdict() {
    // the corpus must keep exercising all three certificate verdicts
    let mut verdicts = std::collections::BTreeSet::new();
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus dir") {
        let p = entry.expect("read corpus dir").path();
        if p.extension().is_some_and(|x| x == "wlp") {
            let src = std::fs::read_to_string(&p).expect("read corpus source");
            let out = lint_source(&src);
            let a = out.analysis.expect("corpus sources parse");
            verdicts.insert(format!("{:?}", a.certificate.verdict));
        }
    }
    for v in ["CertifiedDoall", "CertifiedSequential", "SpeculateBounded"] {
        assert!(verdicts.contains(v), "no corpus loop certifies as {v}");
    }
}
