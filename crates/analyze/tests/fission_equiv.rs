//! Property: executing a loop block-by-block along its fission plan is
//! observation-equivalent to interpreting the whole loop sequentially.
//!
//! For generated multi-recurrence bodies (independent array recurrences,
//! cross-array consumers at distances 1–3, same-iteration consumers and
//! pure DOALL statements), the fission plan's work blocks are turned
//! back into per-block source programs — each keeping the full
//! dispatcher and every exit test, i.e. the dispatcher-censored
//! remainder re-driven per block — and run to completion in stage order
//! on one shared machine. The final machine must equal the one the
//! whole-program sequential interpretation produces: distribution
//! (`distribute` → `fuse` → split) loses no writes and reorders none
//! that matter.

use proptest::prelude::*;
use wlp_analyze::fission_plan;
use wlp_ir::frontend::{lower, parse_program, Program, Stmt};
use wlp_ir::interp::{run_sequential, Machine};

/// One generated body statement writing its own array `X{j}`.
#[derive(Debug, Clone)]
enum Kind {
    /// `Xj[i] = Xj[i - 1] + w[i] + c` — a provable recurrence.
    Recurrence,
    /// `Xj[i] = Xof[i - dist] + w[i] + c` — a cross-array carried read.
    Consumer { of: usize, dist: usize },
    /// `Xj[i] = Xof[i] + c` — a loop-independent cross-array read.
    SameIter { of: usize },
    /// `Xj[i] = c * w[i]` — fully independent.
    Independent,
}

#[derive(Debug, Clone)]
struct Params {
    n: usize,
    stmts: Vec<(Kind, i64)>,
}

/// Raw per-statement choice; `of` targets are resolved modulo the
/// statement's position so consumers always read an *earlier* array.
fn stmt_strategy() -> impl Strategy<Value = (u8, usize, usize, i64)> {
    (0u8..4, 0usize..8, 1usize..4, -3i64..4)
}

fn params_strategy() -> impl Strategy<Value = Params> {
    (6usize..40, prop::collection::vec(stmt_strategy(), 2..5)).prop_map(|(n, raw)| {
        let stmts = raw
            .into_iter()
            .enumerate()
            .map(|(j, (sel, of_raw, dist, c))| {
                let kind = match sel {
                    0 => Kind::Recurrence,
                    1 if j > 0 => Kind::Consumer {
                        of: of_raw % j,
                        dist,
                    },
                    2 if j > 0 => Kind::SameIter { of: of_raw % j },
                    3 => Kind::Independent,
                    _ => Kind::Recurrence, // first statement has no earlier array
                };
                (kind, c)
            })
            .collect();
        Params { n, stmts }
    })
}

fn source_of(p: &Params) -> String {
    let mut body = String::new();
    for (j, (kind, c)) in p.stmts.iter().enumerate() {
        let line = match kind {
            Kind::Recurrence => format!("X{j}[i] = X{j}[i - 1] + w[i] + {c}"),
            Kind::Consumer { of, dist } => format!("X{j}[i] = X{of}[i - {dist}] + w[i] + {c}"),
            Kind::SameIter { of } => format!("X{j}[i] = X{of}[i] + {c}"),
            Kind::Independent => format!("X{j}[i] = {c} * w[i]"),
        };
        body.push_str(&format!("    {line}\n"));
    }
    body.push_str("    i = i + 1\n");
    // i starts at 3 so every distance-1..3 read stays in bounds
    format!("integer i = 3\nwhile (i < {}) {{\n{body}}}", p.n)
}

fn machine_of(p: &Params) -> Machine {
    let mut m = Machine::default();
    let len = p.n + 4;
    for j in 0..p.stmts.len() {
        m.arrays
            .insert(format!("X{j}"), (0..len as i64).map(|v| v % 5).collect());
    }
    m.arrays
        .insert("w".into(), (0..len as i64).map(|v| v * 5 % 11).collect());
    m
}

/// The per-block source program: the block's assignment statements plus
/// the full dispatcher (every scalar update) and every exit test, so the
/// block re-drives the censored remainder exactly as a DOACROSS stage
/// owns its slice of the work but shares the loop control.
fn block_program(whole: &Program, block_stmts: &[usize]) -> Program {
    let mut out = whole.clone();
    let keep: Vec<bool> = whole
        .body
        .iter()
        .enumerate()
        .map(|(j, st)| {
            // lowered statement j+1 corresponds to body statement j
            // (lowered statement 0 is the WHILE condition's exit test)
            matches!(st, Stmt::AssignVar(..) | Stmt::ExitIf(..)) || block_stmts.contains(&(j + 1))
        })
        .collect();
    let mut it = keep.iter();
    out.body.retain(|_| *it.next().unwrap());
    let mut it = keep.iter();
    out.stmt_spans.retain(|_| *it.next().unwrap());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn block_by_block_execution_matches_whole_program(params in params_strategy()) {
        let src = source_of(&params);
        let prog = parse_program(&src).unwrap_or_else(|e| panic!("{src}\n{e}"));
        let body = lower(&prog).unwrap_or_else(|e| panic!("{src}\n{e:?}"));
        let plan = fission_plan(&body);

        // completeness: every array assignment lands in exactly one block
        let mut covered: Vec<usize> = plan.blocks.iter().flat_map(|b| b.stmts.clone()).collect();
        covered.sort_unstable();
        let before = covered.len();
        covered.dedup();
        prop_assert_eq!(before, covered.len(), "a statement landed in two blocks\n{}", src);
        for (j, st) in prog.body.iter().enumerate() {
            if matches!(st, Stmt::AssignElem(..)) {
                prop_assert!(
                    covered.contains(&(j + 1)),
                    "assignment {} missing from every work block\n{}",
                    j + 1,
                    src
                );
            }
        }

        let bound = params.n + 10;
        let mut whole = machine_of(&params);
        run_sequential(&prog, &mut whole, bound).unwrap_or_else(|e| panic!("{src}\n{e}"));

        // per-block execution in stage order on one shared machine
        let mut staged = machine_of(&params);
        for b in &plan.blocks {
            let bp = block_program(&prog, &b.stmts);
            run_sequential(&bp, &mut staged, bound).unwrap_or_else(|e| panic!("{src}\n{e}"));
        }

        if staged.arrays != whole.arrays {
            let diff: Vec<String> = whole.arrays.keys().filter(|k| staged.arrays[*k] != whole.arrays[*k]).map(|k| format!("{k}: staged {:?} vs whole {:?}", staged.arrays[k], whole.arrays[k])).collect();
            panic!("arrays diverged\n{src}\nplan: {:?}\n{}", plan, diff.join("\n"));
        }
        prop_assert_eq!(&staged.scalars, &whole.scalars, "scalars diverged\n{}", src);
    }
}

/// The same equivalence, deterministically, on the two corpus loops the
/// fission exhibit is built around.
#[test]
fn corpus_fission_plans_execute_equivalently() {
    for (name, src, arrays) in [
        (
            "wavefront",
            "integer i = 1\nwhile (i < 64) {\n    B[i] = B[i - 1] + w[i]\n    C[i] = B[i - 1] + 3\n    i = i + 1\n}",
            vec!["B", "C", "w"],
        ),
        (
            "mcsparse_pair",
            "integer i = 1\nwhile (i < 64) {\n    A[i] = A[i - 1] + w[i]\n    B[i] = B[i - 1] * 2\n    C[i] = A[i - 1] + w[i]\n    i = i + 1\n}",
            vec!["A", "B", "C", "w"],
        ),
    ] {
        let prog = parse_program(src).expect(name);
        let plan = fission_plan(&lower(&prog).expect(name));
        assert!(plan.is_fissioned(), "{name}: {plan:?}");

        let build = || {
            let mut m = Machine::default();
            for a in &arrays {
                m.arrays
                    .insert(a.to_string(), (0..70).map(|v| v % 7 + 1).collect());
            }
            m
        };
        let mut whole = build();
        run_sequential(&prog, &mut whole, 100).expect(name);
        let mut staged = build();
        for b in &plan.blocks {
            let bp = block_program(&prog, &b.stmts);
            run_sequential(&bp, &mut staged, 100).expect(name);
        }
        assert_eq!(staged.arrays, whole.arrays, "{name}");
        assert_eq!(staged.scalars, whole.scalars, "{name}");
    }
}
