//! The compact certificate encoding round-trips exactly — the property
//! `wlp-serve`'s certificate cache relies on: a certificate that went
//! through `encode_compact` → `decode_compact` is indistinguishable from
//! the one the analysis produced.

use proptest::prelude::*;
use wlp_analyze::{analyze, CertVerdict, SafetyCertificate};
use wlp_core::taxonomy::{Parallelism, TerminatorClass};
use wlp_ir::frontend::parse_loop;
use wlp_ir::ArrayId;

const VERDICTS: [CertVerdict; 3] = [
    CertVerdict::CertifiedDoall,
    CertVerdict::CertifiedSequential,
    CertVerdict::SpeculateBounded,
];
const TERMS: [TerminatorClass; 2] = [
    TerminatorClass::RemainderInvariant,
    TerminatorClass::RemainderVariant,
];
const PARS: [Parallelism; 3] = [
    Parallelism::Full,
    Parallelism::ParallelPrefix,
    Parallelism::Sequential,
];

proptest! {
    #[test]
    fn compact_encoding_round_trips(
        verdict in 0usize..3,
        term in 0usize..2,
        par in 0usize..3,
        w in 0u64..10_000,
        u in 0u64..10_000,
        ua in prop::collection::vec(0u32..64, 0..6),
        us in prop::collection::vec(0usize..48, 0..6),
    ) {
        let cert = SafetyCertificate {
            verdict: VERDICTS[verdict],
            terminator: TERMS[term],
            parallelism: PARS[par],
            writes_per_iter: w,
            uncertain_writes_per_iter: u,
            uncertain_arrays: ua.iter().copied().map(ArrayId).collect(),
            uncertain_stmts: us.clone(),
        };
        let line = cert.encode_compact();
        prop_assert!(line.starts_with("cert-v1;"), "{line}");
        prop_assert!(!line.contains('\n'), "{line}");
        let back = SafetyCertificate::decode_compact(&line)
            .map_err(|e| TestCaseError::fail(format!("{e} in `{line}`")))?;
        prop_assert_eq!(back, cert);
    }
}

/// Real analysis outputs (not just synthetic field combinations) survive
/// the round trip.
#[test]
fn analysis_certificates_round_trip() {
    let sources = [
        // certified DOALL after privatization
        "integer i = 1\ninteger tmp = 0\nwhile (i < n) {\n    tmp = A[2 * i]\n    A[2 * i] = A[2 * i - 1]\n    A[2 * i - 1] = tmp\n    i = i + 1\n}",
        // speculate-bounded: indirect update
        "integer i = 0\nwhile (i < n) {\n    B[i] = 2 * w[i]\n    A[idx[i]] = A[idx[i]] + B[i]\n    i = i + 1\n}",
        // certified sequential: first-order recurrence
        "integer i = 1\nwhile (i < n) {\n    A[i] = A[i] + A[i - 1]\n    i = i + 1\n}",
    ];
    for src in sources {
        let cert = analyze(&parse_loop(src).expect("parses")).certificate;
        let back = SafetyCertificate::decode_compact(&cert.encode_compact()).expect("decodes");
        assert_eq!(back, cert, "round trip changed the certificate for:\n{src}");
    }
}

#[test]
fn decode_rejects_malformed_lines() {
    for bad in [
        "",
        "cert-v2;verdict=certified_doall",
        "verdict=certified_doall;term=ri",
        "cert-v1;verdict=bogus;term=ri;par=full;w=1;u=0;ua=;us=",
        "cert-v1;verdict=certified_doall;term=ri;par=full;w=x;u=0;ua=;us=",
        "cert-v1;verdict=certified_doall;term=ri;par=full;w=1;u=0;ua=",
        "cert-v1;verdict=certified_doall;noequals",
        "cert-v1;verdict=certified_doall;term=ri;par=full;w=1;u=0;ua=;us=;extra=1",
    ] {
        assert!(
            SafetyCertificate::decode_compact(bad).is_err(),
            "accepted malformed line `{bad}`"
        );
    }
}
