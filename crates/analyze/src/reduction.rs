//! Reduction and recurrence recognition over `UpdateOp` chains.
//!
//! The front-end marks statements that read and write the same scalar as
//! updates; this pass decides which of them are **parallelizable
//! recurrences**: the operator must be associative (`x = x + c` or
//! `x = a·x + b`), and the accumulator must not *interfere* with the rest
//! of the loop — no other statement may read or write it. A non-interfering
//! associative accumulator can be evaluated by parallel prefix (or, for a
//! pure induction, in closed form), so its carried self-dependence is
//! benign. A pointer chase or an `Other` update stays a general
//! recurrence; an accumulator the remainder reads is a *dispatcher*, not a
//! reduction — its value pattern must be produced before the remainder
//! runs, which is exactly the distinction the planner's dispatcher
//! selection needs.

use wlp_ir::{LoopIr, StmtKind, UpdateOp, VarId, WRef};

/// Why an update statement is, or is not, a parallelizable reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecurrenceRole {
    /// Associative, non-interfering accumulator: parallel-prefix safe,
    /// carried dependence benign.
    Reduction,
    /// Associative or induction update whose value other statements read:
    /// a dispatcher candidate (closed form / prefix still applies, but the
    /// remainder consumes the values).
    Dispatcher,
    /// Not provably associative (`PointerChase`, `Other`): a general
    /// recurrence, sequential by nature.
    General,
}

/// One recognized recurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recurrence {
    /// Statement index of the update.
    pub stmt: usize,
    /// The accumulator.
    pub var: VarId,
    /// The update operator.
    pub op: UpdateOp,
    /// Its role in the loop.
    pub role: RecurrenceRole,
}

/// Classifies every update statement in `body`.
pub fn recurrences(body: &LoopIr) -> Vec<Recurrence> {
    let mut out = Vec::new();
    for (si, s) in body.stmts.iter().enumerate() {
        let StmtKind::Update(op) = s.kind else {
            continue;
        };
        let Some(WRef::Scalar(var)) = s.writes.first().copied() else {
            continue;
        };
        let interferes = body.stmts.iter().enumerate().any(|(sj, t)| {
            sj != si
                && t.reads
                    .iter()
                    .chain(t.writes.iter())
                    .any(|r| *r == WRef::Scalar(var))
        });
        let role = match op {
            UpdateOp::AddConst | UpdateOp::MulAddConst => {
                if interferes {
                    RecurrenceRole::Dispatcher
                } else {
                    RecurrenceRole::Reduction
                }
            }
            UpdateOp::PointerChase | UpdateOp::Other => RecurrenceRole::General,
        };
        out.push(Recurrence {
            stmt: si,
            var,
            op,
            role,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlp_ir::ir::examples;
    use wlp_ir::{ArrayId, Stmt, Subscript};

    #[test]
    fn lone_accumulator_is_a_reduction() {
        // sum = sum + c, nothing reads sum
        let mut l = LoopIr::new();
        l.push(Stmt::exit_test(vec![]));
        l.push(Stmt::update(VarId(0), UpdateOp::AddConst, vec![]));
        let r = recurrences(&l);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].role, RecurrenceRole::Reduction);
    }

    #[test]
    fn consumed_induction_is_a_dispatcher() {
        // i = i + 1 consumed by A[?] = f(i)
        let mut l = LoopIr::new();
        l.push(Stmt::assign(
            vec![WRef::Element(ArrayId(0), Subscript::Unknown)],
            vec![WRef::Scalar(VarId(0))],
        ));
        l.push(Stmt::update(VarId(0), UpdateOp::AddConst, vec![]));
        let r = recurrences(&l);
        assert_eq!(r[0].role, RecurrenceRole::Dispatcher);
    }

    #[test]
    fn pointer_chase_is_general() {
        let r = recurrences(&examples::figure1b_list_traversal());
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].op, UpdateOp::PointerChase);
        assert_eq!(r[0].role, RecurrenceRole::General);
    }

    #[test]
    fn exit_test_reading_the_accumulator_interferes() {
        // while (x < n) { x = a*x + b }: the terminator consumes x
        let mut l = LoopIr::new();
        l.push(Stmt::exit_test(vec![WRef::Scalar(VarId(0))]));
        l.push(Stmt::update(VarId(0), UpdateOp::MulAddConst, vec![]));
        let r = recurrences(&l);
        assert_eq!(r[0].role, RecurrenceRole::Dispatcher);
    }
}
