//! The Section 6 fission certifier: SCC condensation → distribution →
//! fusion → per-block certificates → DOACROSS edges.
//!
//! The whole-loop analysis ([`crate::analyze::analyze`]) answers "can this
//! loop run parallel as one piece?". For multi-recurrence bodies the
//! honest answer is often *no* — one provable recurrence forces the whole
//! plan sequential — even though most statements are independent. This
//! pass recovers that parallelism at the plan level:
//!
//! 1. build the dependence graph of the **dispatcher-censored,
//!    privatization-refined remainder** (so privatized scalars and the
//!    dispatcher's own carried edges do not glue unrelated statements
//!    together), condense it with [`wlp_ir::condense`] and distribute
//!    along SCCs ([`wlp_ir::distribute`]);
//! 2. fuse contiguous same-nature loops bottom-up ([`wlp_ir::fuse`]),
//!    then apply the ICC-style splitting criterion: a *parallel* block is
//!    split wherever a loop-carried edge connects two of its statements —
//!    the cut converts an intra-block dependence (which would force the
//!    PD shadow on everything) into a cross-block edge the DOACROSS
//!    schedule synchronizes explicitly;
//! 3. certify every **work block** (a block containing at least one
//!    computation statement) independently, by masking the body down to
//!    the block's statements and running the exact certificate pipeline
//!    the whole loop gets ([`crate::analyze::certify_core`]);
//! 4. emit the cross-block loop-carried edges with computed
//!    synchronization distances — for affine subscript pairs with equal
//!    stride the distance is exact `(o₁−o₂)/c`; anything else is
//!    conservatively distance 1 (sync every iteration).
//!
//! The result is the contract the runtime schedules: each block is one
//! DOACROSS stage; a stage executes iteration `i` only after its
//! predecessor stages have passed the sync points the edges dictate.

use crate::analyze::{certify_core, remainder_view};
use crate::certificate::{CertVerdict, SafetyCertificate};
use crate::privatize::{privatization, privatized_body};
use crate::terminator::classify_terminator;
use std::collections::BTreeSet;
use wlp_ir::dependence::{dep_graph, DepGraph, DepKind};
use wlp_ir::distribute::{distribute_with, fuse, DistributedLoop, FusedBlock, LoopNature};
use wlp_ir::scc::condense;
use wlp_ir::span::Span;
use wlp_ir::{LoopIr, StmtKind, Subscript, WRef};

/// One fused work block with its own safety certificate.
#[derive(Debug, Clone)]
pub struct BlockCertificate {
    /// Block position among the plan's work blocks (DOACROSS stage index).
    pub index: usize,
    /// Original-body statement indices, ascending.
    pub stmts: Vec<usize>,
    /// Nature the distribution assigned (conservative: `Sequential` when
    /// any member has a carried self-dependence, `Unknown`s included).
    pub nature: LoopNature,
    /// The block's certificate, produced by the same pipeline that
    /// certifies whole loops, on the body masked to this block.
    pub certificate: SafetyCertificate,
    /// Union of the member statements' source spans.
    pub span: Option<Span>,
}

impl BlockCertificate {
    /// `"stmt 2"` / `"stmts 1,2"` — for diagnostics.
    pub fn describe_stmts(&self) -> String {
        let list = self
            .stmts
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(",");
        if self.stmts.len() == 1 {
            format!("stmt {list}")
        } else {
            format!("stmts {list}")
        }
    }
}

/// A loop-carried dependence crossing two work blocks: the DOACROSS
/// synchronization the schedule must enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoacrossEdge {
    /// Source work-block index (the earlier stage).
    pub from_block: usize,
    /// Sink work-block index (the later stage).
    pub to_block: usize,
    /// Dependence kind of the tightest edge.
    pub kind: DepKind,
    /// Synchronization distance in iterations (≥ 1): stage `to_block` of
    /// iteration `i` may start once stage `from_block` of iteration
    /// `i − distance` has finished.
    pub distance: u64,
}

/// The plan-level fission result for one loop body.
#[derive(Debug, Clone, Default)]
pub struct FissionPlan {
    /// SCC count of the censored remainder dependence graph (every SCC is
    /// the unit of distribution).
    pub scc_count: usize,
    /// The certified work blocks, in statement (= topological) order.
    /// Exit-test-only and dispatcher-only blocks are not listed: their
    /// values are materialized by the dispatcher machinery, not by a
    /// remainder stage.
    pub blocks: Vec<BlockCertificate>,
    /// Cross-block loop-carried edges, `from_block < to_block`.
    pub edges: Vec<DoacrossEdge>,
}

impl FissionPlan {
    /// Whether distribution actually split the remainder work.
    pub fn is_fissioned(&self) -> bool {
        self.blocks.len() >= 2
    }

    /// Number of DOACROSS stages the runtime schedules (one per work
    /// block).
    pub fn stages(&self) -> usize {
        self.blocks.len()
    }

    /// Work blocks certified something other than sequential.
    pub fn parallel_blocks(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| b.certificate.verdict != CertVerdict::CertifiedSequential)
            .count()
    }

    /// The tightest cross-block sync distance, when any edge exists.
    pub fn min_sync_distance(&self) -> Option<u64> {
        self.edges.iter().map(|e| e.distance).min()
    }

    /// The `fission: …` summary line, present only when the plan really
    /// splits the remainder (single-block loops print nothing extra).
    pub fn summary(&self) -> Option<String> {
        if !self.is_fissioned() {
            return None;
        }
        let blocks = self
            .blocks
            .iter()
            .map(|b| {
                format!(
                    "#{} {} ({})",
                    b.index,
                    b.certificate.verdict.name(),
                    b.describe_stmts()
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let edges = if self.edges.is_empty() {
            "no doacross edges".to_string()
        } else {
            format!(
                "{} doacross edge{} (min distance {})",
                self.edges.len(),
                if self.edges.len() == 1 { "" } else { "s" },
                self.min_sync_distance().unwrap_or(1),
            )
        };
        Some(format!(
            "fission: {} sccs → {} blocks [{}]; {}",
            self.scc_count,
            self.blocks.len(),
            blocks,
            edges
        ))
    }
}

/// `body` with every statement outside `keep` reduced to a no-op (its
/// read/write sets cleared, kind and span retained). Statement indices —
/// and therefore certificates' `uncertain_stmts` — stay body-global.
pub fn masked_body(body: &LoopIr, keep: &[usize]) -> LoopIr {
    let keep: BTreeSet<usize> = keep.iter().copied().collect();
    let mut out = LoopIr::new();
    for (si, s) in body.stmts.iter().enumerate() {
        let mut c = s.clone();
        if !keep.contains(&si) {
            c.writes.clear();
            c.reads.clear();
        }
        out.push(c);
    }
    out
}

/// ICC-style refinement: split a parallel block wherever a loop-carried
/// edge connects two distinct member statements, so the dependence
/// becomes a cross-block DOACROSS edge instead of forcing speculation on
/// the whole block. Sequential blocks keep their carried cycles internal
/// — that is what makes them sequential stages.
fn split_at_carried_sinks(blocks: Vec<FusedBlock>, g: &DepGraph) -> Vec<FusedBlock> {
    let mut out = Vec::new();
    for blk in blocks {
        if blk.nature == LoopNature::Sequential {
            out.push(blk);
            continue;
        }
        let mut cur: Vec<DistributedLoop> = Vec::new();
        for lp in blk.loops {
            let closes_carried_edge = g.edges.iter().any(|e| {
                e.loop_carried
                    && e.from != e.to
                    && lp.stmts.contains(&e.to)
                    && cur.iter().any(|c| c.stmts.contains(&e.from))
            });
            if closes_carried_edge && !cur.is_empty() {
                out.push(FusedBlock {
                    loops: std::mem::take(&mut cur),
                    nature: LoopNature::Parallel,
                });
            }
            cur.push(lp);
        }
        if !cur.is_empty() {
            out.push(FusedBlock {
                loops: cur,
                nature: LoopNature::Parallel,
            });
        }
    }
    out
}

/// The exact dependence distance between two affine accesses of equal
/// stride: source `c·i+o₁` at iteration `i` collides with sink `c·j+o₂`
/// at iteration `j = i + (o₁−o₂)/c`. Returns the distance when it is a
/// positive integer, `None` otherwise (the caller falls back to 1).
fn affine_distance(w: &WRef, r: &WRef) -> Option<u64> {
    let (WRef::Element(a1, s1), WRef::Element(a2, s2)) = (w, r) else {
        return None;
    };
    if a1 != a2 {
        return None;
    }
    let (
        Subscript::Affine {
            coeff: c1,
            offset: o1,
        },
        Subscript::Affine {
            coeff: c2,
            offset: o2,
        },
    ) = (s1, s2)
    else {
        return None;
    };
    if c1 != c2 || *c1 == 0 || (o1 - o2) % c1 != 0 {
        return None;
    }
    let d = (o1 - o2) / c1;
    u64::try_from(d).ok().filter(|&d| d > 0)
}

/// The synchronization distance of the carried dependence between two
/// statements: the minimum exact affine distance over all conflicting
/// cross-iteration reference pairs, defaulting to 1 (sync every
/// iteration) when no pair is exactly analyzable.
fn sync_distance(from: &wlp_ir::Stmt, to: &wlp_ir::Stmt) -> u64 {
    let mut best: Option<u64> = None;
    let pairs = from
        .writes
        .iter()
        .flat_map(|w| to.reads.iter().chain(to.writes.iter()).map(move |r| (w, r)))
        .chain(
            from.reads
                .iter()
                .flat_map(|r| to.writes.iter().map(move |w| (r, w))),
        );
    for (a, b) in pairs {
        if !wlp_ir::refs_conflict_cross_iteration(a, b) {
            continue;
        }
        match affine_distance(a, b) {
            Some(d) => best = Some(best.map_or(d, |b: u64| b.min(d))),
            // a conflicting pair we cannot bound: sync every iteration
            None => return 1,
        }
    }
    best.unwrap_or(1).max(1)
}

/// Runs the fission certifier over one loop body.
pub fn fission_plan(body: &LoopIr) -> FissionPlan {
    let priv_info = privatization(body);
    let refined = privatized_body(body, &priv_info);
    let view = remainder_view(&refined);
    let g = dep_graph(&view);
    let scc_count = condense(&g).len();
    let loops = distribute_with(&view, &g);
    let fused = fuse(loops, 0);
    let split = split_at_carried_sinks(fused, &g);

    let whole = classify_terminator(body);
    let whole_terminator = whole.0;
    let dispatcher_parallelism = certify_core(body).certificate.parallelism;

    let mut blocks = Vec::new();
    for blk in &split {
        let stmts = blk.stmts();
        let has_work = stmts
            .iter()
            .any(|&s| matches!(body.stmts[s].kind, StmtKind::Assign));
        if !has_work {
            continue;
        }
        let masked = masked_body(body, &stmts);
        let mut certificate = certify_core(&masked).certificate;
        // overshoot and dispatcher parallelism are whole-loop properties:
        // an exit test in a sibling block still governs this block's
        // iterations, and every stage shares the one dispatcher
        certificate.terminator = whole_terminator;
        certificate.parallelism = dispatcher_parallelism;
        let span = stmts
            .iter()
            .filter_map(|&s| body.stmts[s].span)
            .reduce(|a, b| a.to(b));
        blocks.push(BlockCertificate {
            index: blocks.len(),
            stmts,
            nature: blk.nature,
            certificate,
            span,
        });
    }

    let edges = doacross_edges(&view, &g, &blocks);
    FissionPlan {
        scc_count,
        blocks,
        edges,
    }
}

/// Collects the loop-carried edges crossing two work blocks, one edge
/// per block pair carrying the minimum synchronization distance.
fn doacross_edges(view: &LoopIr, g: &DepGraph, blocks: &[BlockCertificate]) -> Vec<DoacrossEdge> {
    let block_of = |stmt: usize| blocks.iter().position(|b| b.stmts.contains(&stmt));
    let mut out: Vec<DoacrossEdge> = Vec::new();
    for e in &g.edges {
        if !e.loop_carried || e.from == e.to {
            continue;
        }
        let (Some(bf), Some(bt)) = (block_of(e.from), block_of(e.to)) else {
            continue;
        };
        if bf == bt {
            continue;
        }
        let d = sync_distance(&view.stmts[e.from], &view.stmts[e.to]);
        match out
            .iter_mut()
            .find(|x| x.from_block == bf && x.to_block == bt)
        {
            Some(x) if d < x.distance => {
                x.distance = d;
                x.kind = e.kind;
            }
            Some(_) => {}
            None => out.push(DoacrossEdge {
                from_block: bf,
                to_block: bt,
                kind: e.kind,
                distance: d,
            }),
        }
    }
    out.sort_by_key(|e| (e.from_block, e.to_block));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlp_ir::frontend::{lower, parse_program};

    fn body_of(src: &str) -> LoopIr {
        lower(&parse_program(src).expect("parse")).expect("lower")
    }

    const WAVEFRONT: &str = "integer i = 1\nwhile (i < n) {\n    B[i] = B[i - 1] + w[i]\n    C[i] = B[i - 1] + 3\n    i = i + 1\n}";

    #[test]
    fn wavefront_splits_into_recurrence_and_consumer_blocks() {
        let f = fission_plan(&body_of(WAVEFRONT));
        assert!(f.is_fissioned(), "{f:?}");
        assert_eq!(f.blocks.len(), 2, "{f:?}");
        assert_eq!(
            f.blocks[0].certificate.verdict,
            CertVerdict::CertifiedSequential
        );
        assert_eq!(f.blocks[1].certificate.verdict, CertVerdict::CertifiedDoall);
        assert_eq!(f.edges.len(), 1, "{f:?}");
        assert_eq!(f.edges[0].from_block, 0);
        assert_eq!(f.edges[0].to_block, 1);
        assert_eq!(f.edges[0].distance, 1);
    }

    #[test]
    fn carried_edge_between_parallel_statements_is_cut_into_two_doall_blocks() {
        // both statements are parallel singletons (no self-dependence),
        // but A's write feeds D's read one iteration later: whole-loop
        // analysis must speculate, fission certifies two DOALL stages
        // with an explicit sync edge instead
        let src = "integer i = 1\nwhile (i < n) {\n    A[i] = 2 * w[i]\n    D[i] = A[i - 1] + 1\n    i = i + 1\n}";
        let f = fission_plan(&body_of(src));
        assert_eq!(f.blocks.len(), 2, "{f:?}");
        assert!(f
            .blocks
            .iter()
            .all(|b| b.certificate.verdict == CertVerdict::CertifiedDoall));
        assert_eq!(f.edges.len(), 1, "{f:?}");
        assert_eq!(f.edges[0].distance, 1);
    }

    #[test]
    fn larger_affine_offsets_compute_exact_sync_distances() {
        let src = "integer i = 3\nwhile (i < n) {\n    A[i] = 2 * w[i]\n    D[i] = A[i - 3] + 1\n    i = i + 1\n}";
        let f = fission_plan(&body_of(src));
        assert_eq!(f.edges.len(), 1, "{f:?}");
        assert_eq!(f.edges[0].distance, 3);
    }

    #[test]
    fn single_block_loops_are_not_fissioned() {
        let src = "integer i = 0\nwhile (i < n) {\n    A[i] = 2 * A[i]\n    i = i + 1\n}";
        let f = fission_plan(&body_of(src));
        assert_eq!(f.blocks.len(), 1, "{f:?}");
        assert!(!f.is_fissioned());
        assert!(f.summary().is_none());
        assert!(f.edges.is_empty());
    }

    #[test]
    fn pure_sequential_recurrence_stays_one_sequential_block() {
        let src = "integer i = 1\nwhile (i < n) {\n    A[i] = A[i] + A[i - 1]\n    i = i + 1\n}";
        let f = fission_plan(&body_of(src));
        assert_eq!(f.blocks.len(), 1, "{f:?}");
        assert_eq!(
            f.blocks[0].certificate.verdict,
            CertVerdict::CertifiedSequential
        );
    }

    #[test]
    fn block_spans_cover_their_statements_and_summary_mentions_blocks() {
        let f = fission_plan(&body_of(WAVEFRONT));
        for b in &f.blocks {
            assert!(b.span.is_some(), "{b:?}");
        }
        let s = f.summary().expect("fissioned");
        assert!(s.contains("2 blocks"), "{s}");
        assert!(s.contains("doacross edge"), "{s}");
    }

    #[test]
    fn masked_body_keeps_indices_and_clears_foreign_refs() {
        let body = body_of(WAVEFRONT);
        let m = masked_body(&body, &[1]);
        assert_eq!(m.len(), body.len());
        assert!(!m.stmts[1].writes.is_empty());
        assert!(m.stmts[2].writes.is_empty() && m.stmts[2].reads.is_empty());
    }
}
