//! Concretization: abstract `LoopIr` bodies → dynamic access logs.
//!
//! To cross-validate a static verdict against the dynamic PD machinery,
//! the loop must actually *run*. This module executes a body abstractly
//! for `n` iterations: affine subscripts evaluate at the iteration number,
//! `Unknown` subscripts are resolved by a caller-supplied function (the
//! adversary — property tests randomize it), and every location (scalar or
//! array element) is mapped to a unique address in one flat space, so the
//! whole loop becomes a per-iteration [`Access`] log the
//! [`wlp_pd::crosscheck`] harness and the oracle understand.
//!
//! Within a statement, reads precede writes — `tmp = A[2i]` reads `A[2i]`
//! before defining `tmp` — which is what makes def-before-use visible to
//! the privatization criterion.

use std::collections::HashMap;
use wlp_ir::{ArrayId, LoopIr, Subscript, VarId, WRef};
use wlp_pd::Access;

/// Which variable or array an address belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Owner {
    /// The address is a scalar.
    Scalar(VarId),
    /// The address is an element of this array.
    Array(ArrayId),
}

/// One concrete execution of a loop body.
#[derive(Debug, Clone)]
pub struct ConcreteLog {
    /// `iterations[i]` is iteration `i`'s access sequence, program order.
    pub iterations: Vec<Vec<Access>>,
    /// The same accesses tagged with their statement index.
    pub tagged: Vec<Vec<(usize, Access)>>,
    /// `owners[addr]` says which location the address belongs to.
    pub owners: Vec<Owner>,
}

impl ConcreteLog {
    /// The sub-log containing only accesses for which `keep(stmt, addr,
    /// owner)` holds — the shape every per-claim oracle check needs.
    pub fn filter(&self, keep: impl Fn(usize, usize, Owner) -> bool) -> Vec<Vec<Access>> {
        self.tagged
            .iter()
            .map(|iter_log| {
                iter_log
                    .iter()
                    .filter(|(stmt, acc)| {
                        let addr = match *acc {
                            Access::Read(e) | Access::Write(e) => e,
                        };
                        keep(*stmt, addr, self.owners[addr])
                    })
                    .map(|(_, acc)| *acc)
                    .collect()
            })
            .collect()
    }
}

/// Executes `body` for `iters` iterations.
///
/// `resolve(stmt, iter, array)` supplies the element index for every
/// `Unknown` subscript occurrence (the same statement/iteration/array is
/// resolved once per occurrence, in statement read-then-write order —
/// deterministic resolvers therefore model `A[idx[i]] = f(A[idx[i]])`
/// aliasing exactly).
pub fn concretize(
    body: &LoopIr,
    iters: usize,
    mut resolve: impl FnMut(usize, usize, ArrayId) -> i64,
) -> ConcreteLog {
    let mut addrs: HashMap<(Owner, i64), usize> = HashMap::new();
    let mut owners: Vec<Owner> = Vec::new();
    let mut addr_of = |owner: Owner, index: i64| -> usize {
        *addrs.entry((owner, index)).or_insert_with(|| {
            owners.push(owner);
            owners.len() - 1
        })
    };

    let mut iterations = Vec::with_capacity(iters);
    let mut tagged = Vec::with_capacity(iters);
    for i in 0..iters {
        let mut log: Vec<(usize, Access)> = Vec::new();
        for (si, s) in body.stmts.iter().enumerate() {
            let mut eval = |r: &WRef, resolve: &mut dyn FnMut(usize, usize, ArrayId) -> i64| match r
            {
                WRef::Scalar(v) => addr_of(Owner::Scalar(*v), 0),
                WRef::Element(a, sub) => {
                    let idx = match sub {
                        Subscript::Const(k) => *k,
                        Subscript::Affine { coeff, offset } => coeff * i as i64 + offset,
                        Subscript::Unknown => resolve(si, i, *a),
                    };
                    addr_of(Owner::Array(*a), idx)
                }
            };
            for r in &s.reads {
                let addr = eval(r, &mut resolve);
                log.push((si, Access::Read(addr)));
            }
            for w in &s.writes {
                let addr = eval(w, &mut resolve);
                log.push((si, Access::Write(addr)));
            }
        }
        iterations.push(log.iter().map(|(_, a)| *a).collect());
        tagged.push(log);
    }

    ConcreteLog {
        iterations,
        tagged,
        owners,
    }
}

/// The accesses belonging to one scalar, per iteration — the log a
/// per-scalar privatization claim is checked on.
pub fn scalar_log(log: &ConcreteLog, v: VarId) -> Vec<Vec<Access>> {
    log.filter(|_, _, owner| owner == Owner::Scalar(v))
}

/// The accesses belonging to one array, per iteration.
pub fn array_log(log: &ConcreteLog, a: ArrayId) -> Vec<Vec<Access>> {
    log.filter(|_, _, owner| owner == Owner::Array(a))
}

/// The remainder log a DOALL claim is checked on: accesses by recurrence
/// updates, and all accesses to the scalars those updates own (the
/// dispatcher values, produced up front at run time), are excluded;
/// privatized locations are excluded by the caller via `private`.
pub fn remainder_log(
    body: &LoopIr,
    log: &ConcreteLog,
    private: impl Fn(Owner) -> bool,
) -> Vec<Vec<Access>> {
    let update_stmts: Vec<usize> = body.updates().collect();
    let update_vars: Vec<VarId> = update_stmts
        .iter()
        .flat_map(|&s| body.stmts[s].writes.iter())
        .filter_map(|w| match w {
            WRef::Scalar(v) => Some(*v),
            WRef::Element(..) => None,
        })
        .collect();
    log.filter(|stmt, _, owner| {
        if update_stmts.contains(&stmt) {
            return false;
        }
        if let Owner::Scalar(v) = owner {
            if update_vars.contains(&v) {
                return false;
            }
        }
        !private(owner)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlp_ir::ir::examples;
    use wlp_pd::oracle_verdict;

    #[test]
    fn affine_subscripts_evaluate_at_the_iteration() {
        let log = concretize(&examples::figure5c_recurrence(), 4, |_, _, _| 0);
        // A[i] = A[i] + A[i−1]: the oracle must see the recurrence
        assert_eq!(oracle_verdict(&log.iterations, None), (false, false));
    }

    #[test]
    fn figure5b_swap_privatizes_tmp_dynamically() {
        let body = examples::figure5b_swap();
        let log = concretize(&body, 4, |_, _, _| 0);
        let tmp = scalar_log(&log, wlp_ir::VarId(0));
        // tmp: written then read per iteration — privatizable, not DOALL
        assert_eq!(oracle_verdict(&tmp, None), (false, true));
        // the array accesses alone are a valid DOALL (even/odd disjoint)
        let a = array_log(&log, wlp_ir::ArrayId(0));
        assert_eq!(oracle_verdict(&a, None), (true, true));
    }

    #[test]
    fn unknown_subscripts_use_the_resolver() {
        let body = examples::track_style_unknown();
        // adversarial resolver: every iteration hits element 7
        let log = concretize(&body, 3, |_, _, _| 7);
        let a = array_log(&log, wlp_ir::ArrayId(0));
        assert_eq!(oracle_verdict(&a, None), (false, false));
        // benign resolver: iteration-private elements
        let log = concretize(&body, 3, |_, i, _| i as i64);
        let a = array_log(&log, wlp_ir::ArrayId(0));
        assert!(oracle_verdict(&a, None).0);
    }

    #[test]
    fn remainder_log_drops_the_dispatcher() {
        let body = examples::figure1b_list_traversal();
        let log = concretize(&body, 3, |_, i, _| i as i64);
        let rem = remainder_log(&body, &log, |_| false);
        // without the pointer-chase accesses, disjoint work is a DOALL
        assert_eq!(oracle_verdict(&rem, None), (true, true));
    }

    #[test]
    fn negative_affine_indices_get_distinct_addresses() {
        // A[i−5]: indices −5..−1 must not collide with 0..
        let a = wlp_ir::ArrayId(0);
        let mut l = wlp_ir::LoopIr::new();
        l.push(wlp_ir::Stmt::assign(
            vec![wlp_ir::WRef::Element(
                a,
                Subscript::Affine {
                    coeff: 1,
                    offset: -5,
                },
            )],
            vec![],
        ));
        let log = concretize(&l, 5, |_, _, _| 0);
        let arr = array_log(&log, a);
        assert_eq!(oracle_verdict(&arr, None), (true, true));
    }
}
