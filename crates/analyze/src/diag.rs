//! Structured, span-carrying diagnostics.
//!
//! Every analysis finding is a [`Diagnostic`]: a stable code, a severity,
//! an optional source span (IR built programmatically has none), a
//! message, and an optional fix-it hint. Rendering against the original
//! source produces rustc-style output:
//!
//! ```text
//! warning[W-SPEC01] at 3:5: unanalyzable subscript: ...
//!     A[idx[i]] = A[idx[i]] + w[i]
//!     ^^^^^^^^^^^^^^^^^^^^^^^^^^^^
//!     hint: the run-time PD test will shadow this access
//! ```

use wlp_ir::span::{render_pos, snippet};
use wlp_ir::Span;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: an optimization opportunity the analysis proved.
    Note,
    /// The loop is parallelizable only with run-time machinery (cost).
    Warning,
    /// Parallel execution as requested would be unsound or futile.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`W-PRIV01`, `W-TERM02`, …).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Source span, when the IR was lowered from text.
    pub span: Option<Span>,
    /// The finding.
    pub message: String,
    /// What the programmer (or the planner) can do about it.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// A new diagnostic without span or hint.
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            span: None,
            message: message.into(),
            hint: None,
        }
    }

    /// Attaches a source span.
    pub fn with_span(mut self, span: Option<Span>) -> Self {
        self.span = span;
        self
    }

    /// Attaches a fix-it hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }

    /// Renders against the source text as a rustc-style block. Without a
    /// span (or without `src`) the location and snippet lines are omitted.
    pub fn render(&self, src: Option<&str>) -> String {
        let mut out = String::new();
        match (self.span, src) {
            (Some(span), Some(src)) => {
                out.push_str(&format!(
                    "{}[{}] at {}: {}\n",
                    self.severity,
                    self.code,
                    render_pos(src, span.start),
                    self.message
                ));
                let (line, caret) = snippet(src, span);
                out.push_str(&format!("    {line}\n    {caret}\n"));
            }
            _ => out.push_str(&format!(
                "{}[{}]: {}\n",
                self.severity, self.code, self.message
            )),
        }
        if let Some(h) = &self.hint {
            out.push_str(&format!("    hint: {h}\n"));
        }
        out
    }

    /// Renders as one line of JSON (all fields; `line`/`col` resolved when
    /// `src` is given). Written by hand — the workspace has no serde JSON
    /// backend — and escaped for the two characters our messages can
    /// contain.
    pub fn render_json(&self, src: Option<&str>) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let mut fields = vec![
            format!("\"code\":\"{}\"", self.code),
            format!("\"severity\":\"{}\"", self.severity),
            format!("\"message\":\"{}\"", esc(&self.message)),
        ];
        if let Some(span) = self.span {
            fields.push(format!("\"start\":{},\"end\":{}", span.start, span.end));
            if let Some(src) = src {
                let (l, c) = wlp_ir::line_col(src, span.start);
                fields.push(format!("\"line\":{l},\"col\":{c}"));
            }
        }
        if let Some(h) = &self.hint {
            fields.push(format!("\"hint\":\"{}\"", esc(h)));
        }
        format!("{{{}}}", fields.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_with_span_points_at_the_source() {
        let src = "x = 1\ny = A[k]\n";
        let start = src.find("A[k]").unwrap();
        let d = Diagnostic::new("W-TEST", Severity::Warning, "unanalyzable subscript")
            .with_span(Some(Span::new(start, start + 4)))
            .with_hint("the PD test will shadow this access");
        let r = d.render(Some(src));
        assert!(r.starts_with("warning[W-TEST] at 2:5:"), "{r}");
        assert!(r.contains("y = A[k]"), "{r}");
        assert!(r.contains("    hint:"), "{r}");
    }

    #[test]
    fn rendering_without_span_degrades_gracefully() {
        let d = Diagnostic::new("W-TEST", Severity::Note, "finding");
        assert_eq!(d.render(None), "note[W-TEST]: finding\n");
    }

    #[test]
    fn json_escapes_quotes() {
        let d = Diagnostic::new("W-TEST", Severity::Error, "a \"quoted\" thing");
        let j = d.render_json(None);
        assert!(j.contains("\\\"quoted\\\""), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn severity_orders_by_badness() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }
}
