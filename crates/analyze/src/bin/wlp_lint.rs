//! `wlp-lint`: static safety diagnostics for WHILE-loop sources.
//!
//! ```text
//! wlp-lint [--json] [--quiet] FILE...
//! wlp-lint [--json] -        # read one loop from stdin
//! ```
//!
//! Multi-block loops get one `W-FIS01` note per fused block (block index,
//! span, certificate kind) plus a `W-FIS02` note per cross-block DOACROSS
//! edge, in `--json` as in human output.
//!
//! Exit status: 0 when no diagnostic is an error, 1 when any source has an
//! error-severity finding, 2 on usage or I/O problems. Mixed verdicts do
//! **not** exit 1: a provably-sequential fused block alongside parallel
//! sibling blocks downgrades `W-SEQ01` (error) to `W-SEQ02` (warning),
//! because the fission plan still extracts parallelism — only a loop whose
//! entire remainder is provably sequential (or a parse failure) is an
//! error.

use std::io::Read;
use std::process::ExitCode;
use wlp_analyze::{lint_source, Severity};

fn main() -> ExitCode {
    let mut json = false;
    let mut quiet = false;
    let mut inputs: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!("usage: wlp-lint [--json] [--quiet] FILE... (or - for stdin)");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("wlp-lint: unknown flag {other}");
                return ExitCode::from(2);
            }
            path => inputs.push(path.to_string()),
        }
    }
    if inputs.is_empty() {
        eprintln!("wlp-lint: no input files (use - for stdin)");
        return ExitCode::from(2);
    }

    let mut worst = Severity::Note;
    for path in &inputs {
        let src = if path == "-" {
            let mut buf = String::new();
            match std::io::stdin().read_to_string(&mut buf) {
                Ok(_) => buf,
                Err(e) => {
                    eprintln!("wlp-lint: stdin: {e}");
                    return ExitCode::from(2);
                }
            }
        } else {
            match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("wlp-lint: {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        };

        let out = lint_source(&src);
        worst = worst.max(out.max_severity());
        if !quiet {
            if json {
                print!("{}", out.render_json(&src));
            } else {
                let header = format!("── {path} ──");
                println!("{header}");
                print!("{}", out.render(&src));
                if let Some(a) = &out.analysis {
                    println!("{}", a.plan_summary());
                }
            }
        }
    }

    if worst >= Severity::Error {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
