//! RI/RV terminator classification by dataflow.
//!
//! The planner's coarse rule calls a terminator remainder-variant whenever
//! an exit test reads *any element of an array* the remainder writes. This
//! pass asks the precise question — can the exit predicate read a
//! **location** the remainder writes? — using the same subscript-level
//! conflict test the dependence graph is built from. `A[0]` read by the
//! terminator and `A[i+1]` written by the remainder never meet: the loop
//! is remainder-invariant, needs no backups and cannot overshoot into
//! user-visible state (Table 1's RI column).

use wlp_core::taxonomy::TerminatorClass;
use wlp_ir::dependence::refs_may_conflict;
use wlp_ir::{LoopIr, StmtKind, WRef};

/// Evidence that the terminator is remainder-variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RvWitness {
    /// The exit-test statement.
    pub exit_stmt: usize,
    /// What it reads.
    pub read: WRef,
    /// The remainder statement whose write can alias that read.
    pub write_stmt: usize,
    /// The conflicting write.
    pub write: WRef,
}

/// Classifies the terminator of `body` by dataflow; the witness names the
/// first read/write pair that makes it remainder-variant.
pub fn classify_terminator(body: &LoopIr) -> (TerminatorClass, Option<RvWitness>) {
    for t in body.exit_tests() {
        for read in &body.stmts[t].reads {
            for (sj, s) in body.stmts.iter().enumerate() {
                if matches!(s.kind, StmtKind::Update(_)) {
                    continue; // dispatcher values are produced up front
                }
                for write in &s.writes {
                    if refs_may_conflict(read, write) {
                        return (
                            TerminatorClass::RemainderVariant,
                            Some(RvWitness {
                                exit_stmt: t,
                                read: *read,
                                write_stmt: sj,
                                write: *write,
                            }),
                        );
                    }
                }
            }
        }
    }
    (TerminatorClass::RemainderInvariant, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlp_ir::ir::examples;
    use wlp_ir::{ArrayId, Stmt, Subscript};

    #[test]
    fn list_traversal_is_ri() {
        let (c, w) = classify_terminator(&examples::figure1b_list_traversal());
        assert_eq!(c, TerminatorClass::RemainderInvariant);
        assert!(w.is_none());
    }

    #[test]
    fn track_style_is_rv() {
        let (c, w) = classify_terminator(&examples::track_style_unknown());
        assert_eq!(c, TerminatorClass::RemainderVariant);
        assert!(w.is_some());
    }

    #[test]
    fn disjoint_subscripts_downgrade_rv_to_ri() {
        // exit reads A[0]; remainder writes A[i+1] — never element 0
        let a = ArrayId(0);
        let mut l = LoopIr::new();
        l.push(Stmt::exit_test(vec![WRef::Element(a, Subscript::Const(0))]));
        l.push(Stmt::assign(
            vec![WRef::Element(
                a,
                Subscript::Affine {
                    coeff: 1,
                    offset: 1,
                },
            )],
            vec![],
        ));
        let (c, _) = classify_terminator(&l);
        assert_eq!(
            c,
            TerminatorClass::RemainderInvariant,
            "array-level coarseness must not survive subscript dataflow"
        );
    }

    #[test]
    fn same_location_stays_rv() {
        let a = ArrayId(0);
        let i = Subscript::Affine {
            coeff: 1,
            offset: 0,
        };
        let mut l = LoopIr::new();
        l.push(Stmt::exit_test(vec![WRef::Element(a, i)]));
        l.push(Stmt::assign(vec![WRef::Element(a, i)], vec![]));
        let (c, w) = classify_terminator(&l);
        assert_eq!(c, TerminatorClass::RemainderVariant);
        assert_eq!(w.unwrap().write_stmt, 1);
    }
}
