//! Speculation-safety certificates: the static contract the runtime
//! consumes.
//!
//! A certificate summarizes what the analysis *proved* about one loop: how
//! many writes an iteration can perform at most (the may-write bound),
//! which of those writes are **certified-uncertain** (only they need
//! shadow instrumentation), and the refined verdict. It plugs into the
//! executors at three points:
//!
//! * [`SafetyCertificate::write_budget`] bounds the undo log —
//!   `SpeculativeArray::with_budget` / `GovernorPolicy::with_budget` get
//!   the certified bound instead of the naive every-write one;
//! * [`SafetyCertificate::cost_model`] feeds only the *uncertain* accesses
//!   into the Section 7 overhead terms (certified accesses are not
//!   shadowed, so they cost nothing extra);
//! * [`SafetyCertificate::starting_rung`] picks the governor's initial
//!   ladder rung: certified-sequential loops start at the bottom,
//!   certified-DOALL loops at the top, and uncertain remainder-variant
//!   loops start windowed so overshoot stays bounded while the PD test
//!   earns trust.

use crate::privatize::Privatization;
use crate::reduction::Recurrence;
use wlp_core::cost::CostModel;
use wlp_core::taxonomy::{Parallelism, TerminatorClass};
use wlp_ir::{ArrayId, LoopIr, Subscript, WRef};
use wlp_obs::StrategyChoice;
use wlp_runtime::GovernorPolicy;

/// The analysis verdict a certificate carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CertVerdict {
    /// No run-time test needed: every surviving access is provably
    /// independent. Execute as a DOALL.
    CertifiedDoall,
    /// A loop-carried dependence is provable: speculation would abort
    /// deterministically. Execute sequentially.
    CertifiedSequential,
    /// Some accesses stay uncertain: speculate, but only the certified
    /// write bound needs shadowing/undo.
    SpeculateBounded,
}

impl CertVerdict {
    /// Short stable name (cache lines, JSON responses).
    pub fn name(&self) -> &'static str {
        match self {
            CertVerdict::CertifiedDoall => "certified_doall",
            CertVerdict::CertifiedSequential => "certified_sequential",
            CertVerdict::SpeculateBounded => "speculate_bounded",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "certified_doall" => CertVerdict::CertifiedDoall,
            "certified_sequential" => CertVerdict::CertifiedSequential,
            "speculate_bounded" => CertVerdict::SpeculateBounded,
            _ => return None,
        })
    }
}

/// The static safety contract for one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafetyCertificate {
    /// Refined verdict.
    pub verdict: CertVerdict,
    /// Dataflow-classified terminator.
    pub terminator: TerminatorClass,
    /// Dispatcher parallelism of the refined plan.
    pub parallelism: Parallelism,
    /// Statically bounded may-write set size per iteration: every write
    /// the remainder can perform (dispatcher updates are materialized up
    /// front and excluded).
    pub writes_per_iter: u64,
    /// Of those, the writes the analysis could **not** certify — only
    /// these need shadow marks and undo entries.
    pub uncertain_writes_per_iter: u64,
    /// The arrays the uncertainty lives in (the shadow structures to
    /// allocate). Empty for certified verdicts.
    pub uncertain_arrays: Vec<ArrayId>,
    /// The statements whose accesses must go through the shadow (the
    /// uncertain partition of the remainder). Everything else is the
    /// *certified* partition: provably conflict-free, left uninstrumented.
    /// Empty for certified verdicts.
    pub uncertain_stmts: Vec<usize>,
}

impl SafetyCertificate {
    /// Whether the run-time PD test is still required.
    pub fn needs_pd(&self) -> bool {
        self.uncertain_writes_per_iter > 0
    }

    /// The certified undo-log budget for `iters` iterations: only
    /// uncertain writes are stamped. A valid execution can never trip it.
    pub fn write_budget(&self, iters: u64) -> u64 {
        self.uncertain_writes_per_iter * iters
    }

    /// The budget a certificate-less runtime must assume: every write
    /// shadowed. The gap to [`write_budget`](Self::write_budget) is the
    /// memory and `T_d` the certificate saves.
    pub fn naive_write_budget(&self, iters: u64) -> u64 {
        self.writes_per_iter * iters
    }

    /// Applies the certificate to a governor policy: the undo budget
    /// becomes the certified bound (plus slack 1 so a fully-certified loop
    /// keeps a non-zero, immediately-tripping guard against its own
    /// certificate being wrong).
    pub fn apply_to_policy(&self, policy: GovernorPolicy, iters: u64) -> GovernorPolicy {
        policy.with_budget(self.write_budget(iters).max(1))
    }

    /// Wraps shared data in a [`SpeculativeArray`] whose undo budget is
    /// the certified bound for `iters` iterations — the `with_budget`
    /// handoff the runtime uses instead of the naive every-write cap.
    pub fn speculative_array<T: Copy + Send + Sync>(
        &self,
        init: Vec<T>,
        iters: u64,
    ) -> wlp_core::SpeculativeArray<T> {
        wlp_core::SpeculativeArray::new(init).with_budget(self.write_budget(iters).max(1))
    }

    /// The Section 7 cost model under this certificate: only uncertain
    /// accesses pay the shadowing overhead terms, and the PD test is
    /// applied only when uncertainty remains.
    pub fn cost_model(&self, t_rem: f64, t_rec: f64, p: usize, iters: u64) -> CostModel {
        CostModel {
            t_rem,
            t_rec,
            p,
            parallelism: self.parallelism,
            accesses: (self.uncertain_writes_per_iter * iters) as f64,
            uses_pd: self.needs_pd(),
        }
    }

    /// The governor's starting rung under this certificate.
    pub fn starting_rung(
        &self,
        t_rem: f64,
        t_rec: f64,
        p: usize,
        iters: u64,
        min_speedup: f64,
    ) -> StrategyChoice {
        match self.verdict {
            CertVerdict::CertifiedSequential => StrategyChoice::Sequential,
            CertVerdict::CertifiedDoall => self
                .cost_model(t_rem, t_rec, p, iters)
                .recommended_strategy(min_speedup),
            CertVerdict::SpeculateBounded => {
                let rec = self
                    .cost_model(t_rem, t_rec, p, iters)
                    .recommended_strategy(min_speedup);
                if rec == StrategyChoice::Speculative
                    && self.terminator == TerminatorClass::RemainderVariant
                {
                    // uncertain writes + possible overshoot: bound the
                    // in-flight span instead of starting fully speculative
                    StrategyChoice::Windowed
                } else {
                    rec
                }
            }
        }
    }
}

/// A failure decoding a compact certificate line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertDecodeError {
    /// What was malformed.
    pub msg: String,
}

impl std::fmt::Display for CertDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "certificate decode error: {}", self.msg)
    }
}

impl std::error::Error for CertDecodeError {}

fn decode_err<T>(msg: impl Into<String>) -> Result<T, CertDecodeError> {
    Err(CertDecodeError { msg: msg.into() })
}

impl SafetyCertificate {
    /// Encodes the certificate as one stable, newline-free text line —
    /// the cache-friendly representation `wlp-serve`'s certificate cache
    /// stores and ships. The format is versioned (`cert-v1;…`) and
    /// round-trips exactly: [`decode_compact`](Self::decode_compact) of
    /// the result equals `self` (property-tested in
    /// `tests/cert_roundtrip.rs`).
    pub fn encode_compact(&self) -> String {
        let term = match self.terminator {
            TerminatorClass::RemainderInvariant => "ri",
            TerminatorClass::RemainderVariant => "rv",
        };
        let par = match self.parallelism {
            Parallelism::Full => "full",
            Parallelism::ParallelPrefix => "prefix",
            Parallelism::Sequential => "seq",
        };
        let join = |xs: &[String]| xs.join(",");
        format!(
            "cert-v1;verdict={};term={};par={};w={};u={};ua={};us={}",
            self.verdict.name(),
            term,
            par,
            self.writes_per_iter,
            self.uncertain_writes_per_iter,
            join(
                &self
                    .uncertain_arrays
                    .iter()
                    .map(|a| a.0.to_string())
                    .collect::<Vec<_>>()
            ),
            join(
                &self
                    .uncertain_stmts
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
            ),
        )
    }

    /// Decodes a [`encode_compact`](Self::encode_compact) line.
    pub fn decode_compact(line: &str) -> Result<Self, CertDecodeError> {
        let mut fields = line.trim().split(';');
        if fields.next() != Some("cert-v1") {
            return decode_err("missing `cert-v1` version tag");
        }
        let mut verdict = None;
        let mut term = None;
        let mut par = None;
        let mut w = None;
        let mut u = None;
        let mut ua = None;
        let mut us = None;
        for field in fields {
            let Some((key, val)) = field.split_once('=') else {
                return decode_err(format!("field `{field}` has no `=`"));
            };
            match key {
                "verdict" => {
                    verdict = Some(CertVerdict::from_name(val).ok_or_else(|| CertDecodeError {
                        msg: format!("unknown verdict `{val}`"),
                    })?);
                }
                "term" => {
                    term = Some(match val {
                        "ri" => TerminatorClass::RemainderInvariant,
                        "rv" => TerminatorClass::RemainderVariant,
                        _ => return decode_err(format!("unknown terminator `{val}`")),
                    });
                }
                "par" => {
                    par = Some(match val {
                        "full" => Parallelism::Full,
                        "prefix" => Parallelism::ParallelPrefix,
                        "seq" => Parallelism::Sequential,
                        _ => return decode_err(format!("unknown parallelism `{val}`")),
                    });
                }
                "w" => w = Some(parse_u64(val)?),
                "u" => u = Some(parse_u64(val)?),
                "ua" => {
                    ua = Some(
                        parse_list(val)?
                            .into_iter()
                            .map(|n| ArrayId(n as u32))
                            .collect(),
                    );
                }
                "us" => {
                    us = Some(parse_list(val)?.into_iter().map(|n| n as usize).collect());
                }
                _ => return decode_err(format!("unknown field `{key}`")),
            }
        }
        Ok(SafetyCertificate {
            verdict: verdict.ok_or_else(|| CertDecodeError {
                msg: "missing `verdict`".into(),
            })?,
            terminator: term.ok_or_else(|| CertDecodeError {
                msg: "missing `term`".into(),
            })?,
            parallelism: par.ok_or_else(|| CertDecodeError {
                msg: "missing `par`".into(),
            })?,
            writes_per_iter: w.ok_or_else(|| CertDecodeError {
                msg: "missing `w`".into(),
            })?,
            uncertain_writes_per_iter: u.ok_or_else(|| CertDecodeError {
                msg: "missing `u`".into(),
            })?,
            uncertain_arrays: ua.ok_or_else(|| CertDecodeError {
                msg: "missing `ua`".into(),
            })?,
            uncertain_stmts: us.ok_or_else(|| CertDecodeError {
                msg: "missing `us`".into(),
            })?,
        })
    }
}

fn parse_u64(val: &str) -> Result<u64, CertDecodeError> {
    val.parse::<u64>().map_err(|_| CertDecodeError {
        msg: format!("`{val}` is not an unsigned integer"),
    })
}

fn parse_list(val: &str) -> Result<Vec<u64>, CertDecodeError> {
    if val.is_empty() {
        return Ok(Vec::new());
    }
    val.split(',').map(parse_u64).collect()
}

impl serde::Serialize for SafetyCertificate {
    fn serialize(&self) -> serde::Value {
        serde::Value::Object(vec![
            (
                "verdict".into(),
                serde::Value::Str(self.verdict.name().into()),
            ),
            (
                "terminator".into(),
                serde::Value::Str(
                    match self.terminator {
                        TerminatorClass::RemainderInvariant => "remainder_invariant",
                        TerminatorClass::RemainderVariant => "remainder_variant",
                    }
                    .into(),
                ),
            ),
            (
                "writes_per_iter".into(),
                serde::Value::UInt(self.writes_per_iter),
            ),
            (
                "uncertain_writes_per_iter".into(),
                serde::Value::UInt(self.uncertain_writes_per_iter),
            ),
            (
                "uncertain_arrays".into(),
                serde::Value::Array(
                    self.uncertain_arrays
                        .iter()
                        .map(|a| serde::Value::UInt(u64::from(a.0)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Counts the body's write bound and the uncertain subset.
///
/// `refined` is the body after privatization censoring; `priv_info` tells
/// which original writes were privatized (they still execute, so they
/// count toward the may-write bound, but touch private memory — no shadow,
/// no undo). A surviving write is *uncertain* iff its array also carries
/// `Unknown`-subscript accesses in the refined body, or its statement is
/// incident to a loop-carried edge in the dispatcher-censored remainder
/// (`carried_stmts`) — the accesses the PD shadow must instrument.
pub fn count_writes(
    body: &LoopIr,
    refined: &LoopIr,
    priv_info: &Privatization,
    _recs: &[Recurrence],
    carried_stmts: &std::collections::BTreeSet<usize>,
) -> (u64, u64, Vec<ArrayId>, Vec<usize>) {
    // dispatcher updates are materialized up front (closed form / prefix),
    // so only remainder statements contribute to the may-write bound
    let writes_per_iter: u64 = body
        .stmts
        .iter()
        .filter(|s| !matches!(s.kind, wlp_ir::StmtKind::Update(_)))
        .map(|s| s.writes.len() as u64)
        .sum();

    let mut uncertain_arrays: Vec<ArrayId> = refined
        .stmts
        .iter()
        .flat_map(|s| s.writes.iter().chain(s.reads.iter()))
        .filter_map(|r| match r {
            WRef::Element(a, Subscript::Unknown) => Some(*a),
            _ => None,
        })
        .collect();
    uncertain_arrays.sort();
    uncertain_arrays.dedup();

    // recurrence updates are evaluated by closed form / parallel prefix,
    // not through the shadowed store — their writes are never uncertain
    let flagged: Vec<(usize, &WRef)> = refined
        .stmts
        .iter()
        .enumerate()
        .filter(|(_, s)| !matches!(s.kind, wlp_ir::StmtKind::Update(_)))
        .flat_map(|(si, s)| s.writes.iter().map(move |w| (si, w)))
        .filter(|(si, w)| {
            carried_stmts.contains(si)
                || match w {
                    WRef::Element(a, _) => {
                        uncertain_arrays.contains(a) && !priv_info.arrays.contains(a)
                    }
                    WRef::Scalar(v) => !priv_info.scalars.contains(v),
                }
        })
        .collect();
    let uncertain = flagged.len() as u64;
    let mut uncertain_stmts: Vec<usize> = flagged.iter().map(|(si, _)| *si).collect();
    uncertain_stmts.sort_unstable();
    uncertain_stmts.dedup();

    (
        writes_per_iter,
        uncertain,
        uncertain_arrays,
        uncertain_stmts,
    )
}
