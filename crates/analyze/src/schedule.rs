//! Scheduling certified fission plans on the runtime.
//!
//! This is the bridge from the static side ([`crate::fission`]) to the
//! threaded substrate: a [`FissionPlan`]'s work blocks become the stages
//! of a DOACROSS pipeline on the resident [`Pool`], with the grain
//! (iterations per wavefront sync cell) supplied by the [`Governor`]'s
//! grain ladder and the attempt outcome fed back into it.
//!
//! The stage order *is* the block order: every cross-block edge the
//! certifier emits points forward (`from_block < to_block`), and the
//! DOACROSS ordering — stage `s` of iteration `i` after stage `s` of
//! iteration `i−1` and stage `s−1` of iteration `i` — satisfies any
//! forward carried dependence of distance ≥ 1, so the plan's computed
//! sync distances are honored for free (they tell the scheduler how much
//! slack a looser schedule *could* exploit, not what it must add).
//!
//! Memory ordering: stage bodies communicate through the wavefront's
//! mutex (release on post, acquire on wait), so plain stores in one
//! stage are visible to the stage that waited on it; bodies need no
//! fences of their own.

use crate::fission::FissionPlan;
use wlp_obs::AbortReason;
use wlp_runtime::doacross::{doacross_grained, DoacrossOutcome};
use wlp_runtime::governor::Governor;
use wlp_runtime::Pool;

/// Runs `body(i, block)` for `0..upper` iterations with one DOACROSS
/// stage per certified work block, at the governor's current grain, and
/// records the outcome (success, contained panic → `Exception`, watchdog
/// expiry → `Timeout`) back into the governor so the grain ladder and
/// the strategy ladder both learn from the attempt.
///
/// `body(i, b)` must perform exactly the work of block `b`'s statements
/// at iteration `i`. Plans with no work blocks run as a single stage.
pub fn run_certified_blocks<F>(
    pool: &Pool,
    plan: &FissionPlan,
    upper: usize,
    governor: &mut Governor,
    body: F,
) -> DoacrossOutcome
where
    F: Fn(usize, usize) + Sync,
{
    let stages = plan.stages().max(1);
    let grain = governor.current_grain();
    let out = doacross_grained(pool, upper, stages, grain, body);
    if out.panic.is_some() {
        governor.record_failure(AbortReason::Exception);
    } else if out.timeout.is_some() {
        governor.record_failure(AbortReason::Timeout);
    } else {
        governor.record_success();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fission::fission_plan;
    use std::sync::atomic::{AtomicI64, Ordering};
    use wlp_ir::frontend::{lower, parse_program};
    use wlp_runtime::governor::GovernorPolicy;

    const WAVEFRONT: &str = "integer i = 1\nwhile (i < n) {\n    B[i] = B[i - 1] + w[i]\n    C[i] = B[i - 1] + 3\n    i = i + 1\n}";

    #[test]
    fn wavefront_blocks_schedule_doacross_and_match_sequential_semantics() {
        let body = lower(&parse_program(WAVEFRONT).expect("parse")).expect("lower");
        let plan = fission_plan(&body);
        assert_eq!(plan.stages(), 2);

        let n = 400usize;
        let w: Vec<i64> = (0..=n as i64).map(|i| i % 7).collect();
        // stage data: plain values behind the wavefront's release/acquire
        let b: Vec<AtomicI64> = (0..=n).map(|_| AtomicI64::new(0)).collect();
        let c: Vec<AtomicI64> = (0..=n).map(|_| AtomicI64::new(0)).collect();

        let pool = Pool::new(4);
        let mut gov = Governor::new(GovernorPolicy::default().with_grain(1, 16));
        // iterations are 1..n in source terms; shift by 1
        let out = run_certified_blocks(&pool, &plan, n - 1, &mut gov, |it, block| {
            let i = it + 1;
            match block {
                // block 0: B[i] = B[i-1] + w[i] (the recurrence stage)
                0 => {
                    let prev = b[i - 1].load(Ordering::Relaxed);
                    b[i].store(prev + w[i], Ordering::Relaxed);
                }
                // block 1: C[i] = B[i-1] + 3 (the consumer stage)
                _ => {
                    let prev = b[i - 1].load(Ordering::Relaxed);
                    c[i].store(prev + 3, Ordering::Relaxed);
                }
            }
        });
        assert_eq!(out.executed, (n - 1) as u64);
        assert_eq!(out.panic, None);
        assert!(out.timeout.is_none());

        // reference: sequential interleaved execution
        let mut rb = vec![0i64; n + 1];
        let mut rc = vec![0i64; n + 1];
        for i in 1..n {
            rb[i] = rb[i - 1] + w[i];
            rc[i] = rb[i - 1] + 3;
        }
        for i in 1..n {
            assert_eq!(b[i].load(Ordering::Relaxed), rb[i], "B[{i}]");
            assert_eq!(c[i].load(Ordering::Relaxed), rc[i], "C[{i}]");
        }
    }

    #[test]
    fn repeated_clean_runs_walk_the_grain_ladder_up() {
        let body = lower(&parse_program(WAVEFRONT).expect("parse")).expect("lower");
        let plan = fission_plan(&body);
        let pool = Pool::new(2);
        let mut gov = Governor::new(GovernorPolicy::default().with_grain(1, 8));
        let mut grains = Vec::new();
        for _ in 0..12 {
            grains.push(gov.current_grain());
            run_certified_blocks(&pool, &plan, 64, &mut gov, |_, _| {});
        }
        assert_eq!(grains[0], 1);
        assert!(
            *grains.last().unwrap() > 1,
            "sustained success coarsens the grain: {grains:?}"
        );
    }

    #[test]
    fn a_panicking_stage_is_contained_and_collapses_the_grain() {
        let body = lower(&parse_program(WAVEFRONT).expect("parse")).expect("lower");
        let plan = fission_plan(&body);
        let pool = Pool::new(2);
        let mut gov = Governor::new(GovernorPolicy::default().with_grain(1, 8));
        for _ in 0..8 {
            run_certified_blocks(&pool, &plan, 32, &mut gov, |_, _| {});
        }
        assert!(gov.current_grain() > 1);
        let out = run_certified_blocks(&pool, &plan, 32, &mut gov, |i, _| {
            assert!(i != 7, "stage fault");
        });
        assert!(out.panic.is_some());
        assert_eq!(gov.current_grain(), 1, "failure resets the grain ladder");
        assert_eq!(gov.failures().exception, 1);
    }
}
