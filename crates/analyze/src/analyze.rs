//! The top-level analysis pass: findings, refined plan, certificate.

use crate::certificate::{count_writes, CertVerdict, SafetyCertificate};
use crate::diag::{Diagnostic, Severity};
use crate::fission::{fission_plan, FissionPlan};
use crate::privatize::{privatization, privatized_body, Privatization};
use crate::reduction::{recurrences, Recurrence, RecurrenceRole};
use crate::terminator::{classify_terminator, RvWitness};
use std::collections::BTreeSet;
use wlp_core::taxonomy::TerminatorClass;
use wlp_ir::dependence::dep_graph;
use wlp_ir::plan::{plan, Plan, StrategyKind};
use wlp_ir::{LoopIr, StmtKind, Subscript, WRef};

/// Everything the analysis produced for one loop.
#[derive(Debug)]
pub struct Analysis {
    /// The plan the pipeline produces *without* this analysis.
    pub baseline: Plan,
    /// The plan after privatization-refined dependence information.
    pub refined: Plan,
    /// Privatization results.
    pub privatization: Privatization,
    /// Recognized recurrences and their roles.
    pub recurrences: Vec<Recurrence>,
    /// Dataflow terminator class.
    pub terminator: TerminatorClass,
    /// The speculation-safety certificate.
    pub certificate: SafetyCertificate,
    /// The Section 6 fission plan: fused work blocks, each with its own
    /// certificate, plus the cross-block DOACROSS edges.
    pub fission: FissionPlan,
    /// Structured findings, in statement order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Analysis {
    /// The worst severity among the findings ([`Severity::Note`] when
    /// there are none).
    pub fn max_severity(&self) -> Severity {
        self.diagnostics
            .iter()
            .map(|d| d.severity)
            .max()
            .unwrap_or(Severity::Note)
    }

    /// The one-or-two-line plan summary `wlp-lint` (and the golden corpus)
    /// prints after the findings: the whole-loop plan/verdict line, plus
    /// the fission line when distribution actually split the remainder.
    pub fn plan_summary(&self) -> String {
        let mut out = format!(
            "plan: {:?} → {:?}; verdict {:?}; write bound {}/iter ({} uncertain)",
            self.baseline.strategy,
            self.refined.strategy,
            self.certificate.verdict,
            self.certificate.writes_per_iter,
            self.certificate.uncertain_writes_per_iter,
        );
        if let Some(f) = self.fission.summary() {
            out.push('\n');
            out.push_str(&f);
        }
        out
    }
}

fn describe(r: &WRef) -> String {
    match r {
        WRef::Scalar(v) => format!("scalar v{}", v.0),
        WRef::Element(a, Subscript::Const(k)) => format!("A{}[{k}]", a.0),
        WRef::Element(a, Subscript::Affine { coeff, offset }) => {
            format!("A{}[{coeff}·i{offset:+}]", a.0)
        }
        WRef::Element(a, Subscript::Unknown) => format!("A{}[?]", a.0),
    }
}

/// The remainder view of a (privatization-refined) body: recurrence
/// updates contribute nothing (their value pattern is materialized up
/// front — closed form or parallel prefix), and accesses to the scalars
/// they own are likewise dropped everywhere. What is left is exactly the
/// memory traffic a parallel execution of the remainder performs.
pub(crate) fn remainder_view(body: &LoopIr) -> LoopIr {
    let update_vars: BTreeSet<_> = body
        .stmts
        .iter()
        .filter(|s| matches!(s.kind, StmtKind::Update(_)))
        .flat_map(|s| s.writes.iter())
        .filter_map(|w| match w {
            WRef::Scalar(v) => Some(*v),
            WRef::Element(..) => None,
        })
        .collect();
    let owned = |r: &WRef| matches!(r, WRef::Scalar(v) if update_vars.contains(v));
    let mut out = LoopIr::new();
    for s in &body.stmts {
        let mut c = s.clone();
        if matches!(s.kind, StmtKind::Update(_)) {
            c.writes.clear();
            c.reads.clear();
        } else {
            c.writes.retain(|r| !owned(r));
            c.reads.retain(|r| !owned(r));
        }
        out.push(c);
    }
    out
}

/// The certificate pipeline shared by the whole-loop analysis and the
/// per-block fission certifier: plan → privatize → refined plan →
/// recurrences → terminator → carried-edge census → verdict. Keeping it
/// in one place guarantees a fused block masked down to its own
/// statements is judged by exactly the rules the whole loop is.
pub(crate) struct CertCore {
    pub baseline: Plan,
    pub refined: Plan,
    pub priv_info: Privatization,
    pub refined_body: LoopIr,
    pub recs: Vec<Recurrence>,
    pub terminator: TerminatorClass,
    pub rv_witness: Option<RvWitness>,
    pub certificate: SafetyCertificate,
}

pub(crate) fn certify_core(body: &LoopIr) -> CertCore {
    let baseline = plan(body);
    let priv_info = privatization(body);
    let refined_body = privatized_body(body, &priv_info);
    let refined = plan(&refined_body);
    let recs = recurrences(body);
    let (terminator, rv_witness) = classify_terminator(body);

    // The planner reasons per fused block (fission sequencing), but the
    // executors run the remainder as one fused DOALL under the PD test —
    // so a budget-0 certificate additionally requires that *no*
    // loop-carried edge survives anywhere in the dispatcher-censored
    // remainder, SCC boundaries notwithstanding.
    let rem_view = remainder_view(&refined_body);
    let rem_graph = dep_graph(&rem_view);
    let carried_stmts: BTreeSet<usize> = rem_graph
        .edges
        .iter()
        .filter(|e| e.loop_carried)
        .flat_map(|e| [e.from, e.to])
        .collect();
    let (writes_per_iter, uncertain, uncertain_arrays, uncertain_stmts) =
        count_writes(body, &refined_body, &priv_info, &recs, &carried_stmts);
    let verdict = if refined.strategy == StrategyKind::Sequential {
        CertVerdict::CertifiedSequential
    } else if !refined.needs_pd_test && carried_stmts.is_empty() {
        CertVerdict::CertifiedDoall
    } else {
        CertVerdict::SpeculateBounded
    };
    let (uncertain, uncertain_stmts) = match verdict {
        CertVerdict::SpeculateBounded => (uncertain, uncertain_stmts),
        // certified loops shadow nothing
        CertVerdict::CertifiedDoall | CertVerdict::CertifiedSequential => (0, Vec::new()),
    };

    let certificate = SafetyCertificate {
        verdict,
        terminator,
        parallelism: refined.cell.parallelism,
        writes_per_iter,
        uncertain_writes_per_iter: uncertain,
        uncertain_arrays,
        uncertain_stmts,
    };

    CertCore {
        baseline,
        refined,
        priv_info,
        refined_body,
        recs,
        terminator,
        rv_witness,
        certificate,
    }
}

/// Runs the full analysis over one loop body.
pub fn analyze(body: &LoopIr) -> Analysis {
    let CertCore {
        baseline,
        refined,
        priv_info,
        refined_body,
        recs,
        terminator,
        rv_witness,
        certificate,
    } = certify_core(body);
    let fission = fission_plan(body);

    let mut diagnostics = Vec::new();
    let span_of = |stmt: usize| body.stmts.get(stmt).and_then(|s| s.span);

    // privatization findings
    for v in &priv_info.scalars {
        let def = body
            .stmts
            .iter()
            .position(|s| s.writes.contains(&WRef::Scalar(*v)));
        diagnostics.push(
            Diagnostic::new(
                "W-PRIV01",
                Severity::Note,
                format!(
                    "scalar v{} is defined before use in every iteration: privatizable",
                    v.0
                ),
            )
            .with_span(def.and_then(span_of))
            .with_hint("give each worker a private copy; its carried dependences drop"),
        );
    }
    for a in &priv_info.arrays {
        let def = body.stmts.iter().position(|s| {
            s.writes
                .iter()
                .any(|w| matches!(w, WRef::Element(wa, _) if wa == a))
        });
        diagnostics.push(
            Diagnostic::new(
                "W-PRIV02",
                Severity::Note,
                format!(
                    "array A{} is a per-iteration workspace (every read covered): privatizable",
                    a.0
                ),
            )
            .with_span(def.and_then(span_of))
            .with_hint("privatize with last-value copy-out if live after the loop"),
        );
    }

    // recurrence findings
    for r in &recs {
        let (code, sev, msg, hint): (_, _, String, &str) = match r.role {
            RecurrenceRole::Reduction => (
                "W-RED01",
                Severity::Note,
                format!(
                    "v{} is an associative reduction ({:?}) read nowhere else",
                    r.var.0, r.op
                ),
                "evaluate by parallel prefix; its carried dependence is benign",
            ),
            RecurrenceRole::Dispatcher => (
                "W-RED02",
                Severity::Note,
                format!(
                    "v{} is the loop's dispatcher recurrence ({:?})",
                    r.var.0, r.op
                ),
                "its value pattern is produced up front (closed form or prefix)",
            ),
            RecurrenceRole::General => (
                "W-RED03",
                Severity::Warning,
                format!(
                    "v{} is a general recurrence ({:?}): dispatcher must run sequentially",
                    r.var.0, r.op
                ),
                "general-* strategies pipeline the remainder against it",
            ),
        };
        diagnostics.push(
            Diagnostic::new(code, sev, msg)
                .with_span(span_of(r.stmt))
                .with_hint(hint),
        );
    }

    // terminator findings
    match (&terminator, rv_witness) {
        (TerminatorClass::RemainderVariant, Some(w)) => diagnostics.push(
            Diagnostic::new(
                "W-TERM01",
                Severity::Warning,
                format!(
                    "terminator is remainder-variant: the exit predicate reads {} which statement {} may write ({})",
                    describe(&w.read),
                    w.write_stmt,
                    describe(&w.write)
                ),
            )
            .with_span(span_of(w.exit_stmt))
            .with_hint("overshoot is possible: backups + time-stamps, or a window bound"),
        ),
        _ => {
            // note when dataflow *downgraded* the baseline's coarse RV
            if baseline.terminator == TerminatorClass::RemainderVariant {
                diagnostics.push(
                    Diagnostic::new(
                        "W-TERM02",
                        Severity::Note,
                        "exit predicate provably never reads a remainder-written location: remainder-invariant",
                    )
                    .with_hint("no backups needed; overshot iterations are harmless"),
                );
            }
        }
    }

    // unanalyzable accesses (in the refined body: privatized ones are gone)
    for (si, s) in refined_body.stmts.iter().enumerate() {
        let unknowns: Vec<&WRef> = s
            .writes
            .iter()
            .chain(s.reads.iter())
            .filter(|r| matches!(r, WRef::Element(_, Subscript::Unknown)))
            .collect();
        if let Some(first) = unknowns.first() {
            diagnostics.push(
                Diagnostic::new(
                    "W-SPEC01",
                    Severity::Warning,
                    format!(
                        "statement {si} accesses {} through an unanalyzable subscript",
                        describe(first)
                    ),
                )
                .with_span(span_of(si))
                .with_hint("the run-time PD test will shadow this access"),
            );
        }
    }

    // fission findings: when distribution actually split the remainder
    // into several work blocks, report each block's verdict at its span,
    // and each cross-block DOACROSS edge with its synchronization
    // distance.
    if fission.is_fissioned() {
        for b in &fission.blocks {
            diagnostics.push(
                Diagnostic::new(
                    "W-FIS01",
                    Severity::Note,
                    format!(
                        "fused block {} ({}): {}",
                        b.index,
                        b.describe_stmts(),
                        b.certificate.verdict.name()
                    ),
                )
                .with_span(b.span)
                .with_hint(match b.certificate.verdict {
                    CertVerdict::CertifiedDoall => {
                        "this block runs fully parallel as one DOACROSS stage"
                    }
                    CertVerdict::CertifiedSequential => {
                        "this block pipelines sequentially as one DOACROSS stage"
                    }
                    CertVerdict::SpeculateBounded => {
                        "this block's stage keeps the PD shadow; siblings run unshadowed"
                    }
                }),
            );
        }
        for e in &fission.edges {
            diagnostics.push(
                Diagnostic::new(
                    "W-FIS02",
                    Severity::Note,
                    format!(
                        "doacross: block {} → block {} carries a {:?} dependence at distance {}",
                        e.from_block, e.to_block, e.kind, e.distance
                    ),
                )
                .with_span(fission.blocks.get(e.to_block).and_then(|b| b.span))
                .with_hint(
                    "stage order synchronizes: the sink stage of iteration i waits for the \
                     source stage of iteration i−distance",
                ),
            );
        }
    }

    let verdict = certificate.verdict;
    let writes_per_iter = certificate.writes_per_iter;
    let uncertain = certificate.uncertain_writes_per_iter;

    match verdict {
        CertVerdict::CertifiedSequential => {
            // a provable recurrence forces the *whole-loop* plan
            // sequential, but when fission confines it to its own
            // block(s) with parallel sibling work, the block plan still
            // extracts parallelism — that must not read as a hard error.
            let recovered = fission.is_fissioned()
                && fission
                    .blocks
                    .iter()
                    .any(|b| b.certificate.verdict != CertVerdict::CertifiedSequential);
            if recovered {
                diagnostics.push(
                    Diagnostic::new(
                        "W-SEQ02",
                        Severity::Warning,
                        format!(
                            "a provable loop-carried recurrence confines {} of {} fused blocks: \
                             fission + DOACROSS recovers the parallel siblings",
                            fission
                                .blocks
                                .iter()
                                .filter(|b| {
                                    b.certificate.verdict == CertVerdict::CertifiedSequential
                                })
                                .count(),
                            fission.blocks.len(),
                        ),
                    )
                    .with_hint("schedule the block plan DOACROSS instead of running sequentially"),
                );
            } else {
                diagnostics.push(
                    Diagnostic::new(
                        "W-SEQ01",
                        Severity::Error,
                        "a loop-carried dependence is provable even after privatization: parallel execution would abort deterministically",
                    )
                    .with_hint("run sequentially (or distribute the independent statements out)"),
                );
            }
        }
        CertVerdict::CertifiedDoall => {
            let upgraded = baseline.strategy == StrategyKind::Sequential
                || baseline.needs_pd_test;
            diagnostics.push(
                Diagnostic::new(
                    "W-DOALL01",
                    Severity::Note,
                    if upgraded {
                        "certified DOALL after refinement: no run-time test needed"
                    } else {
                        "certified DOALL: no run-time test needed"
                    },
                )
                .with_hint("execute fully parallel; undo budget 0"),
            );
        }
        CertVerdict::SpeculateBounded => diagnostics.push(
            Diagnostic::new(
                "W-SPEC02",
                Severity::Warning,
                format!(
                    "speculation required; certified may-write bound: {uncertain} uncertain of {writes_per_iter} writes per iteration"
                ),
            )
            .with_hint("shadow only the uncertain arrays; budget = bound × iterations"),
        ),
    }

    diagnostics.sort_by_key(|d| (d.span.map(|s| s.start), d.code));

    Analysis {
        baseline,
        refined,
        privatization: priv_info,
        recurrences: recs,
        terminator,
        certificate,
        fission,
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlp_ir::ir::examples;

    #[test]
    fn figure5b_upgrades_sequential_to_doall() {
        let body = examples::figure5b_swap();
        let a = analyze(&body);
        assert_eq!(
            a.baseline.strategy,
            StrategyKind::Sequential,
            "{:?}",
            a.baseline
        );
        assert_eq!(
            a.refined.strategy,
            StrategyKind::InductionDoall,
            "{:?}",
            a.refined
        );
        assert_eq!(a.certificate.verdict, CertVerdict::CertifiedDoall);
        assert_eq!(a.certificate.uncertain_writes_per_iter, 0);
        assert!(a.diagnostics.iter().any(|d| d.code == "W-PRIV01"));
        assert!(a.diagnostics.iter().any(|d| d.code == "W-DOALL01"));
    }

    #[test]
    fn figure5c_is_certified_sequential() {
        let a = analyze(&examples::figure5c_recurrence());
        assert_eq!(a.certificate.verdict, CertVerdict::CertifiedSequential);
        assert_eq!(a.max_severity(), Severity::Error);
    }

    #[test]
    fn track_style_keeps_speculation_with_a_bound() {
        let a = analyze(&examples::track_style_unknown());
        assert_eq!(a.certificate.verdict, CertVerdict::SpeculateBounded);
        assert!(a.certificate.needs_pd());
        assert!(a.certificate.write_budget(100) <= a.certificate.naive_write_budget(100));
    }

    #[test]
    fn figure5a_is_certified_doall() {
        let a = analyze(&examples::figure5a_independent());
        assert_eq!(a.certificate.verdict, CertVerdict::CertifiedDoall);
        assert!(!a.certificate.needs_pd());
    }

    #[test]
    fn diagnostics_carry_stable_codes() {
        let a = analyze(&examples::figure1b_list_traversal());
        for d in &a.diagnostics {
            assert!(d.code.starts_with("W-"), "{d:?}");
        }
    }
}
