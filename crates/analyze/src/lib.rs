//! Static safety certification for WHILE-loop parallelization.
//!
//! The paper's transformations are sound only under properties the
//! compiler must *prove*: which locations are privatizable, which updates
//! are associative recurrences, whether the terminator can observe the
//! remainder (Table 1's RI/RV split). This crate proves them over
//! [`wlp_ir::LoopIr`] and packages the result two ways:
//!
//! * **diagnostics** — structured, span-carrying findings
//!   ([`diag::Diagnostic`]) rendered by the `wlp-lint` CLI;
//! * **certificates** — [`certificate::SafetyCertificate`], the static
//!   may-write bound and verdict the runtime consumes: the undo budget
//!   shrinks to the certified-uncertain writes, the cost model charges
//!   only those, and the governor starts on the right ladder rung.
//!
//! Every certificate is falsifiable: [`concrete`] replays the loop into
//! access logs and [`wlp_pd::crosscheck`] drives them through the dynamic
//! oracle — the static-vs-dynamic agreement property the test suite pins.
//!
//! Pipeline: [`privatize`] (def-before-use ⇒ drop carried edges) →
//! [`reduction`] (accumulator non-interference) → [`terminator`] (RI/RV by
//! subscript dataflow) → [`analyze()`] (refined plan + certificate).

pub mod analyze;
pub mod certificate;
pub mod concrete;
pub mod diag;
pub mod fission;
pub mod lint;
pub mod privatize;
pub mod reduction;
pub mod schedule;
pub mod terminator;

pub use analyze::{analyze, Analysis};

use wlp_ir::frontend::{lower, parse_program, FrontendError, Program};

/// One-stop pipeline entry: parse → lower → [`analyze()`] in a single
/// call, returning the parsed [`Program`] (what an interpreter executes)
/// together with the finished [`Analysis`] (certificate included).
///
/// This is the exact sequence the serve-layer certificate cache runs on
/// a miss and warm-restart recovery runs per persisted record; keeping
/// it here guarantees every consumer derives certificates the same way.
pub fn analyze_source(source: &str) -> Result<(Program, Analysis), FrontendError> {
    let program = parse_program(source)?;
    let body = lower(&program)?;
    let analysis = analyze(&body);
    Ok((program, analysis))
}

/// Certifies `source` end-to-end and returns the compact one-line
/// certificate encoding ([`SafetyCertificate::encode_compact`]) — the
/// canonical durable form: what the serve layer journals to disk and
/// what recovery cross-checks a persisted record against.
pub fn certify_compact(source: &str) -> Result<String, FrontendError> {
    analyze_source(source).map(|(_, a)| a.certificate.encode_compact())
}

pub use certificate::{CertDecodeError, CertVerdict, SafetyCertificate};
pub use concrete::{array_log, concretize, remainder_log, scalar_log, ConcreteLog, Owner};
pub use diag::{Diagnostic, Severity};
pub use fission::{fission_plan, masked_body, BlockCertificate, DoacrossEdge, FissionPlan};
pub use lint::{lint_source, LintOutcome};
pub use privatize::{privatization, privatized_body, Privatization};
pub use reduction::{recurrences, Recurrence, RecurrenceRole};
pub use schedule::run_certified_blocks;
pub use terminator::{classify_terminator, RvWitness};

#[cfg(test)]
mod pipeline_tests {
    use super::*;

    const DOALL: &str = "integer i = 0\nwhile (i < n) {\n    A[i] = 2 * A[i]\n    i = i + 1\n}";

    #[test]
    fn analyze_source_matches_the_staged_pipeline() {
        let (program, analysis) = analyze_source(DOALL).expect("valid source");
        let body = lower(&program).expect("lower");
        assert_eq!(analysis.certificate, analyze(&body).certificate);
    }

    #[test]
    fn certify_compact_round_trips_through_decode() {
        let line = certify_compact(DOALL).expect("valid source");
        let cert = SafetyCertificate::decode_compact(&line).expect("decodes");
        assert_eq!(cert.encode_compact(), line);
    }

    #[test]
    fn certify_compact_propagates_frontend_errors() {
        assert!(certify_compact("while (").is_err());
    }
}
