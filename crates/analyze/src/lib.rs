//! Static safety certification for WHILE-loop parallelization.
//!
//! The paper's transformations are sound only under properties the
//! compiler must *prove*: which locations are privatizable, which updates
//! are associative recurrences, whether the terminator can observe the
//! remainder (Table 1's RI/RV split). This crate proves them over
//! [`wlp_ir::LoopIr`] and packages the result two ways:
//!
//! * **diagnostics** — structured, span-carrying findings
//!   ([`diag::Diagnostic`]) rendered by the `wlp-lint` CLI;
//! * **certificates** — [`certificate::SafetyCertificate`], the static
//!   may-write bound and verdict the runtime consumes: the undo budget
//!   shrinks to the certified-uncertain writes, the cost model charges
//!   only those, and the governor starts on the right ladder rung.
//!
//! Every certificate is falsifiable: [`concrete`] replays the loop into
//! access logs and [`wlp_pd::crosscheck`] drives them through the dynamic
//! oracle — the static-vs-dynamic agreement property the test suite pins.
//!
//! Pipeline: [`privatize`] (def-before-use ⇒ drop carried edges) →
//! [`reduction`] (accumulator non-interference) → [`terminator`] (RI/RV by
//! subscript dataflow) → [`analyze()`] (refined plan + certificate).

pub mod analyze;
pub mod certificate;
pub mod concrete;
pub mod diag;
pub mod lint;
pub mod privatize;
pub mod reduction;
pub mod terminator;

pub use analyze::{analyze, Analysis};
pub use certificate::{CertDecodeError, CertVerdict, SafetyCertificate};
pub use concrete::{array_log, concretize, remainder_log, scalar_log, ConcreteLog, Owner};
pub use diag::{Diagnostic, Severity};
pub use lint::{lint_source, LintOutcome};
pub use privatize::{privatization, privatized_body, Privatization};
pub use reduction::{recurrences, Recurrence, RecurrenceRole};
pub use terminator::{classify_terminator, RvWitness};
