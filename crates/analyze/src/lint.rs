//! Linting source text: parse → lower → analyze → diagnostics.

use crate::analyze::{analyze, Analysis};
use crate::diag::{Diagnostic, Severity};
use wlp_ir::frontend::{parse_loop, FrontendError};

/// What linting one source produced.
#[derive(Debug)]
pub struct LintOutcome {
    /// The full analysis, when the source parsed and lowered.
    pub analysis: Option<Analysis>,
    /// All diagnostics, including parse/lower errors.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintOutcome {
    /// Worst severity across all diagnostics.
    pub fn max_severity(&self) -> Severity {
        self.diagnostics
            .iter()
            .map(|d| d.severity)
            .max()
            .unwrap_or(Severity::Note)
    }

    /// Renders every diagnostic against the source (human format).
    pub fn render(&self, src: &str) -> String {
        self.diagnostics
            .iter()
            .map(|d| d.render(Some(src)))
            .collect()
    }

    /// Renders every diagnostic as one JSON object per line.
    pub fn render_json(&self, src: &str) -> String {
        self.diagnostics
            .iter()
            .map(|d| format!("{}\n", d.render_json(Some(src))))
            .collect()
    }
}

/// Lints one WHILE-loop source text.
pub fn lint_source(src: &str) -> LintOutcome {
    match parse_loop(src) {
        Ok(ir) => {
            let analysis = analyze(&ir);
            let diagnostics = analysis.diagnostics.clone();
            LintOutcome {
                analysis: Some(analysis),
                diagnostics,
            }
        }
        Err(e) => {
            let code = match &e {
                FrontendError::Parse(_) => "E-PARSE",
                FrontendError::Lower(_) => "E-LOWER",
            };
            let d = Diagnostic::new(code, Severity::Error, e.to_string())
                .with_span(Some(e.span()))
                .with_hint("fix the source before analysis can run");
            LintOutcome {
                analysis: None,
                diagnostics: vec![d],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SWAP: &str = "integer i = 1\n\
                        integer tmp = 0\n\
                        while (i < n) {\n\
                        \x20   tmp = A[2 * i]\n\
                        \x20   A[2 * i] = A[2 * i - 1]\n\
                        \x20   A[2 * i - 1] = tmp\n\
                        \x20   i = i + 1\n\
                        }";

    #[test]
    fn swap_loop_lints_to_privatization_note_with_spans() {
        let out = lint_source(SWAP);
        let a = out.analysis.as_ref().expect("parses");
        assert!(!a.privatization.scalars.is_empty(), "{a:?}");
        let privd = out
            .diagnostics
            .iter()
            .find(|d| d.code == "W-PRIV01")
            .expect("privatization note");
        let span = privd.span.expect("lowered IR carries spans");
        assert_eq!(&SWAP[span.start..span.end], "tmp = A[2 * i]");
        let rendered = out.render(SWAP);
        assert!(rendered.contains("at 4:"), "{rendered}");
    }

    #[test]
    fn parse_errors_become_error_diagnostics() {
        let out = lint_source("while (x { }");
        assert!(out.analysis.is_none());
        assert_eq!(out.max_severity(), Severity::Error);
        assert_eq!(out.diagnostics[0].code, "E-PARSE");
        assert!(out.diagnostics[0].span.is_some());
    }

    #[test]
    fn json_rendering_is_one_object_per_line() {
        let out = lint_source(SWAP);
        let json = out.render_json(SWAP);
        for line in json.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert_eq!(json.lines().count(), out.diagnostics.len());
    }
}
