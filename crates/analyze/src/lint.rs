//! Linting source text: parse → lower → analyze → diagnostics.

use crate::analyze::{analyze, Analysis};
use crate::diag::{Diagnostic, Severity};
use wlp_ir::frontend::{parse_loop, FrontendError};

/// What linting one source produced.
#[derive(Debug)]
pub struct LintOutcome {
    /// The full analysis, when the source parsed and lowered.
    pub analysis: Option<Analysis>,
    /// All diagnostics, including parse/lower errors.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintOutcome {
    /// Worst severity across all diagnostics.
    pub fn max_severity(&self) -> Severity {
        self.diagnostics
            .iter()
            .map(|d| d.severity)
            .max()
            .unwrap_or(Severity::Note)
    }

    /// Renders every diagnostic against the source (human format).
    pub fn render(&self, src: &str) -> String {
        self.diagnostics
            .iter()
            .map(|d| d.render(Some(src)))
            .collect()
    }

    /// Renders every diagnostic as one JSON object per line.
    pub fn render_json(&self, src: &str) -> String {
        self.diagnostics
            .iter()
            .map(|d| format!("{}\n", d.render_json(Some(src))))
            .collect()
    }
}

/// Lints one WHILE-loop source text.
pub fn lint_source(src: &str) -> LintOutcome {
    match parse_loop(src) {
        Ok(ir) => {
            let analysis = analyze(&ir);
            let diagnostics = analysis.diagnostics.clone();
            LintOutcome {
                analysis: Some(analysis),
                diagnostics,
            }
        }
        Err(e) => {
            let code = match &e {
                FrontendError::Parse(_) => "E-PARSE",
                FrontendError::Lower(_) => "E-LOWER",
            };
            let d = Diagnostic::new(code, Severity::Error, e.to_string())
                .with_span(Some(e.span()))
                .with_hint("fix the source before analysis can run");
            LintOutcome {
                analysis: None,
                diagnostics: vec![d],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SWAP: &str = "integer i = 1\n\
                        integer tmp = 0\n\
                        while (i < n) {\n\
                        \x20   tmp = A[2 * i]\n\
                        \x20   A[2 * i] = A[2 * i - 1]\n\
                        \x20   A[2 * i - 1] = tmp\n\
                        \x20   i = i + 1\n\
                        }";

    #[test]
    fn swap_loop_lints_to_privatization_note_with_spans() {
        let out = lint_source(SWAP);
        let a = out.analysis.as_ref().expect("parses");
        assert!(!a.privatization.scalars.is_empty(), "{a:?}");
        let privd = out
            .diagnostics
            .iter()
            .find(|d| d.code == "W-PRIV01")
            .expect("privatization note");
        let span = privd.span.expect("lowered IR carries spans");
        assert_eq!(&SWAP[span.start..span.end], "tmp = A[2 * i]");
        let rendered = out.render(SWAP);
        assert!(rendered.contains("at 4:"), "{rendered}");
    }

    #[test]
    fn parse_errors_become_error_diagnostics() {
        let out = lint_source("while (x { }");
        assert!(out.analysis.is_none());
        assert_eq!(out.max_severity(), Severity::Error);
        assert_eq!(out.diagnostics[0].code, "E-PARSE");
        assert!(out.diagnostics[0].span.is_some());
    }

    const WAVEFRONT: &str = "integer i = 1\n\
                             while (i < n) {\n\
                             \x20   B[i] = B[i - 1] + w[i]\n\
                             \x20   C[i] = B[i - 1] + 3\n\
                             \x20   i = i + 1\n\
                             }";

    const PARTIAL_SUMS: &str = "integer i = 1\n\
                                while (i < n) {\n\
                                \x20   A[i] = A[i] + A[i - 1]\n\
                                \x20   i = i + 1\n\
                                }";

    #[test]
    fn mixed_block_verdicts_are_a_warning_not_an_error() {
        // wavefront: the B recurrence confines the whole-loop verdict to
        // CertifiedSequential, but fission recovers a DOALL sibling — so
        // W-SEQ01 (error) downgrades to W-SEQ02 (warning) and wlp-lint
        // exits 0 on the file.
        let out = lint_source(WAVEFRONT);
        assert!(out.diagnostics.iter().any(|d| d.code == "W-SEQ02"));
        assert!(out.diagnostics.iter().all(|d| d.code != "W-SEQ01"));
        assert!(out.max_severity() < Severity::Error, "{out:?}");

        // each fused block gets its own diagnostic with a span
        let blocks: Vec<_> = out
            .diagnostics
            .iter()
            .filter(|d| d.code == "W-FIS01")
            .collect();
        assert_eq!(blocks.len(), 2);
        assert!(blocks.iter().all(|d| d.span.is_some()));
        assert!(out.diagnostics.iter().any(|d| d.code == "W-FIS02"));
    }

    #[test]
    fn fully_sequential_loops_still_error() {
        // partial_sums has a single work block: no fission escape hatch,
        // the W-SEQ01 error (exit 1) stands.
        let out = lint_source(PARTIAL_SUMS);
        assert!(out.diagnostics.iter().any(|d| d.code == "W-SEQ01"));
        assert_eq!(out.max_severity(), Severity::Error);
    }

    #[test]
    fn json_rendering_is_one_object_per_line() {
        let out = lint_source(SWAP);
        let json = out.render_json(SWAP);
        for line in json.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert_eq!(json.lines().count(), out.diagnostics.len());
    }
}
