//! Privatization analysis: def-before-use per iteration.
//!
//! A location is **privatizable** when every read of it inside one
//! iteration is preceded (in program order, within that same iteration) by
//! a write of the very same location. Each worker can then keep a private
//! copy: the cross-iteration output (and covered flow/anti) dependences on
//! the shared cell vanish, and the dependence edges it contributed can be
//! dropped before planning — the paper's Figure 5(b) `tmp` is the
//! canonical case.
//!
//! Scalars written by recurrence updates (`x = x + c`, …) are *never*
//! candidates: an update reads its accumulator before writing it, which is
//! exactly an exposed read. Arrays qualify only when every subscript on
//! them is analyzable and every read is covered by an earlier write with
//! the *identical* subscript expression — `Unknown` neither covers nor is
//! covered.

use std::collections::{BTreeMap, BTreeSet};
use wlp_ir::{ArrayId, LoopIr, StmtKind, Subscript, VarId, WRef};

/// Where an exposed (not def-before-use) read was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExposedRead {
    /// Statement index of the read.
    pub stmt: usize,
    /// The location read before any same-iteration definition.
    pub loc: WRef,
}

/// Result of the privatization analysis.
#[derive(Debug, Clone, Default)]
pub struct Privatization {
    /// Scalars proved def-before-use in every iteration.
    pub scalars: BTreeSet<VarId>,
    /// Arrays proved def-before-use (per element, by identical subscript).
    pub arrays: BTreeSet<ArrayId>,
    /// Witnesses for candidates that failed: the first exposed read per
    /// location (for diagnostics).
    pub exposed: Vec<ExposedRead>,
}

impl Privatization {
    /// Whether `r` refers to a privatizable location.
    pub fn covers(&self, r: &WRef) -> bool {
        match r {
            WRef::Scalar(v) => self.scalars.contains(v),
            WRef::Element(a, _) => self.arrays.contains(a),
        }
    }
}

/// Runs the analysis over one loop body.
pub fn privatization(body: &LoopIr) -> Privatization {
    let mut out = Privatization::default();

    // locations a recurrence update owns: excluded from privatization
    let update_vars: BTreeSet<VarId> = body
        .stmts
        .iter()
        .filter(|s| matches!(s.kind, StmtKind::Update(_)))
        .flat_map(|s| s.writes.iter())
        .filter_map(|w| match w {
            WRef::Scalar(v) => Some(*v),
            WRef::Element(..) => None,
        })
        .collect();

    // ---- scalars ------------------------------------------------------
    let mut scalar_writes: BTreeMap<VarId, usize> = BTreeMap::new(); // first writer
    for (si, s) in body.stmts.iter().enumerate() {
        for w in &s.writes {
            if let WRef::Scalar(v) = w {
                scalar_writes.entry(*v).or_insert(si);
            }
        }
    }
    'scalar: for (&v, &first_write) in &scalar_writes {
        if update_vars.contains(&v) {
            continue;
        }
        for (si, s) in body.stmts.iter().enumerate() {
            // a read at statement si is covered iff some statement strictly
            // earlier in the iteration writes v (a same-statement write
            // happens after the statement's reads: `v = v + …` reads first)
            if s.reads.contains(&WRef::Scalar(v)) && si <= first_write {
                out.exposed.push(ExposedRead {
                    stmt: si,
                    loc: WRef::Scalar(v),
                });
                continue 'scalar;
            }
        }
        out.scalars.insert(v);
    }

    // ---- arrays -------------------------------------------------------
    let mut arrays: BTreeSet<ArrayId> = BTreeSet::new();
    let mut unknown_tainted: BTreeSet<ArrayId> = BTreeSet::new();
    for s in &body.stmts {
        for r in s.writes.iter().chain(s.reads.iter()) {
            if let WRef::Element(a, sub) = r {
                arrays.insert(*a);
                if *sub == Subscript::Unknown {
                    unknown_tainted.insert(*a);
                }
            }
        }
    }
    'array: for &a in &arrays {
        if unknown_tainted.contains(&a) {
            continue;
        }
        let mut wrote_any = false;
        for (si, s) in body.stmts.iter().enumerate() {
            for r in &s.reads {
                if let WRef::Element(ra, rsub) = r {
                    if *ra != a {
                        continue;
                    }
                    // covered iff an earlier statement writes a[rsub]
                    // with the identical subscript expression
                    let covered = body.stmts[..si].iter().any(|w| {
                        w.writes.iter().any(
                            |wr| matches!(wr, WRef::Element(wa, wsub) if wa == ra && wsub == rsub),
                        )
                    });
                    if !covered {
                        out.exposed.push(ExposedRead { stmt: si, loc: *r });
                        continue 'array;
                    }
                }
            }
            wrote_any |= s
                .writes
                .iter()
                .any(|w| matches!(w, WRef::Element(wa, _) if *wa == a));
        }
        if wrote_any {
            out.arrays.insert(a);
        }
    }

    out
}

/// `body` with every reference to a privatizable location removed: the
/// planner then sees only the dependences that survive privatization.
pub fn privatized_body(body: &LoopIr, p: &Privatization) -> LoopIr {
    let mut out = LoopIr::new();
    for s in &body.stmts {
        let mut c = s.clone();
        c.writes.retain(|r| !p.covers(r));
        c.reads.retain(|r| !p.covers(r));
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlp_ir::ir::examples;
    use wlp_ir::{Stmt, UpdateOp};

    #[test]
    fn figure5b_tmp_is_privatizable() {
        let p = privatization(&examples::figure5b_swap());
        assert!(p.scalars.contains(&VarId(0)), "{p:?}");
        assert!(p.arrays.is_empty(), "A's reads are not covered");
    }

    #[test]
    fn exposed_scalar_read_blocks_privatization() {
        // y read (stmt 0) before its write (stmt 1)
        let mut l = LoopIr::new();
        let y = VarId(0);
        l.push(Stmt::assign(vec![], vec![WRef::Scalar(y)]));
        l.push(Stmt::assign(vec![WRef::Scalar(y)], vec![]));
        let p = privatization(&l);
        assert!(!p.scalars.contains(&y));
        assert_eq!(
            p.exposed,
            vec![ExposedRead {
                stmt: 0,
                loc: WRef::Scalar(y)
            }]
        );
    }

    #[test]
    fn update_accumulators_are_never_candidates() {
        let mut l = LoopIr::new();
        l.push(Stmt::update(VarId(0), UpdateOp::AddConst, vec![]));
        let p = privatization(&l);
        assert!(p.scalars.is_empty());
    }

    #[test]
    fn workspace_array_is_privatizable() {
        // T[i] = f(...); use = T[i]  — a per-iteration workspace array
        let t = ArrayId(0);
        let i = Subscript::Affine {
            coeff: 1,
            offset: 0,
        };
        let mut l = LoopIr::new();
        l.push(Stmt::assign(vec![WRef::Element(t, i)], vec![]));
        l.push(Stmt::assign(vec![], vec![WRef::Element(t, i)]));
        let p = privatization(&l);
        assert!(p.arrays.contains(&t), "{p:?}");
    }

    #[test]
    fn unknown_subscripts_taint_the_whole_array() {
        let t = ArrayId(0);
        let mut l = LoopIr::new();
        l.push(Stmt::assign(
            vec![WRef::Element(t, Subscript::Unknown)],
            vec![],
        ));
        l.push(Stmt::assign(
            vec![],
            vec![WRef::Element(t, Subscript::Unknown)],
        ));
        let p = privatization(&l);
        assert!(p.arrays.is_empty());
    }

    #[test]
    fn privatized_body_drops_only_private_refs() {
        let body = examples::figure5b_swap();
        let p = privatization(&body);
        let refined = privatized_body(&body, &p);
        assert_eq!(refined.len(), body.len());
        for s in &refined.stmts {
            assert!(s
                .writes
                .iter()
                .chain(s.reads.iter())
                .all(|r| !matches!(r, WRef::Scalar(_))));
        }
        // the array accesses survive
        assert!(refined
            .stmts
            .iter()
            .any(|s| s.writes.iter().any(|r| matches!(r, WRef::Element(..)))));
    }
}
