//! The corruption matrix: recovery must tolerate ANY byte damage.
//!
//! These tests manufacture journals from the real workload corpus, then
//! damage them systematically — truncation at **every** byte boundary
//! (exhaustive, not sampled) and randomized bit flips — and pin the
//! recovery contract from `wlp_serve::persist`:
//!
//! * the scan never panics, whatever the bytes;
//! * a record whose CRC fails is never loaded (every recovered record is
//!   byte-identical to one that was genuinely written);
//! * every record framed entirely before the damage is preserved.
//!
//! The last line of defense — `CertCache::load_recovered` re-analyzing
//! the source and byte-comparing certificates — is exercised at the end
//! through a full `Service` warm restart over damaged state.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use wlp_serve::persist::{frame_record, read_records, PersistRecord};
use wlp_serve::{persist, ServeConfig, Service};
use wlp_workloads::sources::corpus;

/// A unique scratch dir, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("wlp-corruption-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The corpus as persistence records, plus each frame's byte range in a
/// journal holding all of them in order.
fn corpus_journal() -> (Vec<u8>, Vec<(PersistRecord, std::ops::Range<usize>)>) {
    let mut journal = Vec::new();
    let mut records = Vec::new();
    for (_, src) in corpus() {
        let cert_line = wlp_analyze::certify_compact(src).expect("corpus certifies");
        let frame = frame_record(src, &cert_line);
        let start = journal.len();
        journal.extend_from_slice(&frame);
        records.push((
            PersistRecord {
                source_hash: wlp_serve::fnv1a64(src.as_bytes()),
                source: src.to_string(),
                cert_line,
            },
            start..start + frame.len(),
        ));
    }
    (journal, records)
}

fn scan(dir: &TempDir, bytes: &[u8]) -> (Vec<PersistRecord>, u64) {
    let path = dir.path().join("journal.bin");
    std::fs::write(&path, bytes).expect("write damaged journal");
    read_records(&path).expect("scan is infallible on readable files")
}

#[test]
fn truncation_at_every_byte_boundary_preserves_exactly_the_whole_records() {
    let (journal, records) = corpus_journal();
    let dir = TempDir::new("truncate");
    for cut in 0..=journal.len() {
        let (recovered, skipped) = scan(&dir, &journal[..cut]);
        let expect: Vec<&PersistRecord> = records
            .iter()
            .filter(|(_, range)| range.end <= cut)
            .map(|(rec, _)| rec)
            .collect();
        assert_eq!(
            recovered.len(),
            expect.len(),
            "cut at byte {cut}: wrong record count"
        );
        for (got, want) in recovered.iter().zip(&expect) {
            assert_eq!(&got, want, "cut at byte {cut}: wrong record recovered");
        }
        // a cut inside a frame is exactly one torn-tail skip; a cut on a
        // frame boundary loses nothing
        let on_boundary = cut == 0 || records.iter().any(|(_, r)| r.end == cut);
        assert_eq!(
            skipped,
            u64::from(!on_boundary),
            "cut at byte {cut}: wrong skip count"
        );
    }
}

proptest! {
    /// Property: under any single bit flip, recovery never panics, never
    /// yields a record that was not genuinely written (the CRC gate),
    /// and keeps every record framed entirely before the damaged byte.
    #[test]
    fn bit_flips_never_panic_and_never_forge_records(pos in 0usize..100_000, bit in 0u8..8) {
        let (mut journal, records) = corpus_journal();
        let damaged_byte = pos % journal.len();
        journal[damaged_byte] ^= 1 << bit;
        let dir = TempDir::new("bitflip");
        let (recovered, skipped) = scan(&dir, &journal);

        // CRC gate: everything recovered is one of the originals
        for got in &recovered {
            prop_assert!(
                records.iter().any(|(rec, _)| rec == got),
                "recovered a record that was never written (byte {damaged_byte})"
            );
        }
        // everything before the damage survives, in order
        let intact: Vec<&PersistRecord> = records
            .iter()
            .filter(|(_, range)| range.end <= damaged_byte)
            .map(|(rec, _)| rec)
            .collect();
        prop_assert!(
            recovered.len() >= intact.len(),
            "lost a record framed before the damage (byte {damaged_byte})"
        );
        for (got, want) in recovered.iter().zip(&intact) {
            prop_assert_eq!(&got, want);
        }
        // and the damage was noticed: one record skipped, or more when
        // the flipped length prefix desynced the framing downstream
        prop_assert!(skipped >= 1, "silent corruption (byte {damaged_byte})");
        prop_assert!(recovered.len() + (skipped as usize) <= records.len() + 1);
    }

    /// Property: truncation combined with a bit flip in the surviving
    /// prefix still never panics and never forges a record.
    #[test]
    fn truncation_plus_flip_is_still_tolerated(
        cut in 0usize..100_000,
        pos in 0usize..100_000,
        bit in 0u8..8,
    ) {
        let (full, records) = corpus_journal();
        let cut = cut % (full.len() + 1);
        let mut journal = full[..cut].to_vec();
        if !journal.is_empty() {
            let b = pos % journal.len();
            journal[b] ^= 1 << bit;
        }
        let dir = TempDir::new("trunc-flip");
        let (recovered, _) = scan(&dir, &journal);
        for got in &recovered {
            prop_assert!(
                records.iter().any(|(rec, _)| rec == got),
                "recovered a record that was never written"
            );
        }
    }
}

/// End-to-end: a Service warm-restarting over a damaged state dir never
/// panics, never serves a wrong answer, and accounts every refused
/// record in `skipped_corrupt` — the damage costs cold misses, nothing
/// else.
#[test]
fn service_warm_restart_over_damaged_state_serves_correct_answers() {
    let (journal, _) = corpus_journal();
    let dir = TempDir::new("service");
    // damage the middle record's payload
    let mut bytes = journal.clone();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(dir.path().join(persist::JOURNAL_FILE), &bytes).unwrap();

    let svc = Service::try_new(ServeConfig {
        persist: Some(persist::PersistConfig::at(dir.path())),
        ..ServeConfig::default()
    })
    .expect("damaged journals must not block startup");
    let store = svc.persist_store().expect("persistence is on");
    assert!(store.loaded() >= 3, "undamaged records must recover");
    assert!(store.skipped_corrupt() >= 1, "damage must be counted");
    assert!(
        store.loaded() + store.skipped_corrupt() >= 5,
        "every corpus record is either loaded or accounted corrupt"
    );

    // every corpus program still certifies correctly — recovered entries
    // and re-derived ones are indistinguishable to clients
    for (_, src) in corpus() {
        let line = format!(
            r#"{{"op":"certify","program":{}}}"#,
            serde::json::to_string(src)
        );
        let resp = svc.handle_line(&line);
        assert!(resp.contains("\"ok\":true"), "{resp}");
        let expect = wlp_analyze::certify_compact(src).unwrap();
        assert!(
            resp.contains(&format!(
                "\"cert_line\":{}",
                serde::json::to_string(&expect)
            )),
            "served certificate must equal a fresh derivation: {resp}"
        );
    }
}
