//! End-to-end service tests: multi-tenant concurrent submission against
//! the sequential reference, cache behaviour under a hot working set,
//! deterministic admission rejections, and the hit-path/miss-path
//! certificate identity property.

use proptest::prelude::*;
use serde::{json, Value};
use std::sync::Arc;
use wlp_ir::frontend::parse_program;
use wlp_ir::interp::{run_sequential, Machine};
use wlp_serve::{fnv1a64, register_builtins, ServeConfig, Service};
use wlp_workloads::sources::{corpus, machine_inputs};

/// Builds the request line one tenant submits for one corpus program.
fn run_line(tenant: &str, name: &str, src: &str, n: usize) -> String {
    let (arrays, scalars) = machine_inputs(name, n);
    let arrays_json: Vec<String> = arrays
        .iter()
        .map(|(k, v)| {
            let items: Vec<String> = v.iter().map(i64::to_string).collect();
            format!("{}:[{}]", json::to_string(k), items.join(","))
        })
        .collect();
    let scalars_json: Vec<String> = scalars
        .iter()
        .map(|(k, v)| format!("{}:{v}", json::to_string(k)))
        .collect();
    format!(
        r#"{{"op":"run","tenant":{},"program":{},"arrays":{{{}}},"scalars":{{{}}},"max_iters":{}}}"#,
        json::to_string(tenant),
        json::to_string(src),
        arrays_json.join(","),
        scalars_json.join(","),
        2 * n + 4,
    )
}

/// Sorted `(array digests, scalars)` — the comparable shape of a final
/// machine state.
type StateSummary = (Vec<(String, u64)>, Vec<(String, i64)>);

/// The ground truth for one `(program, n)` pair: digests and scalars
/// after a plain sequential interpretation.
fn sequential_reference(name: &str, src: &str, n: usize) -> StateSummary {
    let program = parse_program(src).expect("corpus parses");
    let (arrays, scalars) = machine_inputs(name, n);
    let mut machine = Machine::default();
    for (k, v) in arrays {
        machine.arrays.insert(k, v);
    }
    for (k, v) in scalars {
        machine.scalars.insert(k, v);
    }
    register_builtins(&mut machine);
    run_sequential(&program, &mut machine, 2 * n + 4).expect("reference runs");
    let mut digests: Vec<(String, u64)> = machine
        .arrays
        .iter()
        .map(|(k, data)| {
            let mut bytes = Vec::with_capacity(data.len() * 8);
            for x in data {
                bytes.extend_from_slice(&x.to_le_bytes());
            }
            (k.clone(), fnv1a64(&bytes))
        })
        .collect();
    digests.sort();
    let mut scalars: Vec<(String, i64)> = machine.scalars.into_iter().collect();
    scalars.sort();
    (digests, scalars)
}

/// Pulls the digests and scalars out of a parsed `run` response.
fn response_state(resp: &str) -> StateSummary {
    let v = json::parse(resp).expect("response parses");
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{resp}");
    let mut digests: Vec<(String, u64)> = v
        .get("digests")
        .and_then(Value::as_object)
        .expect("digests present")
        .iter()
        .map(|(k, d)| (k.clone(), d.as_u64().expect("digest is u64")))
        .collect();
    digests.sort();
    let mut scalars: Vec<(String, i64)> = v
        .get("scalars")
        .and_then(Value::as_object)
        .expect("scalars present")
        .iter()
        .map(|(k, s)| (k.clone(), s.as_i64().expect("scalar is i64")))
        .collect();
    scalars.sort();
    (digests, scalars)
}

/// The tentpole correctness property: N tenants submitting overlapping
/// speculative regions concurrently each observe exactly the results a
/// sequential execution of their own requests would produce.
#[test]
fn concurrent_tenants_match_the_sequential_reference() {
    const TENANTS: usize = 4;
    const ROUNDS: usize = 3;
    let service = Arc::new(Service::new(ServeConfig {
        workers: 4,
        lane_width: 2,
        max_inflight_per_tenant: 4,
        max_queue_depth: 64,
        ..ServeConfig::default()
    }));
    let programs = corpus();
    std::thread::scope(|scope| {
        for t in 0..TENANTS {
            let service = Arc::clone(&service);
            let programs = &programs;
            scope.spawn(move || {
                let tenant = format!("tenant{t}");
                let n = 24 + 8 * t; // distinct problem size per tenant
                for round in 0..ROUNDS {
                    for (name, src) in programs {
                        let resp = service.handle_line(&run_line(&tenant, name, src, n));
                        let got = response_state(&resp);
                        let want = sequential_reference(name, src, n);
                        assert_eq!(
                            got, want,
                            "tenant {tenant} round {round} program {name} diverged: {resp}"
                        );
                    }
                }
            });
        }
    });
    // 4 tenants x 3 rounds x 5 programs = 60 runs over 5 distinct
    // programs. Tenants racing on the same cold program may each record
    // a miss (the analysis runs outside the cache lock), so the miss
    // count is bounded by tenants x programs, not exactly programs.
    let total = (TENANTS * ROUNDS * programs.len()) as u64;
    let misses = service.cache_misses();
    assert!(
        misses >= programs.len() as u64 && misses <= (TENANTS * programs.len()) as u64,
        "implausible miss count {misses}"
    );
    assert_eq!(service.cache_hits() + misses, total);
}

/// The acceptance bar: >= 100 requests over <= 10 distinct programs must
/// land a cache-hit ratio >= 0.8, and the stats op must report it.
#[test]
fn hot_working_set_exceeds_the_hit_ratio_bar() {
    let service = Service::with_defaults();
    let programs = corpus();
    assert!(programs.len() <= 10);
    let mut requests = 0;
    for round in 0..21 {
        for (name, src) in &programs {
            let resp = service.handle_line(&run_line("hot", name, src, 16 + round % 3));
            assert!(resp.contains("\"ok\":true"), "{resp}");
            requests += 1;
        }
    }
    assert!(requests >= 100, "only {requests} requests");
    assert!(
        service.cache_hit_ratio() >= 0.8,
        "hit ratio {} below 0.8",
        service.cache_hit_ratio()
    );
    let stats = json::parse(&service.handle_line(r#"{"op":"stats"}"#)).unwrap();
    let s = stats.get("stats").expect("stats payload");
    assert_eq!(
        s.get("cache_misses").and_then(Value::as_u64),
        Some(programs.len() as u64)
    );
    assert_eq!(
        s.get("cache_hits").and_then(Value::as_u64),
        Some(requests as u64 - programs.len() as u64)
    );
    let report = service.profile();
    assert_eq!(report.cache_hits, requests as u64 - programs.len() as u64);
    assert_eq!(report.cache_misses, programs.len() as u64);
}

/// Admission rejections are deterministic at the configuration edges:
/// a zero in-flight allowance rejects `tenant_busy`, a zero queue depth
/// rejects `overloaded`, and both carry the retry hint.
#[test]
fn admission_rejections_carry_retry_hints() {
    let busy = Service::new(ServeConfig {
        max_inflight_per_tenant: 0,
        ..ServeConfig::default()
    });
    let (name, src) = corpus()[0];
    let resp = busy.handle_line(&run_line("t", name, src, 8));
    assert!(resp.contains("\"code\":\"tenant_busy\""), "{resp}");
    assert!(resp.contains("\"retry_after_ms\":25"), "{resp}");

    let overloaded = Service::new(ServeConfig {
        max_queue_depth: 0,
        ..ServeConfig::default()
    });
    let resp = overloaded.handle_line(&run_line("t", name, src, 8));
    assert!(resp.contains("\"code\":\"overloaded\""), "{resp}");
    assert!(resp.contains("\"retry_after_ms\":25"), "{resp}");

    let stats = json::parse(&overloaded.handle_line(r#"{"op":"stats"}"#)).unwrap();
    let s = stats.get("stats").unwrap();
    assert_eq!(s.get("regions_rejected").and_then(Value::as_u64), Some(1));
    assert_eq!(s.get("regions_admitted").and_then(Value::as_u64), Some(0));
}

/// Strips the only legitimately varying field of a `certify` response.
fn canonical_certify(resp: &str) -> String {
    resp.replace("\"cache\":\"miss\"", "\"cache\":\"hit\"")
}

proptest! {
    /// Property: for every corpus program, the certificate served from
    /// the cache-hit path is byte-identical to the one computed on the
    /// miss path (and both match a cold service's answer).
    #[test]
    fn hit_and_miss_paths_serve_identical_certificates(pick in 0usize..5, n in 4usize..40) {
        let (name, src) = corpus()[pick];
        let line = format!(r#"{{"op":"certify","program":{}}}"#, json::to_string(src));
        let service = Service::with_defaults();
        let miss = service.handle_line(&line);
        let hit = service.handle_line(&line);
        prop_assert!(miss.contains("\"cache\":\"miss\""), "{}", miss);
        prop_assert!(hit.contains("\"cache\":\"hit\""), "{}", hit);
        prop_assert_eq!(canonical_certify(&miss), canonical_certify(&hit));

        // a cold service agrees, so cached certificates never go stale
        let cold = Service::with_defaults().handle_line(&line);
        prop_assert_eq!(canonical_certify(&cold), canonical_certify(&hit));

        // and the run path reports the same verdict either way
        let r1 = service.handle_line(&run_line("p", name, src, n));
        let r2 = service.handle_line(&run_line("p", name, src, n));
        let v1 = json::parse(&r1).unwrap();
        let v2 = json::parse(&r2).unwrap();
        prop_assert_eq!(
            v1.get("verdict").and_then(Value::as_str),
            v2.get("verdict").and_then(Value::as_str)
        );
        prop_assert_eq!(
            v1.get("digests").cloned().map(|d| json::to_string(&d)),
            v2.get("digests").cloned().map(|d| json::to_string(&d))
        );
    }
}
