//! The protocol documentation is executable: every example request line
//! in `docs/examples/smoke_requests.jsonl` must appear verbatim in
//! `docs/PROTOCOL.md`, and every one must succeed against a real
//! [`Service`] — including the cache-hit the examples are arranged to
//! produce and the documented parse-error example.

use serde::{json, Value};
use wlp_serve::Service;

const PROTOCOL_MD: &str = include_str!("../../../docs/PROTOCOL.md");
const SMOKE_REQUESTS: &str = include_str!("../../../docs/examples/smoke_requests.jsonl");

fn example_lines() -> Vec<&'static str> {
    SMOKE_REQUESTS
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect()
}

#[test]
fn every_smoke_request_appears_verbatim_in_protocol_md() {
    let lines = example_lines();
    assert!(lines.len() >= 5, "expected at least 5 example requests");
    for line in lines {
        assert!(
            PROTOCOL_MD.contains(line),
            "smoke request not documented verbatim in PROTOCOL.md:\n{line}"
        );
    }
}

#[test]
fn smoke_requests_succeed_with_a_cache_hit() {
    let service = Service::with_defaults();
    let mut responses = Vec::new();
    for line in example_lines() {
        let resp = service.handle_line(line);
        let v = json::parse(&resp).expect("response is valid JSON");
        assert_eq!(
            v.get("ok").and_then(Value::as_bool),
            Some(true),
            "documented example failed: {line}\n-> {resp}"
        );
        responses.push((line, resp));
    }
    // ids echo in order
    for (i, (_, resp)) in responses.iter().enumerate() {
        assert!(
            resp.contains(&format!("\"id\":\"example-{}\"", i + 1)),
            "{resp}"
        );
    }
    // example-3 runs the program example-2 certified, and example-4 runs
    // it again: both are cache hits, which the final stats line reports
    assert!(
        responses[2].1.contains("\"cache\":\"hit\""),
        "{}",
        responses[2].1
    );
    assert!(
        responses[3].1.contains("\"cache\":\"hit\""),
        "{}",
        responses[3].1
    );
    let stats = json::parse(&responses[4].1).unwrap();
    let hits = stats
        .get("stats")
        .and_then(|s| s.get("cache_hits"))
        .and_then(Value::as_u64)
        .expect("stats.cache_hits");
    assert!(hits >= 2, "expected nonzero cache hits, got {hits}");
    // the run example's documented result is exact
    assert!(
        responses[2].1.contains("\"arrays\":{\"A\":[2,4,6,8]}"),
        "{}",
        responses[2].1
    );
    // example-6's generous deadline is met — it is a normal success, not
    // a timeout — and example-7 leaves the service draining with nothing
    // in flight, exactly as documented
    assert!(
        responses[5].1.contains("\"iterations\":2"),
        "{}",
        responses[5].1
    );
    assert!(
        responses[6].1.contains("\"draining\":true") && responses[6].1.contains("\"in_flight\":0"),
        "{}",
        responses[6].1
    );
    assert!(service.is_draining(), "shutdown example must start a drain");
    let late = service.handle_line(example_lines()[2]);
    assert!(
        late.contains("\"code\":\"draining\""),
        "a run after the documented shutdown must be rejected retriable: {late}"
    );
}

#[test]
fn the_documented_error_example_is_accurate() {
    let request = r#"{"op":"run","id":"bad-1","program":"while ("}"#;
    assert!(
        PROTOCOL_MD.contains(request),
        "PROTOCOL.md no longer documents the parse-error example request"
    );
    let service = Service::with_defaults();
    let resp = service.handle_line(request);
    assert!(resp.contains("\"ok\":false") && resp.contains("\"code\":\"parse_error\""));
    // the exact response line is quoted in the doc
    assert!(
        PROTOCOL_MD.contains(&resp),
        "PROTOCOL.md's error example drifted from the implementation.\nactual: {resp}"
    );
}
