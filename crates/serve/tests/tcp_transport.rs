//! TCP-transport behaviours only a real socket exercises: the 1 MiB
//! oversized-line drain (previously covered on stdin only) and graceful
//! shutdown over the wire.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Kills the server on drop so a failing assertion never leaks a
/// listening process into the test harness.
struct Server {
    child: Child,
    addr: String,
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_server(extra: &[&str]) -> Server {
    let mut child = Command::new(env!("CARGO_BIN_EXE_wlp-serve"))
        .args(["--listen", "127.0.0.1:0"])
        .args(extra)
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn wlp-serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut reader = BufReader::new(stderr);
    let mut addr = None;
    let mut line = String::new();
    for _ in 0..4 {
        line.clear();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        if let Some(a) = line.trim().strip_prefix("wlp-serve: listening on ") {
            addr = Some(a.to_string());
            break;
        }
    }
    // keep draining stderr so the child never blocks on a full pipe
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });
    Server {
        child,
        addr: addr.expect("server reported its address"),
    }
}

fn connect(server: &Server) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(&server.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let write_half = stream.try_clone().expect("clone");
    (BufReader::new(stream), write_half)
}

fn round_trip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, line: &str) -> String {
    writeln!(writer, "{line}").expect("write request");
    writer.flush().expect("flush");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read response");
    resp
}

#[test]
fn oversized_line_is_drained_and_the_connection_keeps_serving() {
    let server = spawn_server(&[]);
    let (mut reader, mut writer) = connect(&server);

    let pong = round_trip(&mut reader, &mut writer, r#"{"op":"ping","id":"warm"}"#);
    assert!(pong.contains("\"pong\":true"), "{pong}");

    // a line well past the 1 MiB cap, in chunks so no single write has
    // to fit a socket buffer
    let chunk = vec![b'x'; 64 * 1024];
    for _ in 0..20 {
        writer.write_all(&chunk).expect("write oversized chunk");
    }
    writer.write_all(b"\n").expect("terminate oversized line");
    writer.flush().expect("flush");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read rejection");
    assert!(resp.contains("\"code\":\"bad_request\""), "{resp}");
    assert!(resp.contains("exceeds"), "{resp}");

    // the stream resumed at the next newline: a real request right
    // after the drained line is served normally
    let src = "integer i = 0\nwhile (i < n) {\n    A[i] = 2 * A[i]\n    i = i + 1\n}";
    let run = format!(
        r#"{{"op":"run","tenant":"after","program":{},"arrays":{{"A":[1,2]}},"scalars":{{"n":2}},"id":"after"}}"#,
        serde::json::to_string(src)
    );
    let resp = round_trip(&mut reader, &mut writer, &run);
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"id\":\"after\""), "{resp}");

    // a second oversized line without trailing newline until much later
    // also drains (multiple refill reads through the take adapter)
    for _ in 0..20 {
        writer.write_all(&chunk).expect("write oversized chunk");
    }
    writer.write_all(b"\n").expect("newline");
    writeln!(writer, r#"{{"op":"ping","id":"again"}}"#).expect("follow-up");
    writer.flush().expect("flush");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read rejection");
    assert!(resp.contains("\"code\":\"bad_request\""), "{resp}");
    resp.clear();
    reader.read_line(&mut resp).expect("read pong");
    assert!(resp.contains("\"id\":\"again\""), "{resp}");
}

#[test]
fn shutdown_over_tcp_drains_and_exits_clean() {
    let mut server = spawn_server(&["--drain-ms", "2000"]);
    let (mut reader, mut writer) = connect(&server);

    let resp = round_trip(&mut reader, &mut writer, r#"{"op":"shutdown","id":"bye"}"#);
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"draining\":true"), "{resp}");

    // new runs on the still-open connection are rejected retriable
    // while the drain runs (until the process exits under us)
    let src = "integer i = 0\nwhile (i < n) {\n    A[i] = 2 * A[i]\n    i = i + 1\n}";
    let run = format!(
        r#"{{"op":"run","tenant":"late","program":{},"arrays":{{"A":[1]}},"scalars":{{"n":1}}}}"#,
        serde::json::to_string(src)
    );
    writeln!(writer, "{run}").expect("write late run");
    writer.flush().expect("flush");
    let mut resp = String::new();
    if reader.read_line(&mut resp).map(|n| n > 0).unwrap_or(false) {
        assert!(resp.contains("\"code\":\"draining\""), "{resp}");
    }

    // the process exits 0 inside its drain budget
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        if let Some(status) = server.child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            Instant::now() < deadline,
            "server never exited after shutdown"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(status.success(), "drain must exit clean: {status:?}");
}
