//! The `wlp-serve` daemon binary.
//!
//! Two transports over the same [`wlp_serve::Service`]:
//!
//! * `wlp-serve --stdin` — read NDJSON requests from standard input,
//!   write one response line per request to standard output, exit 0 at
//!   EOF. The mode scripts and the CI smoke job use.
//! * `wlp-serve --listen ADDR` — accept TCP connections on `ADDR`
//!   (e.g. `127.0.0.1:7070`), one thread per connection, same NDJSON
//!   framing per connection. Runs until killed.
//!
//! Tunables (see `docs/OPERATIONS.md` for sizing guidance):
//! `--workers N`, `--lane-width N`, `--cache N`, `--max-inflight N`,
//! `--max-queue N`, `--max-iters N`, `--credits N`, `--quiet`.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use wlp_serve::proto::{self, codes, ProtoError};
use wlp_serve::{ServeConfig, Service};

/// Longest request line either transport accepts (docs/PROTOCOL.md).
/// `BufRead::lines` would buffer an arbitrarily long line whole, letting
/// one client exhaust the daemon's memory; past this bound the line is
/// drained, answered with a `bad_request` error, and the stream resumes
/// at the next newline.
const MAX_LINE_BYTES: usize = 1 << 20;

/// One bounded read: `Line` up to the cap, `TooLong` past it (already
/// drained to the next newline), `Eof` at end of stream.
enum BoundedLine {
    Line(String),
    TooLong,
    Eof,
}

fn read_bounded_line<R: BufRead>(reader: &mut R) -> std::io::Result<BoundedLine> {
    let mut buf = Vec::new();
    let n =
        std::io::Read::take(&mut *reader, MAX_LINE_BYTES as u64 + 1).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(BoundedLine::Eof);
    }
    if buf.last() != Some(&b'\n') && n > MAX_LINE_BYTES {
        // skip the remainder of the oversized line so the connection
        // can keep serving subsequent requests
        loop {
            buf.clear();
            let m = std::io::Read::take(&mut *reader, MAX_LINE_BYTES as u64)
                .read_until(b'\n', &mut buf)?;
            if m == 0 || buf.last() == Some(&b'\n') {
                return Ok(BoundedLine::TooLong);
            }
        }
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
    }
    Ok(BoundedLine::Line(
        String::from_utf8_lossy(&buf).into_owned(),
    ))
}

fn line_too_long_response() -> String {
    proto::error_line(
        &ProtoError {
            code: codes::BAD_REQUEST,
            detail: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            id: None,
        },
        None,
    )
}

struct Args {
    listen: Option<String>,
    cfg: ServeConfig,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: wlp-serve [--stdin | --listen ADDR] [--workers N] [--lane-width N]\n\
         \x20                [--cache N] [--max-inflight N] [--max-queue N]\n\
         \x20                [--max-iters N] [--credits N] [--quiet]\n\
         \n\
         Serves the wlp NDJSON protocol (docs/PROTOCOL.md): one JSON request\n\
         per line, one response line per request. Default mode is --stdin."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: None,
        cfg: ServeConfig::default(),
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut num = |name: &str| -> usize {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("wlp-serve: {name} needs a positive integer");
                usage()
            })
        };
        match arg.as_str() {
            "--stdin" => args.listen = None,
            "--listen" => match it.next() {
                Some(addr) => args.listen = Some(addr),
                None => usage(),
            },
            "--workers" => args.cfg.workers = num("--workers").max(1),
            "--lane-width" => args.cfg.lane_width = num("--lane-width").max(1),
            "--cache" => args.cfg.cache_capacity = num("--cache").max(1),
            "--max-inflight" => args.cfg.max_inflight_per_tenant = num("--max-inflight").max(1),
            // clamped: 0 would make admit() reject every run outright
            "--max-queue" => args.cfg.max_queue_depth = num("--max-queue").max(1),
            "--max-iters" => args.cfg.default_max_iters = num("--max-iters"),
            "--credits" => args.cfg.tenant_spec_credits = num("--credits") as u64,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("wlp-serve: unknown flag `{other}`");
                usage()
            }
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let service = Arc::new(Service::new(args.cfg.clone()));
    if !args.quiet {
        eprintln!(
            "wlp-serve: {} workers in {}-wide lanes, cache capacity {}, protocol v{}",
            args.cfg.workers,
            args.cfg.lane_width,
            args.cfg.cache_capacity,
            wlp_serve::PROTOCOL_VERSION,
        );
    }
    match args.listen {
        None => serve_stdin(&service),
        Some(addr) => serve_tcp(&service, &addr, args.quiet),
    }
}

fn serve_stdin(service: &Service) -> ExitCode {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut reader = stdin.lock();
    let mut out = BufWriter::new(stdout.lock());
    loop {
        let resp = match read_bounded_line(&mut reader) {
            Ok(BoundedLine::Eof) => return ExitCode::SUCCESS,
            Ok(BoundedLine::TooLong) => line_too_long_response(),
            Ok(BoundedLine::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                service.handle_line(&line)
            }
            Err(e) => {
                eprintln!("wlp-serve: stdin read failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if writeln!(out, "{resp}").and_then(|()| out.flush()).is_err() {
            // downstream closed the pipe: nothing left to serve
            return ExitCode::SUCCESS;
        }
    }
}

fn serve_tcp(service: &Arc<Service>, addr: &str, quiet: bool) -> ExitCode {
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("wlp-serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !quiet {
        eprintln!("wlp-serve: listening on {addr}");
    }
    for conn in listener.incoming() {
        match conn {
            Ok(stream) => {
                let svc = Arc::clone(service);
                std::thread::spawn(move || serve_conn(&svc, stream));
            }
            Err(e) => eprintln!("wlp-serve: accept failed: {e}"),
        }
    }
    ExitCode::SUCCESS
}

fn serve_conn(service: &Service, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut out = BufWriter::new(write_half);
    loop {
        let resp = match read_bounded_line(&mut reader) {
            Ok(BoundedLine::Eof) | Err(_) => return,
            Ok(BoundedLine::TooLong) => line_too_long_response(),
            Ok(BoundedLine::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                service.handle_line(&line)
            }
        };
        if writeln!(out, "{resp}").and_then(|()| out.flush()).is_err() {
            return;
        }
    }
}
