//! The `wlp-serve` daemon binary.
//!
//! Two transports over the same [`wlp_serve::Service`]:
//!
//! * `wlp-serve --stdin` — read NDJSON requests from standard input,
//!   write one response line per request to standard output, exit 0 at
//!   EOF (or after a `shutdown` request drains). The mode scripts and
//!   the CI smoke job use.
//! * `wlp-serve --listen ADDR` — accept TCP connections on `ADDR`
//!   (e.g. `127.0.0.1:7070`), one thread per connection, same NDJSON
//!   framing per connection. Runs until a `shutdown` request or
//!   SIGTERM/SIGINT begins a graceful drain: the listener closes,
//!   in-flight requests finish under `--drain-ms`, final stats go to
//!   stderr, and the exit code says whether the drain completed clean.
//!
//! Each TCP connection gets a cancellation flag. A dedicated reader
//! thread notices connection resets while a request is still executing
//! and raises the flag, which aborts the request's region and returns
//! its lane and credits — a client that disconnects stops costing the
//! other tenants capacity.
//!
//! Tunables (see `docs/OPERATIONS.md` for sizing guidance):
//! `--workers N`, `--lane-width N`, `--cache N`, `--max-inflight N`,
//! `--max-queue N`, `--max-iters N`, `--credits N`, `--max-deadline MS`,
//! `--drain-ms MS`, `--circuit-trip N`, `--circuit-open-ms MS`,
//! `--chaos`, `--quiet`.
//!
//! Durable state (`docs/OPERATIONS.md` § Durable state): `--state-dir
//! DIR` gives the certificate cache a crash-safe snapshot + journal and
//! a warm restart; `--journal-fsync N` sets the fsync batch (default 1 =
//! every append; 0 = OS-paced); `--compact-bytes N` sets the journal
//! size that triggers compaction. An unusable state dir (missing parent,
//! not writable, locked by a live daemon) is a one-line error at
//! startup, exit 1 — never a mid-request surprise.

use serde::json;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;
use wlp_serve::proto::{self, codes, ProtoError};
use wlp_serve::{CancelFlag, ServeConfig, Service};

/// Longest request line either transport accepts (docs/PROTOCOL.md).
/// `BufRead::lines` would buffer an arbitrarily long line whole, letting
/// one client exhaust the daemon's memory; past this bound the line is
/// drained, answered with a `bad_request` error, and the stream resumes
/// at the next newline.
const MAX_LINE_BYTES: usize = 1 << 20;

/// One bounded read: `Line` up to the cap, `TooLong` past it (already
/// drained to the next newline), `Eof` at end of stream.
enum BoundedLine {
    Line(String),
    TooLong,
    Eof,
}

fn read_bounded_line<R: BufRead>(reader: &mut R) -> std::io::Result<BoundedLine> {
    let mut buf = Vec::new();
    let n =
        std::io::Read::take(&mut *reader, MAX_LINE_BYTES as u64 + 1).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(BoundedLine::Eof);
    }
    if buf.last() != Some(&b'\n') && n > MAX_LINE_BYTES {
        // skip the remainder of the oversized line so the connection
        // can keep serving subsequent requests
        loop {
            buf.clear();
            let m = std::io::Read::take(&mut *reader, MAX_LINE_BYTES as u64)
                .read_until(b'\n', &mut buf)?;
            if m == 0 || buf.last() == Some(&b'\n') {
                return Ok(BoundedLine::TooLong);
            }
        }
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
    }
    Ok(BoundedLine::Line(
        String::from_utf8_lossy(&buf).into_owned(),
    ))
}

fn line_too_long_response() -> String {
    proto::error_line(
        &ProtoError {
            code: codes::BAD_REQUEST,
            detail: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            id: None,
        },
        None,
    )
}

/// SIGTERM/SIGINT → a flag the accept loop polls. The handler only
/// stores to an atomic, which is async-signal-safe; everything else
/// (drain, stats flush) happens on the main thread.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
            signal(SIGINT, on_term as extern "C" fn(i32) as usize);
        }
    }

    pub fn termed() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn termed() -> bool {
        false
    }
}

struct Args {
    listen: Option<String>,
    cfg: ServeConfig,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: wlp-serve [--stdin | --listen ADDR] [--workers N] [--lane-width N]\n\
         \x20                [--cache N] [--max-inflight N] [--max-queue N]\n\
         \x20                [--max-iters N] [--credits N] [--max-deadline MS]\n\
         \x20                [--drain-ms MS] [--circuit-trip N] [--circuit-open-ms MS]\n\
         \x20                [--state-dir DIR] [--journal-fsync N] [--compact-bytes N]\n\
         \x20                [--chaos] [--quiet]\n\
         \n\
         Serves the wlp NDJSON protocol (docs/PROTOCOL.md): one JSON request\n\
         per line, one response line per request. Default mode is --stdin.\n\
         SIGTERM (or a `shutdown` request) begins a graceful drain."
    );
    std::process::exit(2);
}

/// The persist config under construction. `--journal-fsync` and
/// `--compact-bytes` may precede `--state-dir` on the command line; a
/// missing `--state-dir` is caught after parsing.
fn persist_cfg(cfg: &mut ServeConfig) -> &mut wlp_serve::persist::PersistConfig {
    cfg.persist
        .get_or_insert_with(|| wlp_serve::persist::PersistConfig::at(""))
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: None,
        cfg: ServeConfig::default(),
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut num = |name: &str| -> usize {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("wlp-serve: {name} needs a non-negative integer");
                usage()
            })
        };
        match arg.as_str() {
            "--stdin" => args.listen = None,
            "--listen" => match it.next() {
                Some(addr) => args.listen = Some(addr),
                None => usage(),
            },
            "--workers" => args.cfg.workers = num("--workers").max(1),
            "--lane-width" => args.cfg.lane_width = num("--lane-width").max(1),
            "--cache" => args.cfg.cache_capacity = num("--cache").max(1),
            "--max-inflight" => args.cfg.max_inflight_per_tenant = num("--max-inflight").max(1),
            // clamped: 0 would make admit() reject every run outright
            "--max-queue" => args.cfg.max_queue_depth = num("--max-queue").max(1),
            "--max-iters" => args.cfg.default_max_iters = num("--max-iters"),
            "--credits" => args.cfg.tenant_spec_credits = num("--credits") as u64,
            "--max-deadline" => args.cfg.max_deadline_ms = num("--max-deadline").max(1) as u64,
            "--drain-ms" => args.cfg.drain_deadline_ms = num("--drain-ms") as u64,
            // 0 disables the breaker
            "--circuit-trip" => args.cfg.circuit.trip_threshold = num("--circuit-trip") as u32,
            "--circuit-open-ms" => {
                args.cfg.circuit.open_ms = num("--circuit-open-ms").max(1) as u64
            }
            "--state-dir" => match it.next() {
                Some(dir) => {
                    let mut pcfg = args
                        .cfg
                        .persist
                        .take()
                        .unwrap_or_else(|| wlp_serve::persist::PersistConfig::at(&dir));
                    pcfg.state_dir = dir.into();
                    args.cfg.persist = Some(pcfg);
                }
                None => usage(),
            },
            "--journal-fsync" => {
                let n = num("--journal-fsync") as u64;
                persist_cfg(&mut args.cfg).journal_fsync_every = n;
            }
            "--compact-bytes" => {
                let n = num("--compact-bytes").max(1) as u64;
                persist_cfg(&mut args.cfg).compact_bytes = n;
            }
            "--chaos" => args.cfg.chaos_builtins = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("wlp-serve: unknown flag `{other}`");
                usage()
            }
        }
    }
    if let Some(pcfg) = &args.cfg.persist {
        if pcfg.state_dir.as_os_str().is_empty() {
            eprintln!("wlp-serve: --journal-fsync/--compact-bytes need --state-dir DIR");
            usage()
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    sig::install();
    // Fail fast: an unusable --state-dir is a startup error the operator
    // sees once, not a per-request surprise later.
    let service = match Service::try_new(args.cfg.clone()) {
        Ok(svc) => Arc::new(svc),
        Err(e) => {
            eprintln!("wlp-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !args.quiet {
        eprintln!(
            "wlp-serve: {} workers in {}-wide lanes, cache capacity {}, protocol v{}",
            args.cfg.workers,
            args.cfg.lane_width,
            args.cfg.cache_capacity,
            wlp_serve::PROTOCOL_VERSION,
        );
        if let Some(store) = service.persist_store() {
            eprintln!(
                "wlp-serve: state dir {} ({} certificate(s) recovered, {} skipped)",
                store.state_dir().display(),
                store.loaded(),
                store.skipped_corrupt(),
            );
        }
    }
    match args.listen {
        None => serve_stdin(&service, args.quiet),
        Some(addr) => serve_tcp(&service, &addr, args.quiet),
    }
}

/// Waits out in-flight requests, flushes final stats, and reports
/// whether the drain beat `drain_deadline_ms`. The short settle sleep
/// lets connection threads write responses whose `run` just finished —
/// the active counter drops when the response string is assembled,
/// a moment before it reaches the socket.
fn finish_drain(service: &Service, quiet: bool) -> ExitCode {
    let clean = service.await_drain(Duration::from_millis(service.config().drain_deadline_ms));
    // The drain is the last chance to fsync a batched journal tail.
    service.flush_persist();
    std::thread::sleep(Duration::from_millis(50));
    if !quiet {
        eprintln!(
            "wlp-serve: drain {} ({} run(s) in flight), final stats: {}",
            if clean { "complete" } else { "timed out" },
            service.active_runs(),
            json::to_string(&service.stats_value()),
        );
    }
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn serve_stdin(service: &Service, quiet: bool) -> ExitCode {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut reader = stdin.lock();
    let mut out = BufWriter::new(stdout.lock());
    loop {
        let resp = match read_bounded_line(&mut reader) {
            Ok(BoundedLine::Eof) => return ExitCode::SUCCESS,
            Ok(BoundedLine::TooLong) => line_too_long_response(),
            Ok(BoundedLine::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                service.handle_line(&line)
            }
            Err(e) => {
                eprintln!("wlp-serve: stdin read failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if writeln!(out, "{resp}").and_then(|()| out.flush()).is_err() {
            // downstream closed the pipe: nothing left to serve
            return ExitCode::SUCCESS;
        }
        if service.is_draining() {
            // a `shutdown` request: requests are serial here, so the
            // response above was the drain's last word
            return finish_drain(service, quiet);
        }
    }
}

fn serve_tcp(service: &Arc<Service>, addr: &str, quiet: bool) -> ExitCode {
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("wlp-serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if listener.set_nonblocking(true).is_err() {
        eprintln!("wlp-serve: cannot poll the listener");
        return ExitCode::FAILURE;
    }
    if !quiet {
        // the resolved address, so `--listen 127.0.0.1:0` callers (the
        // chaos harness) can learn the kernel-assigned port
        let local = listener
            .local_addr()
            .map_or_else(|_| addr.to_string(), |a| a.to_string());
        eprintln!("wlp-serve: listening on {local}");
    }
    loop {
        if sig::termed() {
            service.begin_drain();
        }
        if service.is_draining() {
            // stop accepting; connections already established keep
            // answering (new runs retriable `draining`) until exit
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // some platforms hand the listener's nonblocking mode
                // down to accepted sockets; connection I/O must block
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let svc = Arc::clone(service);
                std::thread::spawn(move || serve_conn(&svc, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => eprintln!("wlp-serve: accept failed: {e}"),
        }
    }
    drop(listener);
    if !quiet {
        eprintln!(
            "wlp-serve: draining, {} run(s) in flight",
            service.active_runs()
        );
    }
    finish_drain(service, quiet)
}

/// One TCP connection. The reader runs on its own thread so a
/// connection reset is noticed *while* a request executes: the reset
/// raises `cancel`, the service aborts the region, and the lane goes
/// back to the pool. A clean half-close (EOF) does **not** cancel —
/// clients may legitimately shut down their write half and wait for the
/// final response.
fn serve_conn(service: &Service, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let cancel = Arc::new(CancelFlag::new());
    let (tx, rx) = mpsc::channel();
    let reader_cancel = Arc::clone(&cancel);
    let reader = std::thread::spawn(move || {
        let mut reader = BufReader::new(stream);
        loop {
            match read_bounded_line(&mut reader) {
                Ok(BoundedLine::Eof) => return,
                Err(_) => {
                    // reset mid-stream: the client is gone for real
                    reader_cancel.cancel();
                    return;
                }
                Ok(item) => {
                    if tx.send(item).is_err() {
                        return;
                    }
                }
            }
        }
    });
    let mut out = BufWriter::new(write_half);
    while let Ok(item) = rx.recv() {
        let resp = match item {
            BoundedLine::Eof => break,
            BoundedLine::TooLong => line_too_long_response(),
            BoundedLine::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                service.handle_line_with(&line, Some(&cancel))
            }
        };
        if writeln!(out, "{resp}").and_then(|()| out.flush()).is_err() {
            // the client stopped reading; abort its remaining work
            cancel.cancel();
            break;
        }
    }
    drop(rx);
    let _ = reader.join();
}
