//! The `wlp-serve` wire protocol: newline-delimited JSON requests and
//! responses.
//!
//! One request per line, one response line per request, in order. The
//! schema is documented (with the exact examples the CI smoke job
//! replays) in `docs/PROTOCOL.md`; this module is the executable side of
//! that contract: [`parse_request`] validates an incoming line into a
//! typed [`Request`], and the error vocabulary ([`codes`]) is the single
//! source of truth for the `error.code` field.

use serde::{json, Value};

/// The protocol version this build speaks. Requests may carry a `"v"`
/// field; omitted means current, anything else is rejected with
/// [`codes::UNSUPPORTED_VERSION`].
pub const PROTOCOL_VERSION: u64 = 1;

/// Error codes a response's `error.code` field can carry.
///
/// Codes marked *retriable* come with a `retry_after_ms` hint: the
/// request was well-formed but the service is momentarily unwilling;
/// resubmitting after the hint is the expected client behavior.
pub mod codes {
    /// Malformed JSON, missing/mistyped fields, unknown `op`.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The request's `"v"` is not a version this build speaks.
    pub const UNSUPPORTED_VERSION: &str = "unsupported_version";
    /// The WHILE program failed to parse or lower; `error.detail`
    /// carries the rendered span.
    pub const PARSE_ERROR: &str = "parse_error";
    /// The program parsed but execution failed (out-of-bounds access,
    /// unbound name, division by zero).
    pub const EXEC_ERROR: &str = "exec_error";
    /// Retriable: the tenant already has its maximum admitted regions
    /// in flight.
    pub const TENANT_BUSY: &str = "tenant_busy";
    /// Retriable: the shared region queue is too deep to admit more
    /// work from anyone.
    pub const OVERLOADED: &str = "overloaded";
    /// Retriable: the tenant's speculation write-budget credits are
    /// exhausted — its speculative regions are running hot.
    pub const BUDGET_EXHAUSTED: &str = "budget_exhausted";
    /// Retriable: the request missed its end-to-end deadline
    /// (`deadline_ms`) — while queued for a lane, during execution, or
    /// because its client vanished — and its region was aborted.
    pub const TIMEOUT: &str = "timeout";
    /// Retriable: the tenant's circuit breaker is open after a run of
    /// consecutive timeouts/aborts; `retry_after_ms` is the remaining
    /// open interval.
    pub const TENANT_CIRCUIT_OPEN: &str = "tenant_circuit_open";
    /// Retriable (against a peer, not this process): the service is
    /// draining for shutdown and admits no new work.
    pub const DRAINING: &str = "draining";
}

/// How much state a `run` response carries back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplyMode {
    /// Array digests only (cheapest; for replay gating).
    Digest,
    /// Final scalars plus array digests (the default).
    #[default]
    Scalars,
    /// Scalars, digests, and full array contents.
    Full,
}

impl ReplyMode {
    fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "digest" => ReplyMode::Digest,
            "scalars" => ReplyMode::Scalars,
            "full" => ReplyMode::Full,
            _ => return None,
        })
    }
}

/// A `run` request: execute a WHILE program against supplied state.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Client-chosen correlation id, echoed verbatim.
    pub id: Option<String>,
    /// Tenant the request is accounted to.
    pub tenant: String,
    /// WHILE source text.
    pub source: String,
    /// Initial arrays, name → contents.
    pub arrays: Vec<(String, Vec<i64>)>,
    /// Initial scalars, name → value.
    pub scalars: Vec<(String, i64)>,
    /// Iteration bound override (service default when absent).
    pub max_iters: Option<usize>,
    /// End-to-end deadline in milliseconds, measured from parse: the
    /// request must be granted a lane *and* finish executing before it
    /// expires, or it is aborted with a retriable [`codes::TIMEOUT`].
    /// Clamped by the service's configured maximum.
    pub deadline_ms: Option<u64>,
    /// Response verbosity.
    pub reply: ReplyMode,
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Execute a program.
    Run(RunRequest),
    /// Analyze only: return the certificate without executing.
    Certify {
        /// Correlation id.
        id: Option<String>,
        /// Tenant (accounting only; certify is not admission-controlled).
        tenant: String,
        /// WHILE source text.
        source: String,
    },
    /// Service counters snapshot.
    Stats {
        /// Correlation id.
        id: Option<String>,
    },
    /// Liveness probe.
    Ping {
        /// Correlation id.
        id: Option<String>,
    },
    /// Graceful drain: stop admitting new work, finish what is in
    /// flight, then exit (the SIGTERM handler issues the same
    /// transition).
    Shutdown {
        /// Correlation id.
        id: Option<String>,
    },
}

/// A request rejection: the error code plus a human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// One of the [`codes`] constants.
    pub code: &'static str,
    /// What went wrong, for humans.
    pub detail: String,
    /// Correlation id if one was recovered before the failure.
    pub id: Option<String>,
}

fn bad<T>(id: Option<String>, detail: impl Into<String>) -> Result<T, ProtoError> {
    Err(ProtoError {
        code: codes::BAD_REQUEST,
        detail: detail.into(),
        id,
    })
}

/// The tenant name used when a request does not name one.
pub const DEFAULT_TENANT: &str = "anon";

/// Parses one NDJSON request line into a typed [`Request`].
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let v = json::parse(line).map_err(|e| ProtoError {
        code: codes::BAD_REQUEST,
        detail: format!("invalid JSON at byte {}: {}", e.at, e.msg),
        id: None,
    })?;
    if v.as_object().is_none() {
        return bad(None, "request must be a JSON object");
    }
    let id = v.get("id").and_then(Value::as_str).map(str::to_string);
    if let Some(ver) = v.get("v") {
        match ver.as_u64() {
            Some(PROTOCOL_VERSION) => {}
            _ => {
                return Err(ProtoError {
                    code: codes::UNSUPPORTED_VERSION,
                    detail: format!(
                        "this build speaks protocol v{PROTOCOL_VERSION}; got {}",
                        json::to_string(ver)
                    ),
                    id,
                })
            }
        }
    }
    let Some(op) = v.get("op").and_then(Value::as_str) else {
        return bad(id, "missing string field `op`");
    };
    let tenant = v
        .get("tenant")
        .and_then(Value::as_str)
        .unwrap_or(DEFAULT_TENANT)
        .to_string();
    match op {
        "ping" => Ok(Request::Ping { id }),
        "stats" => Ok(Request::Stats { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "certify" => {
            let Some(source) = v.get("program").and_then(Value::as_str) else {
                return bad(id, "`certify` needs a string field `program`");
            };
            Ok(Request::Certify {
                id,
                tenant,
                source: source.to_string(),
            })
        }
        "run" => {
            let Some(source) = v.get("program").and_then(Value::as_str) else {
                return bad(id, "`run` needs a string field `program`");
            };
            let arrays = match v.get("arrays") {
                None => Vec::new(),
                Some(a) => parse_arrays(a).map_err(|detail| ProtoError {
                    code: codes::BAD_REQUEST,
                    detail,
                    id: id.clone(),
                })?,
            };
            let scalars = match v.get("scalars") {
                None => Vec::new(),
                Some(s) => parse_scalars(s).map_err(|detail| ProtoError {
                    code: codes::BAD_REQUEST,
                    detail,
                    id: id.clone(),
                })?,
            };
            let max_iters = match v.get("max_iters") {
                None => None,
                Some(m) => match m.as_u64() {
                    Some(n) => Some(n as usize),
                    None => return bad(id, "`max_iters` must be a non-negative integer"),
                },
            };
            let deadline_ms = match v.get("deadline_ms") {
                None => None,
                Some(d) => match d.as_u64() {
                    Some(ms) if ms > 0 => Some(ms),
                    _ => return bad(id, "`deadline_ms` must be a positive integer"),
                },
            };
            let reply = match v.get("reply") {
                None => ReplyMode::default(),
                Some(r) => match r.as_str().and_then(ReplyMode::from_name) {
                    Some(m) => m,
                    None => {
                        return bad(
                            id,
                            "`reply` must be one of \"digest\", \"scalars\", \"full\"",
                        )
                    }
                },
            };
            Ok(Request::Run(RunRequest {
                id,
                tenant,
                source: source.to_string(),
                arrays,
                scalars,
                max_iters,
                deadline_ms,
                reply,
            }))
        }
        other => bad(
            id,
            format!("unknown op `{other}` (expected run, certify, stats, ping, or shutdown)"),
        ),
    }
}

fn parse_arrays(v: &Value) -> Result<Vec<(String, Vec<i64>)>, String> {
    let Some(obj) = v.as_object() else {
        return Err("`arrays` must be an object of name → [integers]".into());
    };
    let mut out = Vec::with_capacity(obj.len());
    for (name, val) in obj {
        let Some(items) = val.as_array() else {
            return Err(format!("array `{name}` must be a JSON array"));
        };
        let mut data = Vec::with_capacity(items.len());
        for item in items {
            match item.as_i64() {
                Some(x) => data.push(x),
                None => return Err(format!("array `{name}` holds a non-integer element")),
            }
        }
        out.push((name.clone(), data));
    }
    Ok(out)
}

fn parse_scalars(v: &Value) -> Result<Vec<(String, i64)>, String> {
    let Some(obj) = v.as_object() else {
        return Err("`scalars` must be an object of name → integer".into());
    };
    let mut out = Vec::with_capacity(obj.len());
    for (name, val) in obj {
        match val.as_i64() {
            Some(x) => out.push((name.clone(), x)),
            None => return Err(format!("scalar `{name}` must be an integer")),
        }
    }
    Ok(out)
}

/// Builds the error-response line for a rejection (shared by the service
/// and the binary so every error has the same shape).
pub fn error_line(err: &ProtoError, retry_after_ms: Option<u64>) -> String {
    let mut error = vec![
        ("code".to_string(), Value::Str(err.code.to_string())),
        ("detail".to_string(), Value::Str(err.detail.clone())),
    ];
    if let Some(ms) = retry_after_ms {
        error.push(("retry_after_ms".to_string(), Value::UInt(ms)));
    }
    let mut fields = vec![
        ("v".to_string(), Value::UInt(PROTOCOL_VERSION)),
        ("ok".to_string(), Value::Bool(false)),
    ];
    if let Some(id) = &err.id {
        fields.push(("id".to_string(), Value::Str(id.clone())));
    }
    fields.push(("error".to_string(), Value::Object(error)));
    json::to_string(&Value::Object(fields))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_run_request() {
        let line = r#"{"v":1,"op":"run","id":"r-1","tenant":"acme","program":"integer i = 0\nwhile (i < n) { A[i] = 2 * A[i]\n i = i + 1 }","arrays":{"A":[1,2,3]},"scalars":{"n":3},"max_iters":100,"reply":"full"}"#;
        let Request::Run(r) = parse_request(line).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(r.id.as_deref(), Some("r-1"));
        assert_eq!(r.tenant, "acme");
        assert_eq!(r.arrays, vec![("A".to_string(), vec![1, 2, 3])]);
        assert_eq!(r.scalars, vec![("n".to_string(), 3)]);
        assert_eq!(r.max_iters, Some(100));
        assert_eq!(r.reply, ReplyMode::Full);
    }

    #[test]
    fn defaults_are_applied() {
        let Request::Run(r) =
            parse_request(r#"{"op":"run","program":"integer i = 0\nwhile (i < n) { i = i + 1 }"}"#)
                .unwrap()
        else {
            panic!("expected run");
        };
        assert_eq!(r.tenant, DEFAULT_TENANT);
        assert!(r.arrays.is_empty() && r.scalars.is_empty());
        assert_eq!(r.max_iters, None);
        assert_eq!(r.reply, ReplyMode::Scalars);
    }

    #[test]
    fn rejects_garbage_and_unknown_ops() {
        assert_eq!(
            parse_request("not json").unwrap_err().code,
            codes::BAD_REQUEST
        );
        assert_eq!(parse_request("[1,2]").unwrap_err().code, codes::BAD_REQUEST);
        assert_eq!(
            parse_request(r#"{"op":"teleport"}"#).unwrap_err().code,
            codes::BAD_REQUEST
        );
        assert_eq!(
            parse_request(r#"{"op":"run"}"#).unwrap_err().code,
            codes::BAD_REQUEST
        );
    }

    #[test]
    fn rejects_future_versions_but_echoes_the_id() {
        let err = parse_request(r#"{"v":2,"op":"ping","id":"p-9"}"#).unwrap_err();
        assert_eq!(err.code, codes::UNSUPPORTED_VERSION);
        assert_eq!(err.id.as_deref(), Some("p-9"));
        let line = error_line(&err, None);
        assert!(line.contains("\"ok\":false") && line.contains("p-9"));
    }

    #[test]
    fn parses_deadline_and_shutdown() {
        let Request::Run(r) = parse_request(
            r#"{"op":"run","program":"integer i = 0\nwhile (i < n) { i = i + 1 }","deadline_ms":250}"#,
        )
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(r.deadline_ms, Some(250));

        let Request::Shutdown { id } = parse_request(r#"{"op":"shutdown","id":"s-1"}"#).unwrap()
        else {
            panic!("expected shutdown");
        };
        assert_eq!(id.as_deref(), Some("s-1"));
    }

    #[test]
    fn rejects_nonpositive_deadlines() {
        for line in [
            r#"{"op":"run","program":"x","deadline_ms":0}"#,
            r#"{"op":"run","program":"x","deadline_ms":-5}"#,
            r#"{"op":"run","program":"x","deadline_ms":"soon"}"#,
        ] {
            assert_eq!(parse_request(line).unwrap_err().code, codes::BAD_REQUEST);
        }
    }

    #[test]
    fn retriable_errors_carry_the_hint() {
        let err = ProtoError {
            code: codes::TENANT_BUSY,
            detail: "2 regions in flight".into(),
            id: None,
        };
        let line = error_line(&err, Some(25));
        assert!(line.contains("\"retry_after_ms\":25"), "{line}");
    }
}
