//! Crash-safe persistence for the certificate cache.
//!
//! A `wlp-serve` restart — deploy, crash, OOM-kill — must be a planned
//! fast path, not a latency cliff: without durable state every restart
//! re-certifies the whole corpus under live traffic. This module gives
//! the cache a `--state-dir` with exactly two files plus a lock:
//!
//! * `snapshot.bin` — the resident working set at the last compaction,
//!   written to a temp file, fsynced, and atomically renamed into place
//!   (a snapshot is either the old one or the new one, never a blend);
//! * `journal.bin` — an append-only log of every certificate minted
//!   since that snapshot, fsynced in batches and compacted back into a
//!   snapshot once it outgrows a threshold;
//! * `LOCK` — a pidfile refusing two live daemons the same state dir.
//!
//! Both files are sequences of CRC32-framed, length-prefixed records of
//! `(source_hash, source_len, source, compact-encoded certificate)`.
//! Recovery is **corruption-tolerant by construction**: a torn tail, a
//! bit-flipped record, or a truncated snapshot is *skipped with a
//! counter, never a panic* — the CRC gates every record, the FNV-1a
//! content hash is re-verified against the source bytes, the certificate
//! must decode, and the loader re-analyzes the source and refuses the
//! record unless the persisted certificate matches byte-for-byte
//! ([`crate::cache::CertCache::load_recovered`]). A corrupt record
//! therefore costs one cold miss; it can never be *served*.
//!
//! All disk writes go through the [`StateIo`] seam from `wlp-fault`, so
//! the chaos harness can inject torn writes, short writes, bit flips,
//! and fsync errors between the framing logic and the filesystem.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wlp_analyze::SafetyCertificate;

pub use wlp_fault::{DirectIo, StateIo};

use crate::cache::fnv1a64;

/// Journal file name inside the state dir.
pub const JOURNAL_FILE: &str = "journal.bin";
/// Snapshot file name inside the state dir.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Temp name a snapshot is staged under before its atomic rename.
pub const SNAPSHOT_TMP: &str = "snapshot.tmp";
/// Pidfile name inside the state dir.
pub const LOCK_FILE: &str = "LOCK";

/// Hard upper bound on one framed record's payload. Request lines are
/// capped at 1 MiB by the transports, so any length prefix beyond this
/// is framing garbage, not a real record — recovery stops trusting the
/// file there instead of attempting a multi-gigabyte allocation.
pub const MAX_RECORD_BYTES: u32 = 2 << 20;

/// Tunables for the persistent store.
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// Directory holding `snapshot.bin`, `journal.bin`, and `LOCK`.
    /// Created if missing (its parent must exist).
    pub state_dir: PathBuf,
    /// fsync the journal every N appends: `1` syncs every record (an
    /// acknowledged certificate survives any crash), larger values batch
    /// (a crash can lose up to N−1 tail records — each costs one cold
    /// miss after restart, nothing more), `0` leaves flushing to the OS.
    pub journal_fsync_every: u64,
    /// Journal size in bytes past which an append triggers compaction of
    /// the resident working set into a fresh snapshot.
    pub compact_bytes: u64,
}

impl PersistConfig {
    /// Defaults at `dir`: fsync every append, compact past 1 MiB.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        PersistConfig {
            state_dir: dir.into(),
            journal_fsync_every: 1,
            compact_bytes: 1 << 20,
        }
    }
}

/// Why a state dir could not be opened. Every variant renders as the
/// one-line startup error the daemon prints before exiting — the
/// fail-fast contract: an unusable `--state-dir` refuses to boot instead
/// of erroring mid-request.
#[derive(Debug)]
pub enum PersistError {
    /// The state dir does not exist and neither does its parent.
    MissingParent(PathBuf),
    /// The state-dir path exists but is not a directory.
    NotADirectory(PathBuf),
    /// The state dir cannot be written (probe file creation failed).
    NotWritable(PathBuf, io::Error),
    /// Another live process holds the state dir's `LOCK` pidfile.
    Locked {
        /// The pidfile path.
        path: PathBuf,
        /// The live owner's pid.
        pid: u32,
    },
    /// Any other I/O failure during open/recovery.
    Io(io::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::MissingParent(dir) => write!(
                f,
                "state dir `{}` unusable: parent directory does not exist",
                dir.display()
            ),
            PersistError::NotADirectory(dir) => write!(
                f,
                "state dir `{}` unusable: path exists but is not a directory",
                dir.display()
            ),
            PersistError::NotWritable(dir, e) => write!(
                f,
                "state dir `{}` unusable: not writable ({e})",
                dir.display()
            ),
            PersistError::Locked { path, pid } => write!(
                f,
                "state dir locked: `{}` names live pid {pid} (is another wlp-serve running?)",
                path.display()
            ),
            PersistError::Io(e) => write!(f, "state dir I/O error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// One recovered `(source_hash, source, certificate)` record. The hash
/// and CRC have already been verified against the bytes; whether the
/// certificate still matches re-analysis is decided at load time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistRecord {
    /// FNV-1a hash of `source` (re-verified during the scan).
    pub source_hash: u64,
    /// The exact program source the certificate was minted for.
    pub source: String,
    /// The compact certificate line (`cert-v1;…`), decode-checked.
    pub cert_line: String,
}

/// What [`PersistentStore::append`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendOutcome {
    /// Whether the record was (as far as the I/O layer admits) written.
    pub persisted: bool,
    /// Framed bytes appended when `persisted`.
    pub bytes: u64,
    /// Whether the journal has outgrown `compact_bytes` — the caller
    /// should gather the resident working set and call
    /// [`PersistentStore::compact`].
    pub needs_compact: bool,
}

/// CRC-32 (IEEE, reflected) — the per-record integrity gate. Bitwise,
/// table-free: records are small and recovery is a startup path.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Frames one record: `[payload_len u32][crc32 u32]` then the payload
/// `[source_hash u64][source_len u32][source bytes][cert_line bytes]`,
/// all little-endian. Public so the corruption-matrix tests can build
/// byte-exact journals.
pub fn frame_record(source: &str, cert_line: &str) -> Vec<u8> {
    let mut payload = Vec::with_capacity(12 + source.len() + cert_line.len());
    payload.extend_from_slice(&fnv1a64(source.as_bytes()).to_le_bytes());
    payload.extend_from_slice(&(source.len() as u32).to_le_bytes());
    payload.extend_from_slice(source.as_bytes());
    payload.extend_from_slice(cert_line.as_bytes());
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"))
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"))
}

/// Decodes one CRC-verified payload into a record, or `None` when its
/// internal structure is inconsistent (bad lengths, invalid UTF-8, hash
/// mismatch, undecodable certificate).
fn decode_payload(payload: &[u8]) -> Option<PersistRecord> {
    if payload.len() < 12 {
        return None;
    }
    let source_hash = read_u64(payload, 0);
    let source_len = read_u32(payload, 8) as usize;
    if 12 + source_len > payload.len() {
        return None;
    }
    let source = std::str::from_utf8(&payload[12..12 + source_len]).ok()?;
    let cert_line = std::str::from_utf8(&payload[12 + source_len..]).ok()?;
    if fnv1a64(source.as_bytes()) != source_hash {
        return None;
    }
    SafetyCertificate::decode_compact(cert_line).ok()?;
    Some(PersistRecord {
        source_hash,
        source: source.to_string(),
        cert_line: cert_line.to_string(),
    })
}

/// Scans one framed file, returning every trustworthy record in order
/// plus the number skipped. Never panics, whatever the bytes:
///
/// * an incomplete header or a length that overruns the file (or
///   [`MAX_RECORD_BYTES`]) is a torn/garbage tail — count one skip and
///   stop, since framing past that point cannot be trusted;
/// * a record whose CRC fails is skipped and the scan re-syncs at the
///   length the (CRC-covered-but-unverifiable) header claimed; if that
///   length was itself the corruption, the following pseudo-records fail
///   their CRCs too and the scan degrades to a bounded skip cascade —
///   every record *before* the damage has already been kept;
/// * a CRC-valid record with inconsistent internals (hash mismatch,
///   invalid UTF-8, undecodable certificate) is skipped individually.
///
/// A missing file is an empty store, not an error.
pub fn read_records(path: &Path) -> io::Result<(Vec<PersistRecord>, u64)> {
    let buf = match std::fs::read(path) {
        Ok(buf) => buf,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut skipped = 0u64;
    let mut pos = 0usize;
    while pos < buf.len() {
        if pos + 8 > buf.len() {
            skipped += 1; // torn tail: header itself is incomplete
            break;
        }
        let len = read_u32(&buf, pos) as usize;
        let crc = read_u32(&buf, pos + 4);
        if len > MAX_RECORD_BYTES as usize || pos + 8 + len > buf.len() {
            skipped += 1; // torn tail or garbage length: framing untrustworthy
            break;
        }
        let payload = &buf[pos + 8..pos + 8 + len];
        if crc32(payload) == crc {
            match decode_payload(payload) {
                Some(rec) => records.push(rec),
                None => skipped += 1,
            }
        } else {
            skipped += 1;
        }
        pos += 8 + len;
    }
    Ok((records, skipped))
}

struct Journal {
    file: File,
    /// Bytes this process believes the journal holds (used for the
    /// compaction trigger and post-failure truncation; a torn write can
    /// make it optimistic, which recovery tolerates).
    len: u64,
    appends_since_sync: u64,
}

/// The crash-safe store: one open journal, counters, and the pidfile
/// lock, shared behind the service.
///
/// Dropping the store releases the `LOCK` pidfile; a SIGKILLed daemon
/// leaves it behind, and the next [`open`](PersistentStore::open)
/// detects the dead pid and takes the dir over.
pub struct PersistentStore {
    cfg: PersistConfig,
    io: Arc<dyn StateIo>,
    journal: Mutex<Journal>,
    lock_path: PathBuf,
    loaded: AtomicU64,
    appended: AtomicU64,
    snapshots: AtomicU64,
    skipped_corrupt: AtomicU64,
    io_errors: AtomicU64,
}

impl PersistentStore {
    /// Opens (creating if needed) the state dir, fail-fast-validating it,
    /// and recovers every trustworthy record from snapshot + journal —
    /// journal records win over snapshot records with the same hash.
    /// Returns the store plus the recovered records for the caller to
    /// load into its cache (via `CertCache::load_recovered`, which
    /// re-analyzes and cross-checks each one).
    pub fn open(
        cfg: PersistConfig,
        io: Arc<dyn StateIo>,
    ) -> Result<(PersistentStore, Vec<PersistRecord>), PersistError> {
        let dir = &cfg.state_dir;
        if dir.exists() {
            if !dir.is_dir() {
                return Err(PersistError::NotADirectory(dir.clone()));
            }
        } else {
            // Create exactly one level: a missing parent is a config
            // typo the operator must see, not silently mkdir -p away.
            let parent = match dir.parent() {
                Some(p) if !p.as_os_str().is_empty() => p,
                _ => Path::new("."),
            };
            if !parent.is_dir() {
                return Err(PersistError::MissingParent(dir.clone()));
            }
            std::fs::create_dir(dir).map_err(|e| PersistError::NotWritable(dir.clone(), e))?;
        }

        // Writability probe: the pidfile doubles as it.
        let lock_path = dir.join(LOCK_FILE);
        if let Ok(existing) = std::fs::read_to_string(&lock_path) {
            let pid: u32 = existing.trim().parse().unwrap_or(0);
            if pid != 0 && pid_alive(pid) {
                return Err(PersistError::Locked {
                    path: lock_path,
                    pid,
                });
            }
            // dead owner (SIGKILL leaves its pidfile): take the dir over
        }
        std::fs::write(&lock_path, format!("{}\n", std::process::id()))
            .map_err(|e| PersistError::NotWritable(dir.clone(), e))?;

        let (mut records, mut skipped) = read_records(&dir.join(SNAPSHOT_FILE))?;
        let (journal_records, journal_skipped) = read_records(&dir.join(JOURNAL_FILE))?;
        skipped += journal_skipped;
        // Journal entries postdate the snapshot: same hash, journal wins.
        let mut by_hash: HashMap<u64, usize> = records
            .iter()
            .enumerate()
            .map(|(i, r)| (r.source_hash, i))
            .collect();
        for rec in journal_records {
            match by_hash.get(&rec.source_hash) {
                Some(&i) => records[i] = rec,
                None => {
                    by_hash.insert(rec.source_hash, records.len());
                    records.push(rec);
                }
            }
        }

        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(JOURNAL_FILE))?;
        let len = file.metadata()?.len();
        let store = PersistentStore {
            cfg,
            io,
            journal: Mutex::new(Journal {
                file,
                len,
                appends_since_sync: 0,
            }),
            lock_path,
            loaded: AtomicU64::new(0),
            appended: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            skipped_corrupt: AtomicU64::new(skipped),
            io_errors: AtomicU64::new(0),
        };
        Ok((store, records))
    }

    /// Appends one record to the journal, honoring the fsync batch
    /// policy. A failed or short write truncates the journal back to the
    /// record boundary (keeping the framing clean) and reports
    /// `persisted: false` — the entry stays resident in the cache, it
    /// just won't survive a restart.
    pub fn append(&self, source: &str, cert_line: &str) -> AppendOutcome {
        let frame = frame_record(source, cert_line);
        let mut j = self.journal.lock();
        let wrote = match self.io.append(&mut j.file, &frame) {
            Ok(n) => n,
            Err(_) => {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
                let _ = j.file.set_len(j.len);
                return AppendOutcome {
                    persisted: false,
                    bytes: 0,
                    needs_compact: false,
                };
            }
        };
        if wrote < frame.len() {
            // Honest short write: roll the partial frame back so the next
            // append starts at a record boundary.
            self.io_errors.fetch_add(1, Ordering::Relaxed);
            let _ = j.file.set_len(j.len);
            return AppendOutcome {
                persisted: false,
                bytes: 0,
                needs_compact: false,
            };
        }
        j.len += frame.len() as u64;
        j.appends_since_sync += 1;
        if self.cfg.journal_fsync_every > 0 && j.appends_since_sync >= self.cfg.journal_fsync_every
        {
            if self.io.sync(&j.file).is_err() {
                // The record is written but its durability is now
                // best-effort; count the failure, keep serving.
                self.io_errors.fetch_add(1, Ordering::Relaxed);
            }
            j.appends_since_sync = 0;
        }
        self.appended.fetch_add(1, Ordering::Relaxed);
        AppendOutcome {
            persisted: true,
            bytes: frame.len() as u64,
            needs_compact: j.len > self.cfg.compact_bytes,
        }
    }

    /// Compacts the journal into a fresh snapshot of `records` (the
    /// caller's resident working set): temp file → fsync → atomic rename
    /// → directory fsync → journal truncate. `records_fn` is invoked
    /// *after* the journal lock is held, so any append that could land
    /// before the truncate is already visible to the collection — no
    /// record can fall between snapshot and journal.
    ///
    /// Returns the snapshot's record count, or the I/O error (counted;
    /// the old snapshot + journal stay authoritative on failure).
    pub fn compact<F>(&self, records_fn: F) -> io::Result<u64>
    where
        F: FnOnce() -> Vec<(String, String)>,
    {
        let mut j = self.journal.lock();
        let records = records_fn();
        let result = (|| -> io::Result<()> {
            let tmp_path = self.cfg.state_dir.join(SNAPSHOT_TMP);
            let mut tmp = File::create(&tmp_path)?;
            for (source, cert_line) in &records {
                let frame = frame_record(source, cert_line);
                let n = self.io.append(&mut tmp, &frame)?;
                if n < frame.len() {
                    return Err(io::Error::other("short write staging snapshot"));
                }
            }
            self.io.sync(&tmp)?;
            drop(tmp);
            std::fs::rename(&tmp_path, self.cfg.state_dir.join(SNAPSHOT_FILE))?;
            // The rename must itself be durable before the journal is
            // truncated, or a crash could leave neither snapshot nor
            // journal; directory fsync is how POSIX spells that.
            if let Ok(d) = File::open(&self.cfg.state_dir) {
                let _ = d.sync_all();
            }
            j.file.set_len(0)?;
            j.len = 0;
            j.appends_since_sync = 0;
            self.io.sync(&j.file)?;
            Ok(())
        })();
        match result {
            Ok(()) => {
                self.snapshots.fetch_add(1, Ordering::Relaxed);
                Ok(records.len() as u64)
            }
            Err(e) => {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Forces an fsync of any batched journal tail (drain/shutdown path).
    pub fn sync(&self) {
        let mut j = self.journal.lock();
        if j.appends_since_sync > 0 {
            if self.io.sync(&j.file).is_err() {
                self.io_errors.fetch_add(1, Ordering::Relaxed);
            }
            j.appends_since_sync = 0;
        }
    }

    /// Counts one recovered record successfully loaded into the cache.
    pub fn note_loaded(&self) {
        self.loaded.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one recovered record the loader refused (re-analysis
    /// mismatch, collision, no-longer-parsing source).
    pub fn note_skipped(&self) {
        self.skipped_corrupt.fetch_add(1, Ordering::Relaxed);
    }

    /// Records loaded into the cache at recovery.
    pub fn loaded(&self) -> u64 {
        self.loaded.load(Ordering::Relaxed)
    }

    /// Records appended to the journal since open.
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Snapshots written since open.
    pub fn snapshots(&self) -> u64 {
        self.snapshots.load(Ordering::Relaxed)
    }

    /// Records recovery refused to trust (scan skips + load refusals).
    pub fn skipped_corrupt(&self) -> u64 {
        self.skipped_corrupt.load(Ordering::Relaxed)
    }

    /// Append/sync failures observed (each also left the record
    /// unpersisted or un-fsynced; none ever corrupts what is served).
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// Bytes currently in the journal (by this process's accounting).
    pub fn journal_bytes(&self) -> u64 {
        self.journal.lock().len
    }

    /// The state dir this store owns.
    pub fn state_dir(&self) -> &Path {
        &self.cfg.state_dir
    }
}

impl Drop for PersistentStore {
    fn drop(&mut self) {
        // Best-effort: flush any batched tail and release the pidfile. A
        // SIGKILL skips this — which is exactly what the stale-pid
        // takeover in `open` exists for.
        self.sync();
        let _ = std::fs::remove_file(&self.lock_path);
    }
}

/// Whether `pid` names a live process. Signal 0 probes without
/// delivering; off Unix there is no cheap probe, so locks are treated as
/// stale (single-daemon discipline is on the operator there).
#[cfg(unix)]
fn pid_alive(pid: u32) -> bool {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    pid != 0 && unsafe { kill(pid as i32, 0) } == 0
}

#[cfg(not(unix))]
fn pid_alive(_pid: u32) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlp_fault::{FsFaultKind, FsFaultPlan};

    const DOALL: &str = "integer i = 0\nwhile (i < n) {\n    A[i] = 2 * A[i]\n    i = i + 1\n}";
    const SUM: &str = "integer i = 0\nwhile (i < n) {\n    s = s + A[i]\n    i = i + 1\n}";

    /// A unique scratch state dir, removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir =
                std::env::temp_dir().join(format!("wlp-persist-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("create temp dir");
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn cert_line(source: &str) -> String {
        wlp_analyze::certify_compact(source).expect("valid source")
    }

    fn open(dir: &Path) -> (PersistentStore, Vec<PersistRecord>) {
        PersistentStore::open(PersistConfig::at(dir), Arc::new(DirectIo)).expect("open")
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check values
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn append_then_reopen_recovers_the_records() {
        let t = TempDir::new("roundtrip");
        {
            let (store, recovered) = open(t.path());
            assert!(recovered.is_empty());
            assert!(store.append(DOALL, &cert_line(DOALL)).persisted);
            assert!(store.append(SUM, &cert_line(SUM)).persisted);
            assert_eq!(store.appended(), 2);
        }
        let (store, recovered) = open(t.path());
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].source, DOALL);
        assert_eq!(recovered[1].source, SUM);
        assert_eq!(recovered[1].cert_line, cert_line(SUM));
        assert_eq!(store.skipped_corrupt(), 0);
    }

    #[test]
    fn duplicate_appends_dedup_at_recovery() {
        let t = TempDir::new("dedup");
        {
            let (store, _) = open(t.path());
            for _ in 0..5 {
                store.append(DOALL, &cert_line(DOALL));
            }
        }
        let (_, recovered) = open(t.path());
        assert_eq!(recovered.len(), 1);
    }

    #[test]
    fn torn_tail_is_skipped_not_panicked() {
        let t = TempDir::new("torn");
        {
            let (store, _) = open(t.path());
            store.append(DOALL, &cert_line(DOALL));
            store.append(SUM, &cert_line(SUM));
        }
        // tear the last record: chop 5 bytes off the journal
        let journal = t.path().join(JOURNAL_FILE);
        let bytes = std::fs::read(&journal).unwrap();
        std::fs::write(&journal, &bytes[..bytes.len() - 5]).unwrap();
        let (store, recovered) = open(t.path());
        assert_eq!(recovered.len(), 1, "the record before the tear survives");
        assert_eq!(recovered[0].source, DOALL);
        assert_eq!(store.skipped_corrupt(), 1);
    }

    #[test]
    fn bit_flip_fails_crc_and_later_records_survive() {
        let t = TempDir::new("flip");
        {
            let (store, _) = open(t.path());
            store.append(DOALL, &cert_line(DOALL));
            store.append(SUM, &cert_line(SUM));
        }
        let journal = t.path().join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&journal).unwrap();
        // flip a payload bit in the FIRST record (past its 8-byte header)
        bytes[20] ^= 0x10;
        std::fs::write(&journal, &bytes).unwrap();
        let (store, recovered) = open(t.path());
        assert_eq!(recovered.len(), 1, "framing re-syncs past the bad record");
        assert_eq!(recovered[0].source, SUM);
        assert_eq!(store.skipped_corrupt(), 1);
    }

    #[test]
    fn injected_torn_write_loses_only_the_torn_record() {
        let t = TempDir::new("injected-torn");
        {
            let io = Arc::new(FsFaultPlan::at(FsFaultKind::TornWrite, 1, 9));
            let (store, _) = PersistentStore::open(PersistConfig::at(t.path()), io).expect("open");
            assert!(store.append(DOALL, &cert_line(DOALL)).persisted);
            // the lie: reported persisted, actually torn on disk
            assert!(store.append(SUM, &cert_line(SUM)).persisted);
        }
        let (store, recovered) = open(t.path());
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].source, DOALL);
        assert_eq!(store.skipped_corrupt(), 1);
    }

    #[test]
    fn injected_short_write_rolls_back_and_keeps_framing_clean() {
        let t = TempDir::new("injected-short");
        {
            let io = Arc::new(FsFaultPlan::at(FsFaultKind::ShortWrite, 0, 13));
            let (store, _) = PersistentStore::open(PersistConfig::at(t.path()), io).expect("open");
            let out = store.append(DOALL, &cert_line(DOALL));
            assert!(!out.persisted, "short write must be reported");
            assert_eq!(store.io_errors(), 1);
            // the journal was truncated back: the next append is whole
            assert!(store.append(SUM, &cert_line(SUM)).persisted);
        }
        let (store, recovered) = open(t.path());
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].source, SUM);
        assert_eq!(store.skipped_corrupt(), 0, "rollback left no garbage");
    }

    #[test]
    fn injected_fsync_error_is_counted_not_fatal() {
        let t = TempDir::new("injected-sync");
        let io = Arc::new(FsFaultPlan::at(FsFaultKind::SyncError, 0, 0));
        let (store, _) = PersistentStore::open(PersistConfig::at(t.path()), io).expect("open");
        assert!(store.append(DOALL, &cert_line(DOALL)).persisted);
        assert_eq!(store.io_errors(), 1);
        assert!(store.append(SUM, &cert_line(SUM)).persisted);
        assert_eq!(store.io_errors(), 1, "one-shot fault");
    }

    #[test]
    fn compaction_snapshots_and_truncates_the_journal() {
        let t = TempDir::new("compact");
        let mut cfg = PersistConfig::at(t.path());
        cfg.compact_bytes = 1; // every append overflows
        {
            let (store, _) = PersistentStore::open(cfg.clone(), Arc::new(DirectIo)).expect("open");
            let out = store.append(DOALL, &cert_line(DOALL));
            assert!(out.needs_compact);
            let n = store
                .compact(|| {
                    vec![
                        (DOALL.to_string(), cert_line(DOALL)),
                        (SUM.to_string(), cert_line(SUM)),
                    ]
                })
                .expect("compact");
            assert_eq!(n, 2);
            assert_eq!(store.snapshots(), 1);
            assert_eq!(store.journal_bytes(), 0);
        }
        assert!(t.path().join(SNAPSHOT_FILE).exists());
        assert!(!t.path().join(SNAPSHOT_TMP).exists());
        let (_, recovered) = open(t.path());
        assert_eq!(recovered.len(), 2);
    }

    #[test]
    fn journal_records_win_over_snapshot_records() {
        let t = TempDir::new("precedence");
        {
            let (store, _) = open(t.path());
            store
                .compact(|| vec![(DOALL.to_string(), cert_line(DOALL))])
                .expect("seed snapshot");
            // journal a record for the same source after the snapshot
            store.append(DOALL, &cert_line(DOALL));
            store.append(SUM, &cert_line(SUM));
        }
        let (_, recovered) = open(t.path());
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].source, DOALL);
    }

    #[test]
    fn truncated_snapshot_is_tolerated() {
        let t = TempDir::new("snap-trunc");
        {
            let (store, _) = open(t.path());
            store
                .compact(|| {
                    vec![
                        (DOALL.to_string(), cert_line(DOALL)),
                        (SUM.to_string(), cert_line(SUM)),
                    ]
                })
                .expect("snapshot");
        }
        let snap = t.path().join(SNAPSHOT_FILE);
        let bytes = std::fs::read(&snap).unwrap();
        std::fs::write(&snap, &bytes[..bytes.len() / 2]).unwrap();
        let (store, recovered) = open(t.path());
        assert!(recovered.len() < 2);
        assert!(store.skipped_corrupt() >= 1);
    }

    #[test]
    fn missing_parent_fails_fast() {
        let t = TempDir::new("missing-parent");
        let bogus = t.path().join("no-such").join("state");
        let err = PersistentStore::open(PersistConfig::at(&bogus), Arc::new(DirectIo))
            .err()
            .expect("must refuse");
        assert!(matches!(err, PersistError::MissingParent(_)), "{err}");
        assert!(err.to_string().contains("parent directory"), "{err}");
    }

    #[test]
    fn state_dir_path_must_be_a_directory() {
        let t = TempDir::new("not-a-dir");
        let file_path = t.path().join("occupied");
        std::fs::write(&file_path, b"x").unwrap();
        let err = PersistentStore::open(PersistConfig::at(&file_path), Arc::new(DirectIo))
            .err()
            .expect("must refuse");
        assert!(matches!(err, PersistError::NotADirectory(_)), "{err}");
    }

    #[test]
    fn live_lock_refuses_dead_lock_takes_over() {
        let t = TempDir::new("lock");
        // live: our own pid holds the dir
        std::fs::write(
            t.path().join(LOCK_FILE),
            format!("{}\n", std::process::id()),
        )
        .unwrap();
        let err = PersistentStore::open(PersistConfig::at(t.path()), Arc::new(DirectIo))
            .err()
            .expect("live pid must refuse");
        assert!(matches!(err, PersistError::Locked { .. }), "{err}");
        assert!(err.to_string().contains("locked"), "{err}");
        // dead: pid 4000000 is beyond linux's default pid_max
        std::fs::write(t.path().join(LOCK_FILE), "4000000\n").unwrap();
        let (store, _) = open(t.path());
        let own: String = std::fs::read_to_string(t.path().join(LOCK_FILE)).unwrap();
        assert_eq!(own.trim(), std::process::id().to_string());
        drop(store);
        assert!(
            !t.path().join(LOCK_FILE).exists(),
            "drop releases the pidfile"
        );
    }

    #[test]
    fn oversized_length_prefix_stops_the_scan() {
        let t = TempDir::new("oversize");
        let journal = t.path().join(JOURNAL_FILE);
        let mut bytes = frame_record(DOALL, &cert_line(DOALL));
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd length
        bytes.extend_from_slice(&[0u8; 64]);
        std::fs::write(&journal, &bytes).unwrap();
        let (records, skipped) = read_records(&journal).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(skipped, 1);
    }
}
