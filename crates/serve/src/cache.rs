//! The certificate cache: content-addressed memoization of the front-end
//! and the static analysis.
//!
//! A service replaying the same handful of loops over and over (the
//! expected shape of multi-tenant traffic) should pay for parsing,
//! lowering, privatization, reduction recognition and terminator
//! classification **once per distinct program**, not once per request.
//! [`CertCache`] keys entries by the FNV-1a hash of the program source
//! (verifying the stored source byte-for-byte on hit, since FNV-1a is
//! not collision-resistant) — a hit skips the whole `wlp-ir` front end
//! and `wlp-analyze` pipeline
//! and hands back the parsed [`Program`] plus the finished [`Analysis`]
//! behind an `Arc`, so concurrent requests share one copy.
//!
//! Eviction is LRU over a bounded capacity: the cache is sized for the
//! working set of distinct programs, not the request volume, and a cold
//! program pays exactly one miss before its certificate is resident.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wlp_analyze::{analyze_source, Analysis};
use wlp_ir::frontend::{FrontendError, Program};

/// 64-bit FNV-1a over a byte string — the content hash the cache keys on
/// (and the digest [`crate::Service`] reports for result arrays).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One resident program: everything a request needs that depends only on
/// the source text.
#[derive(Debug)]
pub struct CacheEntry {
    /// FNV-1a hash of the source (the cache key).
    pub key: u64,
    /// The exact source text this entry was built from. FNV-1a is not
    /// collision-resistant (colliding inputs are computable), so a hit
    /// is only served after this matches the request byte-for-byte —
    /// otherwise a crafted program could poison the shared cache and
    /// other tenants would silently run the wrong program.
    pub source: String,
    /// The parsed AST the interpreter executes.
    pub program: Program,
    /// The full static analysis, certificate included.
    pub analysis: Analysis,
}

/// Why [`CertCache::load_recovered`] refused a persisted record. Every
/// variant means "pay one cold miss for this program later" — never
/// "serve something wrong".
#[derive(Debug)]
pub enum RecoverError {
    /// The persisted source no longer parses/lowers (grammar drift since
    /// the record was written).
    Frontend(FrontendError),
    /// Re-analysis produced a different certificate than the record
    /// carries — stale or tampered; the persisted line is never trusted
    /// over a fresh derivation.
    CertMismatch,
    /// A different program already occupies this hash slot (FNV-1a
    /// collision); the resident entry wins, as on the lookup path.
    Collision,
}

/// Whether a lookup was served from the cache or had to run the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Entry was resident: no parse, no analysis.
    Hit,
    /// Entry was built on this call (or rebuilt after eviction).
    Miss,
}

struct LruState {
    map: HashMap<u64, Arc<CacheEntry>>,
    /// Keys ordered least- to most-recently used. Capacity is small
    /// (a working set of programs), so the O(len) touch is irrelevant
    /// next to the analysis it memoizes.
    order: VecDeque<u64>,
}

/// A bounded, thread-safe LRU cache of [`CacheEntry`]s keyed by source
/// content hash.
pub struct CertCache {
    capacity: usize,
    state: Mutex<LruState>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CertCache {
    /// A cache holding at most `capacity` distinct programs (minimum 1).
    pub fn new(capacity: usize) -> Self {
        CertCache {
            capacity: capacity.max(1),
            state: Mutex::new(LruState {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up `source`, running parse → lower → analyze on a miss.
    ///
    /// Front-end failures are returned without being cached: a malformed
    /// program pays its (cheap) parse error on every submission rather
    /// than occupying a slot.
    pub fn lookup(&self, source: &str) -> Result<(Arc<CacheEntry>, CacheOutcome), FrontendError> {
        self.lookup_keyed(fnv1a64(source.as_bytes()), source)
    }

    /// [`lookup`](Self::lookup) with the key precomputed — split out so
    /// tests can force two sources onto one key and exercise the
    /// collision path.
    fn lookup_keyed(
        &self,
        key: u64,
        source: &str,
    ) -> Result<(Arc<CacheEntry>, CacheOutcome), FrontendError> {
        {
            let mut st = self.state.lock();
            if let Some(entry) = st.map.get(&key).cloned() {
                // a 64-bit hash match is not proof of identity: serve
                // the hit only if the resident source is this source
                if entry.source == source {
                    touch(&mut st.order, key);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((entry, CacheOutcome::Hit));
                }
            }
        }
        // Build outside the lock: a slow analysis must not serialize
        // unrelated hits. Two racing misses both build; last insert wins
        // and both results are identical (the pipeline is deterministic).
        let (program, analysis) = analyze_source(source)?;
        let entry = Arc::new(CacheEntry {
            key,
            source: source.to_string(),
            program,
            analysis,
        });
        let mut st = self.state.lock();
        match st.map.get(&key) {
            None => {
                if st.map.len() >= self.capacity {
                    if let Some(evict) = st.order.pop_front() {
                        st.map.remove(&evict);
                    }
                }
                st.map.insert(key, entry.clone());
                st.order.push_back(key);
            }
            Some(resident) if resident.source == source => {
                // a racing miss for the same source beat us to the insert
                touch(&mut st.order, key);
            }
            Some(_) => {
                // hash collision with a different resident program: hand
                // back the fresh build uncached rather than evicting the
                // (presumably hot) resident or thrashing the slot
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok((entry, CacheOutcome::Miss))
    }

    /// Loads one warm-restart record recovered by the persistence layer.
    ///
    /// The persisted certificate is a **cross-check, not the artifact**:
    /// the source is re-analyzed from scratch and the entry is admitted
    /// only when the fresh certificate's compact encoding equals the
    /// persisted line byte-for-byte. A bit-flipped, stale, or tampered
    /// record that somehow survived the CRC therefore still cannot be
    /// served — it is refused here and costs one cold miss.
    ///
    /// Does not touch the hit/miss counters (recovery is not traffic)
    /// but honors capacity and LRU order like any insert.
    pub fn load_recovered(&self, source: &str, cert_line: &str) -> Result<(), RecoverError> {
        let key = fnv1a64(source.as_bytes());
        {
            let st = self.state.lock();
            if let Some(resident) = st.map.get(&key) {
                if resident.source == source {
                    return Ok(()); // already resident (snapshot/journal overlap)
                }
                return Err(RecoverError::Collision);
            }
        }
        let (program, analysis) = analyze_source(source).map_err(RecoverError::Frontend)?;
        if analysis.certificate.encode_compact() != cert_line {
            return Err(RecoverError::CertMismatch);
        }
        let entry = Arc::new(CacheEntry {
            key,
            source: source.to_string(),
            program,
            analysis,
        });
        let mut st = self.state.lock();
        match st.map.get(&key) {
            None => {
                if st.map.len() >= self.capacity {
                    if let Some(evict) = st.order.pop_front() {
                        st.map.remove(&evict);
                    }
                }
                st.map.insert(key, entry);
                st.order.push_back(key);
                Ok(())
            }
            Some(resident) if resident.source == source => Ok(()),
            Some(_) => Err(RecoverError::Collision),
        }
    }

    /// The resident entries, coldest first (LRU order) — what a
    /// compaction snapshots: evicting the coldest from the snapshot too
    /// (when over capacity) falls out of the ordering for free.
    pub fn resident_entries(&self) -> Vec<Arc<CacheEntry>> {
        let st = self.state.lock();
        st.order
            .iter()
            .filter_map(|key| st.map.get(key).cloned())
            .collect()
    }

    /// Lookups served without running the pipeline.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran parse + analysis.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hits over total lookups (0.0 when empty).
    pub fn hit_ratio(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.state.lock().map.len()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

fn touch(order: &mut VecDeque<u64>, key: u64) {
    if let Some(pos) = order.iter().position(|&k| k == key) {
        order.remove(pos);
    }
    order.push_back(key);
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOOP_A: &str = "integer i = 0\nwhile (i < n) {\n    A[i] = 2 * A[i]\n    i = i + 1\n}";
    const LOOP_B: &str = "integer i = 0\nwhile (i < n) {\n    B[i] = B[i] + 1\n    i = i + 1\n}";
    const LOOP_C: &str = "integer i = 1\nwhile (i < n) {\n    C[i] = C[i - 1]\n    i = i + 1\n}";

    #[test]
    fn fnv_is_stable_and_distinguishes() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
        assert_eq!(fnv1a64(LOOP_A.as_bytes()), fnv1a64(LOOP_A.as_bytes()));
    }

    #[test]
    fn second_lookup_hits_and_shares_the_entry() {
        let cache = CertCache::new(8);
        let (e1, o1) = cache.lookup(LOOP_A).unwrap();
        let (e2, o2) = cache.lookup(LOOP_A).unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!(o2, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&e1, &e2));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = CertCache::new(2);
        cache.lookup(LOOP_A).unwrap();
        cache.lookup(LOOP_B).unwrap();
        cache.lookup(LOOP_A).unwrap(); // A is now warmer than B
        cache.lookup(LOOP_C).unwrap(); // evicts B
        assert_eq!(cache.len(), 2);
        let (_, a) = cache.lookup(LOOP_A).unwrap();
        let (_, b) = cache.lookup(LOOP_B).unwrap();
        assert_eq!(a, CacheOutcome::Hit);
        assert_eq!(b, CacheOutcome::Miss);
    }

    #[test]
    fn parse_failures_are_not_cached() {
        let cache = CertCache::new(2);
        assert!(cache.lookup("while (").is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn colliding_keys_never_serve_another_programs_entry() {
        // Force LOOP_A and LOOP_B (different programs, thus different
        // DOALL/reduction shapes) onto one cache key — the situation an
        // attacker computing an FNV-1a collision engineers.
        let cache = CertCache::new(8);
        let (a, o) = cache.lookup_keyed(42, LOOP_A).unwrap();
        assert_eq!(o, CacheOutcome::Miss);
        // the colliding lookup must NOT get A's entry back
        let (b, o) = cache.lookup_keyed(42, LOOP_B).unwrap();
        assert_eq!(o, CacheOutcome::Miss);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(b.source, LOOP_B);
        assert_eq!(b.analysis.certificate, {
            let fresh = CertCache::new(1);
            fresh.lookup(LOOP_B).unwrap().0.analysis.certificate.clone()
        });
        // the resident (first-come) entry keeps its slot and still hits
        let (a2, o) = cache.lookup_keyed(42, LOOP_A).unwrap();
        assert_eq!(o, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&a, &a2));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn load_recovered_admits_only_matching_certificates() {
        let cache = CertCache::new(8);
        let line = wlp_analyze::certify_compact(LOOP_A).unwrap();
        cache.load_recovered(LOOP_A, &line).expect("genuine record");
        assert_eq!(cache.len(), 1);
        // recovery is not traffic: counters untouched...
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        // ...but the next real lookup hits without re-analyzing
        let (_, o) = cache.lookup(LOOP_A).unwrap();
        assert_eq!(o, CacheOutcome::Hit);

        // a certificate for a DIFFERENT program must be refused
        let wrong = wlp_analyze::certify_compact(LOOP_C).unwrap();
        assert!(matches!(
            cache.load_recovered(LOOP_B, &wrong),
            Err(RecoverError::CertMismatch)
        ));
        // a source that no longer parses must be refused, not panic
        assert!(matches!(
            cache.load_recovered("while (", "cert-v1;x"),
            Err(RecoverError::Frontend(_))
        ));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn load_recovered_is_idempotent_and_capacity_bounded() {
        let cache = CertCache::new(2);
        let a = wlp_analyze::certify_compact(LOOP_A).unwrap();
        let b = wlp_analyze::certify_compact(LOOP_B).unwrap();
        let c = wlp_analyze::certify_compact(LOOP_C).unwrap();
        cache.load_recovered(LOOP_A, &a).unwrap();
        cache.load_recovered(LOOP_A, &a).unwrap(); // overlap: no-op
        cache.load_recovered(LOOP_B, &b).unwrap();
        cache.load_recovered(LOOP_C, &c).unwrap(); // evicts coldest (A)
        assert_eq!(cache.len(), 2);
        let (_, o) = cache.lookup(LOOP_C).unwrap();
        assert_eq!(o, CacheOutcome::Hit);
    }

    #[test]
    fn resident_entries_are_coldest_first() {
        let cache = CertCache::new(8);
        cache.lookup(LOOP_A).unwrap();
        cache.lookup(LOOP_B).unwrap();
        cache.lookup(LOOP_A).unwrap(); // warm A above B
        let entries = cache.resident_entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].source, LOOP_B);
        assert_eq!(entries[1].source, LOOP_A);
    }

    #[test]
    fn hit_and_miss_certificates_are_identical() {
        let cache = CertCache::new(1);
        let (miss, _) = cache.lookup(LOOP_A).unwrap();
        let (hit, o) = cache.lookup(LOOP_A).unwrap();
        assert_eq!(o, CacheOutcome::Hit);
        assert_eq!(miss.analysis.certificate, hit.analysis.certificate);
        // and both equal a from-scratch analysis
        cache.lookup(LOOP_B).unwrap(); // evict A
        let (fresh, o) = cache.lookup(LOOP_A).unwrap();
        assert_eq!(o, CacheOutcome::Miss);
        assert_eq!(fresh.analysis.certificate, hit.analysis.certificate);
    }
}
