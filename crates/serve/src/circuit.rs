//! A per-tenant circuit breaker, layered above the governor ladder.
//!
//! The governor ladder already contains *strategy*
//! failures — a tenant whose speculations keep aborting is demoted
//! toward sequential execution, but its requests still run and still
//! occupy lanes. A tenant whose requests keep **timing out** is a
//! different animal: each one holds a lane for its full deadline and
//! returns nothing, so a burst of them converts the whole service's
//! capacity into dead time. The breaker cuts that off at admission:
//! after [`CircuitPolicy::trip_threshold`] *consecutive* hard failures
//! (deadline expiries, client abandons, worker panics) the tenant's
//! circuit opens and its `run` requests are rejected immediately with
//! `tenant_circuit_open` + `retry_after_ms` — no lane, no credits, no
//! queue slot — for [`CircuitPolicy::open_ms`]. The breaker then goes
//! **half-open**: a bounded number of probe requests are admitted, and
//! the first success closes the circuit while another failure re-opens
//! it (with the same interval — the backoff lives in the client's
//! retry loop, the governor ladder, and the admission valves; stacking
//! a third exponential here would triple-penalize).
//!
//! The state machine is deliberately tiny and lock-cheap: one enum
//! behind the tenant's existing mutex, advanced only on request
//! completion and admission.

use std::time::{Duration, Instant};

/// Tuning for a tenant's [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitPolicy {
    /// Consecutive hard failures (timeouts, abandons, panics) that trip
    /// the breaker. 0 disables the breaker entirely.
    pub trip_threshold: u32,
    /// How long the circuit stays open before probing, in milliseconds.
    pub open_ms: u64,
    /// Probe requests admitted while half-open; a success among them
    /// closes the circuit, a failure re-opens it.
    pub half_open_probes: u32,
}

impl Default for CircuitPolicy {
    fn default() -> Self {
        CircuitPolicy {
            trip_threshold: 4,
            open_ms: 1_000,
            half_open_probes: 1,
        }
    }
}

/// The breaker's current position, as reported in `stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Requests flow normally.
    Closed,
    /// Requests are rejected until the open interval elapses.
    Open,
    /// A bounded number of probes are being admitted.
    HalfOpen,
}

impl CircuitState {
    /// Short stable name (`stats` output).
    pub fn name(&self) -> &'static str {
        match self {
            CircuitState::Closed => "closed",
            CircuitState::Open => "open",
            CircuitState::HalfOpen => "half_open",
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum State {
    Closed { consecutive_failures: u32 },
    Open { until: Instant },
    HalfOpen { probes_left: u32 },
}

/// What [`CircuitBreaker::admit`] decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request may proceed.
    Allow,
    /// The circuit is open; retry after the carried hint.
    Reject {
        /// Remaining open interval, the response's `retry_after_ms`.
        retry_after_ms: u64,
    },
}

/// Per-tenant consecutive-failure circuit breaker. See the module docs
/// for the state machine.
#[derive(Debug)]
pub struct CircuitBreaker {
    policy: CircuitPolicy,
    state: State,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker under `policy`.
    pub fn new(policy: CircuitPolicy) -> Self {
        CircuitBreaker {
            policy,
            state: State::Closed {
                consecutive_failures: 0,
            },
            trips: 0,
        }
    }

    /// The breaker's position right now (an expired open interval
    /// reports half-open, since the next admission would probe).
    pub fn state(&self) -> CircuitState {
        match self.state {
            State::Closed { .. } => CircuitState::Closed,
            State::Open { until } => {
                if Instant::now() >= until {
                    CircuitState::HalfOpen
                } else {
                    CircuitState::Open
                }
            }
            State::HalfOpen { .. } => CircuitState::HalfOpen,
        }
    }

    /// Times the breaker has opened since the tenant appeared.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Admission check for one `run` request. Open circuits reject with
    /// the remaining interval; an elapsed interval transitions to
    /// half-open and admits a probe.
    pub fn admit(&mut self) -> Admission {
        if self.policy.trip_threshold == 0 {
            return Admission::Allow;
        }
        match self.state {
            State::Closed { .. } => Admission::Allow,
            State::Open { until } => {
                let now = Instant::now();
                if now < until {
                    let remaining = until.saturating_duration_since(now);
                    Admission::Reject {
                        retry_after_ms: remaining.as_millis().max(1) as u64,
                    }
                } else {
                    // interval elapsed: this request is the first probe
                    let probes = self.policy.half_open_probes.max(1);
                    self.state = State::HalfOpen {
                        probes_left: probes - 1,
                    };
                    Admission::Allow
                }
            }
            State::HalfOpen { probes_left } => {
                if probes_left > 0 {
                    self.state = State::HalfOpen {
                        probes_left: probes_left - 1,
                    };
                    Admission::Allow
                } else {
                    // probes outstanding; wait for one to complete
                    Admission::Reject {
                        retry_after_ms: self.policy.open_ms.max(1),
                    }
                }
            }
        }
    }

    /// Records a completed request that succeeded (or failed for a
    /// reason the breaker does not count — parse errors, admission
    /// rejections). Closes a half-open circuit, resets the failure
    /// streak. Returns `true` when this success closed the circuit.
    pub fn record_success(&mut self) -> bool {
        let was_half_open = matches!(self.state, State::HalfOpen { .. });
        self.state = State::Closed {
            consecutive_failures: 0,
        };
        was_half_open
    }

    /// Records a hard failure (timeout, client abandon, worker panic).
    /// Returns `true` when this failure tripped the circuit open.
    pub fn record_failure(&mut self) -> bool {
        if self.policy.trip_threshold == 0 {
            return false;
        }
        let open_after = Instant::now() + Duration::from_millis(self.policy.open_ms);
        match self.state {
            State::Closed {
                consecutive_failures,
            } => {
                let streak = consecutive_failures + 1;
                if streak >= self.policy.trip_threshold {
                    self.state = State::Open { until: open_after };
                    self.trips += 1;
                    true
                } else {
                    self.state = State::Closed {
                        consecutive_failures: streak,
                    };
                    false
                }
            }
            // a failed probe re-opens immediately
            State::HalfOpen { .. } => {
                self.state = State::Open { until: open_after };
                self.trips += 1;
                true
            }
            State::Open { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_policy() -> CircuitPolicy {
        CircuitPolicy {
            trip_threshold: 3,
            open_ms: 40,
            half_open_probes: 1,
        }
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let mut cb = CircuitBreaker::new(fast_policy());
        assert!(!cb.record_failure());
        assert!(!cb.record_failure());
        // a success resets the streak
        cb.record_success();
        assert!(!cb.record_failure());
        assert!(!cb.record_failure());
        assert!(cb.record_failure(), "third consecutive failure trips");
        assert_eq!(cb.state(), CircuitState::Open);
        assert_eq!(cb.trips(), 1);
    }

    #[test]
    fn open_circuit_rejects_with_remaining_interval() {
        let mut cb = CircuitBreaker::new(fast_policy());
        for _ in 0..3 {
            cb.record_failure();
        }
        match cb.admit() {
            Admission::Reject { retry_after_ms } => {
                assert!((1..=40).contains(&retry_after_ms), "{retry_after_ms}");
            }
            Admission::Allow => panic!("open circuit must reject"),
        }
    }

    #[test]
    fn half_open_probe_success_closes() {
        let mut cb = CircuitBreaker::new(fast_policy());
        for _ in 0..3 {
            cb.record_failure();
        }
        std::thread::sleep(Duration::from_millis(45));
        assert_eq!(cb.admit(), Admission::Allow, "probe admitted");
        assert_eq!(cb.state(), CircuitState::HalfOpen);
        // a second request while the probe is outstanding is rejected
        assert!(matches!(cb.admit(), Admission::Reject { .. }));
        assert!(cb.record_success(), "probe success closes the circuit");
        assert_eq!(cb.state(), CircuitState::Closed);
        assert_eq!(cb.admit(), Admission::Allow);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let mut cb = CircuitBreaker::new(fast_policy());
        for _ in 0..3 {
            cb.record_failure();
        }
        std::thread::sleep(Duration::from_millis(45));
        assert_eq!(cb.admit(), Admission::Allow);
        assert!(cb.record_failure(), "failed probe re-trips");
        assert_eq!(cb.state(), CircuitState::Open);
        assert_eq!(cb.trips(), 2);
        assert!(matches!(cb.admit(), Admission::Reject { .. }));
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let mut cb = CircuitBreaker::new(CircuitPolicy {
            trip_threshold: 0,
            ..fast_policy()
        });
        for _ in 0..100 {
            assert!(!cb.record_failure());
        }
        assert_eq!(cb.admit(), Admission::Allow);
        assert_eq!(cb.state(), CircuitState::Closed);
    }
}
