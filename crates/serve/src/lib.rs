//! `wlp-serve`: a multi-tenant loop-parallelization service.
//!
//! The preceding layers of this repository certify and execute one WHILE
//! loop at a time. This crate turns them into a **resident daemon**: many
//! tenants submit programs over a newline-delimited JSON protocol (see
//! `docs/PROTOCOL.md`), and the service multiplexes their loop regions
//! onto one shared worker budget. Three mechanisms make that safe and
//! fast:
//!
//! * **Certificate cache** ([`cache::CertCache`]) — parse, lowering, and
//!   the full `wlp-analyze` pipeline are memoized by source content hash;
//!   a hot program pays zero front-end cost per request, and the hit/miss
//!   counters surface through `wlp-obs` events and the `stats` op.
//! * **Region scheduler** ([`wlp_runtime::RegionScheduler`]) — resident
//!   worker lanes checked out per region in FIFO order, so concurrent
//!   tenants never cold-start threads and never oversubscribe the host
//!   (the paper's Section 8 resource-controlled self-scheduling, lifted
//!   from iterations-within-a-loop to loops-within-a-service).
//! * **Admission control** ([`TenantState`]) — each tenant holds a
//!   bounded number of regions in flight, a [`wlp_runtime::Governor`]
//!   whose abort history demotes it down the strategy ladder, and a
//!   speculation write-budget credit pool; requests past any bound are
//!   rejected with a `retry_after_ms` hint instead of queuing unbounded.
//!
//! [`Service::handle_line`] is the whole contract: one request line in,
//! one response line out, callable concurrently from any number of
//! transport threads (the `wlp-serve` binary wires it to stdin or a TCP
//! listener).

pub mod cache;
pub mod circuit;
pub mod persist;
pub mod proto;

use cache::{CacheEntry, CacheOutcome, CertCache};
use circuit::{Admission, CircuitBreaker, CircuitPolicy};
use parking_lot::Mutex;
use persist::{PersistError, PersistentStore};
use proto::{codes, ProtoError, ReplyMode, Request, RunRequest};
use serde::{json, Value};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wlp_analyze::CertVerdict;
use wlp_ir::interp::{run_parallel, run_sequential, Machine};
use wlp_obs::{AbortReason, Event, ProfileReport, Sample, StrategyChoice, Trace};
use wlp_runtime::{
    payload_message, Deadline, Governor, GovernorPolicy, Pool, RegionScheduler, SchedulerConfig,
};

pub use cache::fnv1a64;
pub use circuit::CircuitState;
pub use proto::PROTOCOL_VERSION;
pub use wlp_runtime::CancelFlag;

/// Tunables for a [`Service`] instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Total resident workers shared by all regions.
    pub workers: usize,
    /// Workers per region lane (`workers / lane_width` concurrent
    /// regions; see [`SchedulerConfig`]).
    pub lane_width: usize,
    /// Distinct programs the certificate cache holds.
    pub cache_capacity: usize,
    /// Regions one tenant may have admitted at once; more are rejected
    /// `tenant_busy`.
    pub max_inflight_per_tenant: usize,
    /// Shared-queue depth past which *all* runs are rejected
    /// `overloaded`.
    pub max_queue_depth: usize,
    /// Iteration bound when a request does not set `max_iters`.
    pub default_max_iters: usize,
    /// The hint attached to retriable rejections.
    pub retry_after_ms: u64,
    /// Speculation write-budget credits per tenant: a speculative run
    /// reserves its certified write budget up front and returns it on
    /// completion; reservation failure is rejected `budget_exhausted`.
    pub tenant_spec_credits: u64,
    /// Governor policy each tenant's ladder starts from.
    pub governor: GovernorPolicy,
    /// Most obs [`Sample`]s the service retains (a ring: oldest are
    /// dropped past the cap, counted in `samples_dropped`). Without a
    /// bound a resident daemon's event buffer grows with request volume.
    pub max_samples: usize,
    /// Most distinct tenants the table holds; past the cap an idle
    /// tenant is evicted to admit a new name (tenant strings are
    /// client-chosen, so the table must not grow with attacker input).
    pub max_tenants: usize,
    /// Upper clamp on a request's client-supplied `deadline_ms` — a
    /// client cannot buy more wall-clock than the operator allows.
    pub max_deadline_ms: u64,
    /// How long a graceful drain waits for in-flight requests before
    /// the process gives up and exits anyway.
    pub drain_deadline_ms: u64,
    /// Per-tenant circuit-breaker tuning (consecutive hard failures →
    /// open → half-open probes). `trip_threshold: 0` disables it.
    pub circuit: CircuitPolicy,
    /// Register the one-shot `chaos_stall`/`chaos_panic` host functions
    /// on every served machine — **test harnesses only** (the
    /// `serve-chaos` bench bin injects worker faults through them).
    pub chaos_builtins: bool,
    /// Crash-safe certificate persistence (`--state-dir`): `Some` gives
    /// the cache a snapshot + journal on disk and a warm restart; `None`
    /// (the default) keeps the service fully in-memory.
    pub persist: Option<persist::PersistConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            lane_width: 2,
            cache_capacity: 128,
            max_inflight_per_tenant: 2,
            max_queue_depth: 8,
            default_max_iters: 10_000,
            retry_after_ms: 25,
            tenant_spec_credits: 1 << 20,
            governor: GovernorPolicy::default(),
            max_samples: 65_536,
            max_tenants: 1_024,
            max_deadline_ms: 60_000,
            drain_deadline_ms: 5_000,
            circuit: CircuitPolicy::default(),
            chaos_builtins: false,
            persist: None,
        }
    }
}

/// Per-tenant admission and adaptation state.
struct TenantState {
    /// Regions currently admitted (between admission and completion).
    in_flight: AtomicUsize,
    /// Strategy ladder driven by this tenant's abort history.
    governor: Mutex<Governor>,
    /// Remaining speculation write-budget credits.
    credits: AtomicU64,
    /// Requests accounted to this tenant.
    requests: AtomicU64,
    /// Requests rejected at admission.
    rejected: AtomicU64,
    /// Requests that missed their deadline or lost their client.
    timeouts: AtomicU64,
    /// Consecutive-hard-failure circuit breaker, layered above the
    /// governor: an open circuit rejects at admission, before any lane
    /// or credit is touched.
    breaker: Mutex<CircuitBreaker>,
}

impl TenantState {
    fn new(cfg: &ServeConfig) -> Self {
        TenantState {
            in_flight: AtomicUsize::new(0),
            governor: Mutex::new(Governor::new(cfg.governor)),
            credits: AtomicU64::new(cfg.tenant_spec_credits),
            requests: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            breaker: Mutex::new(CircuitBreaker::new(cfg.circuit)),
        }
    }

    /// Tries to reserve `amount` credits; false if the pool is too low.
    fn reserve_credits(&self, amount: u64) -> bool {
        let mut cur = self.credits.load(Ordering::Relaxed);
        loop {
            if cur < amount {
                return false;
            }
            match self.credits.compare_exchange_weak(
                cur,
                cur - amount,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    fn return_credits(&self, amount: u64) {
        self.credits.fetch_add(amount, Ordering::AcqRel);
    }
}

/// The resident service: shared scheduler, certificate cache, tenant
/// table, and observability counters. All methods take `&self` — wrap in
/// an [`Arc`] and call [`handle_line`](Self::handle_line) from as many
/// transport threads as you like.
pub struct Service {
    cfg: ServeConfig,
    scheduler: RegionScheduler,
    cache: CertCache,
    tenants: Mutex<HashMap<String, Arc<TenantState>>>,
    samples: Mutex<VecDeque<Sample>>,
    samples_dropped: AtomicU64,
    epoch: Instant,
    requests: AtomicU64,
    errors: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    timeouts: AtomicU64,
    /// Raised by [`Service::begin_drain`]; while up, new `run` requests
    /// are rejected `draining` and ping reports `"draining":true`.
    draining: AtomicBool,
    /// `run` requests currently between admission and response — what a
    /// graceful drain waits on.
    active: AtomicUsize,
    /// Crash-safe certificate store (`Some` iff `cfg.persist` was set).
    persist: Option<Arc<PersistentStore>>,
}

impl Service {
    /// Builds a service (workers spawn immediately and stay resident).
    ///
    /// Panics if `cfg.persist` names an unusable state dir — daemons that
    /// need the fail-fast one-line error use [`try_new`](Self::try_new).
    pub fn new(cfg: ServeConfig) -> Self {
        Service::try_new(cfg).expect("persistent state dir unusable")
    }

    /// Builds a service, fail-fast-validating `cfg.persist` (missing
    /// parent, non-writable dir, lock held by a live daemon) and warm
    /// restarting the certificate cache from snapshot + journal. With
    /// `persist: None` this cannot fail.
    pub fn try_new(cfg: ServeConfig) -> Result<Self, PersistError> {
        Service::try_new_with_io(cfg, Arc::new(persist::DirectIo))
    }

    /// [`try_new`](Self::try_new) with the persistence I/O seam exposed:
    /// chaos tests pass a [`wlp_fault::FsFaultPlan`] here to inject torn
    /// writes, short writes, bit flips, and fsync errors under the store.
    pub fn try_new_with_io(
        cfg: ServeConfig,
        io: Arc<dyn persist::StateIo>,
    ) -> Result<Self, PersistError> {
        let (persist, recovered) = match cfg.persist.clone() {
            Some(pcfg) => {
                let (store, records) = PersistentStore::open(pcfg, io)?;
                (Some(Arc::new(store)), records)
            }
            None => (None, Vec::new()),
        };
        let scheduler = RegionScheduler::new(SchedulerConfig {
            total_workers: cfg.workers,
            lane_width: cfg.lane_width,
        });
        let cache = CertCache::new(cfg.cache_capacity);
        let svc = Service {
            cfg,
            scheduler,
            cache,
            tenants: Mutex::new(HashMap::new()),
            samples: Mutex::new(VecDeque::new()),
            samples_dropped: AtomicU64::new(0),
            epoch: Instant::now(),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            persist,
        };
        if let Some(store) = svc.persist.clone() {
            // Load every recovered record through the cache's re-analyze
            // + byte-compare gate; refusals are skips, never panics, and
            // never served.
            let mut load_skips = 0u64;
            for rec in &recovered {
                match svc.cache.load_recovered(&rec.source, &rec.cert_line) {
                    Ok(()) => store.note_loaded(),
                    Err(_) => {
                        store.note_skipped();
                        load_skips += 1;
                    }
                }
            }
            let scan_skips = store.skipped_corrupt() - load_skips;
            if scan_skips + load_skips > 0 {
                svc.record(Event::RecoverySkip {
                    records: scan_skips + load_skips,
                });
            }
        }
        Ok(svc)
    }

    /// A service with default tunables.
    pub fn with_defaults() -> Self {
        Service::new(ServeConfig::default())
    }

    /// The configuration this service runs under.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Handles one NDJSON request line, returning the response line
    /// (without trailing newline). Never panics on malformed input —
    /// every failure is a well-formed error response.
    pub fn handle_line(&self, line: &str) -> String {
        self.handle_line_with(line, None)
    }

    /// [`handle_line`](Self::handle_line) with a per-connection cancel
    /// flag. Transports raise the flag when the client goes away (write
    /// error, socket reset); a `run` observing it stops waiting for a
    /// lane, aborts its region, and answers `timeout` — the lane and
    /// speculation credits go back to their pools instead of finishing
    /// work nobody will read.
    pub fn handle_line_with(&self, line: &str, cancel: Option<&Arc<CancelFlag>>) -> String {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let req = match proto::parse_request(line) {
            Ok(req) => req,
            Err(err) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                return proto::error_line(&err, None);
            }
        };
        match req {
            Request::Ping { id } => json::to_string(&ok_response(
                id.as_deref(),
                "ping",
                vec![
                    ("pong".into(), Value::Bool(true)),
                    ("version".into(), Value::UInt(PROTOCOL_VERSION)),
                    (
                        "uptime_ms".into(),
                        Value::UInt(self.epoch.elapsed().as_millis() as u64),
                    ),
                    ("draining".into(), Value::Bool(self.is_draining())),
                ],
            )),
            Request::Stats { id } => json::to_string(&ok_response(
                id.as_deref(),
                "stats",
                vec![("stats".into(), self.stats_value())],
            )),
            Request::Certify { id, tenant, source } => self.certify(id, &tenant, &source),
            Request::Run(run) => self.run(run, cancel),
            Request::Shutdown { id } => {
                self.begin_drain();
                json::to_string(&ok_response(
                    id.as_deref(),
                    "shutdown",
                    vec![
                        ("draining".into(), Value::Bool(true)),
                        (
                            "in_flight".into(),
                            Value::UInt(self.active.load(Ordering::Acquire) as u64),
                        ),
                    ],
                ))
            }
        }
    }

    /// Flips the service into drain mode: new `run` requests are
    /// rejected retriable `draining`, everything already admitted keeps
    /// running. Idempotent; the first call records a [`Event::Drain`].
    pub fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::AcqRel) {
            self.record(Event::Drain {
                in_flight: self.active.load(Ordering::Acquire) as u64,
            });
        }
    }

    /// Whether [`begin_drain`](Self::begin_drain) has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// `run` requests currently between admission and response — what a
    /// graceful drain waits on.
    pub fn active_runs(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Requests that missed their deadline or lost their client.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Blocks until every admitted `run` has answered or `patience`
    /// elapses; `true` means the drain completed clean. Call after
    /// [`begin_drain`](Self::begin_drain).
    pub fn await_drain(&self, patience: Duration) -> bool {
        let give_up = Instant::now() + patience;
        while self.active.load(Ordering::Acquire) > 0 {
            if Instant::now() >= give_up {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// The `certify` op: cache lookup + certificate, no execution, no
    /// admission control (analysis shares the cache, so a hot program
    /// costs a hash lookup).
    fn certify(&self, id: Option<String>, tenant: &str, source: &str) -> String {
        self.tenant(tenant).requests.fetch_add(1, Ordering::Relaxed);
        let (entry, outcome) = match self.lookup(source) {
            Ok(pair) => pair,
            Err(err) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                return proto::error_line(
                    &ProtoError {
                        code: codes::PARSE_ERROR,
                        detail: err,
                        id,
                    },
                    None,
                );
            }
        };
        let cert = &entry.analysis.certificate;
        let fields = vec![
            ("cache".into(), cache_value(outcome)),
            ("program_key".into(), Value::UInt(entry.key)),
            ("verdict".into(), Value::Str(cert.verdict.name().into())),
            ("certificate".into(), serde::Serialize::serialize(cert)),
            ("cert_line".into(), Value::Str(cert.encode_compact())),
            (
                "diagnostics".into(),
                Value::UInt(entry.analysis.diagnostics.len() as u64),
            ),
        ];
        json::to_string(&ok_response(id.as_deref(), "certify", fields))
    }

    /// The `run` op: cache lookup, deadline clamp, admission (drain
    /// state, circuit breaker, in-flight bound, queue depth), lane
    /// checkout bounded by the deadline, execution under the tenant's
    /// governor rung with cancellation threaded into the pool, response
    /// assembly.
    fn run(&self, req: RunRequest, cancel: Option<&Arc<CancelFlag>>) -> String {
        let started = Instant::now();
        let tenant = self.tenant(&req.tenant);
        tenant.requests.fetch_add(1, Ordering::Relaxed);

        let (entry, outcome) = match self.lookup(&req.source) {
            Ok(pair) => pair,
            Err(err) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                return proto::error_line(
                    &ProtoError {
                        code: codes::PARSE_ERROR,
                        detail: err,
                        id: req.id,
                    },
                    None,
                );
            }
        };
        let cert = entry.analysis.certificate.clone();
        let max_iters = req.max_iters.unwrap_or(self.cfg.default_max_iters);
        // The deadline is measured from request parse and clamped so a
        // client cannot buy more wall-clock than the operator allows.
        let expiry = req
            .deadline_ms
            .map(|ms| started + Duration::from_millis(ms.min(self.cfg.max_deadline_ms.max(1))));

        // ---- admission ----
        if self.is_draining() {
            return self.reject(
                &tenant,
                codes::DRAINING,
                "service is draining; retry against another instance".into(),
                req.id,
                Some(self.cfg.retry_after_ms),
            );
        }
        let admission = tenant.breaker.lock().admit();
        if let Admission::Reject { retry_after_ms } = admission {
            return self.reject(
                &tenant,
                codes::TENANT_CIRCUIT_OPEN,
                format!(
                    "circuit open for `{}` after consecutive hard failures",
                    req.tenant
                ),
                req.id,
                Some(retry_after_ms),
            );
        }
        if let Err(err) = self.admit(&tenant, &req) {
            return proto::error_line(&err, Some(self.cfg.retry_after_ms));
        }
        // From here on the tenant holds an in-flight slot and the drain
        // logic counts this request; every exit path must release both.
        let release = InflightGuard { tenant: &tenant };
        let active = ActiveGuard::enter(self);

        // Speculative runs reserve their certified write budget from the
        // tenant's credit pool — the backpressure valve for tenants whose
        // speculation keeps the undo machinery hot.
        let cost = if cert.verdict == CertVerdict::SpeculateBounded {
            cert.write_budget(max_iters as u64).max(1)
        } else {
            0
        };
        if cost > 0 && !tenant.reserve_credits(cost) {
            drop(active);
            drop(release);
            tenant.rejected.fetch_add(1, Ordering::Relaxed);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            self.record(Event::RegionReject { retriable: true });
            self.errors.fetch_add(1, Ordering::Relaxed);
            return proto::error_line(
                &ProtoError {
                    code: codes::BUDGET_EXHAUSTED,
                    detail: format!(
                        "needs {cost} speculation write-budget credits; tenant pool is hot"
                    ),
                    id: req.id,
                },
                Some(self.cfg.retry_after_ms),
            );
        }

        // ---- machine assembly ----
        let mut machine = Machine::default();
        for (name, data) in &req.arrays {
            machine.arrays.insert(name.clone(), data.clone());
        }
        for (name, v) in &req.scalars {
            machine.scalars.insert(name.clone(), *v);
        }
        register_builtins(&mut machine);
        if self.cfg.chaos_builtins {
            register_chaos_builtins(&mut machine);
        }

        // ---- execution on a checked-out lane ----
        let rung = tenant.governor.lock().current();
        let attempt_parallel =
            cert.verdict != CertVerdict::CertifiedSequential && rung != StrategyChoice::Sequential;
        let Some(lane) = self.scheduler.acquire_until(expiry, cancel.map(|c| &**c)) else {
            // Gave up in the lane queue: the deadline expired or the
            // client went away before any work started. The ticket was
            // already handed back to the scheduler; credits and slots
            // follow it here.
            if cost > 0 {
                tenant.return_credits(cost);
            }
            drop(active);
            drop(release);
            let abandoned = cancel.is_some_and(|c| c.is_cancelled());
            return self.timed_out(&tenant, req.id, started, abandoned, true);
        };
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.record(Event::RegionAdmit {
            lane: lane.index() as u64,
        });
        // Compose the lane's pool with this request's deadline and the
        // connection's cancel flag: the pool watchdog converts either
        // into a cooperative region abort, and the speculative executor
        // drains an aborted region through its bounded sequential rerun.
        let mut pool: Pool = (*lane).clone();
        if let Some(e) = expiry {
            pool = pool.with_deadline(Deadline::new(e.saturating_duration_since(Instant::now())));
        }
        if let Some(c) = cancel {
            pool = pool.with_abort(c.clone());
        }
        let caught = catch_unwind(AssertUnwindSafe(|| {
            if attempt_parallel {
                run_parallel(&entry.program, &mut machine, &pool, max_iters)
            } else {
                run_sequential(&entry.program, &mut machine, max_iters)
            }
        }));
        drop(lane);
        if cost > 0 {
            tenant.return_credits(cost);
        }
        drop(active);
        drop(release);

        let result = match caught {
            Ok(result) => result,
            Err(payload) => {
                // A panic escaped the executor (the pool contains worker
                // panics, so in practice this is the sequential path —
                // e.g. a chaos builtin). Lane, credits, and slots are
                // already back; report the hard failure and let the
                // breaker see it.
                if attempt_parallel {
                    tenant
                        .governor
                        .lock()
                        .record_failure(AbortReason::Exception);
                }
                self.breaker_failure(&tenant);
                self.errors.fetch_add(1, Ordering::Relaxed);
                return proto::error_line(
                    &ProtoError {
                        code: codes::EXEC_ERROR,
                        detail: format!("worker panic: {}", payload_message(&payload)),
                        id: req.id,
                    },
                    None,
                );
            }
        };
        let out = match result {
            Ok(out) => out,
            Err(e) => {
                if attempt_parallel {
                    tenant
                        .governor
                        .lock()
                        .record_failure(AbortReason::Exception);
                }
                self.errors.fetch_add(1, Ordering::Relaxed);
                return proto::error_line(
                    &ProtoError {
                        code: codes::EXEC_ERROR,
                        detail: e.msg,
                        id: req.id,
                    },
                    None,
                );
            }
        };
        // A result produced after the deadline (or after the client hung
        // up) is still a timeout: nobody is waiting for the answer, and
        // the contract says expiry ⇒ retriable error.
        let expired = expiry.is_some_and(|e| Instant::now() >= e);
        let abandoned = cancel.is_some_and(|c| c.is_cancelled());
        if expired || abandoned {
            if attempt_parallel {
                tenant.governor.lock().record_failure(AbortReason::Timeout);
            }
            return self.timed_out(&tenant, req.id, started, abandoned, false);
        }
        if attempt_parallel {
            let mut gov = tenant.governor.lock();
            if out.ran_parallel {
                gov.record_success();
            } else {
                // the speculative path fell back (abort or planner
                // conservatism): count it against the tenant's ladder
                gov.record_failure(AbortReason::Dependence);
            }
        }
        if tenant.breaker.lock().record_success() {
            self.record(Event::CircuitTrip { open: false });
        }

        // ---- response ----
        let mut fields = vec![
            ("tenant".into(), Value::Str(req.tenant.clone())),
            ("cache".into(), cache_value(outcome)),
            ("program_key".into(), Value::UInt(entry.key)),
            ("verdict".into(), Value::Str(cert.verdict.name().into())),
            ("rung".into(), Value::Str(rung_name(rung).into())),
            ("iterations".into(), Value::UInt(out.iterations as u64)),
            (
                "exited_at".into(),
                match out.exited_at {
                    Some(i) => Value::UInt(i as u64),
                    None => Value::Null,
                },
            ),
            ("ran_parallel".into(), Value::Bool(out.ran_parallel)),
        ];
        let digests: Vec<(String, Value)> = {
            let mut names: Vec<&String> = machine.arrays.keys().collect();
            names.sort();
            names
                .iter()
                .map(|name| {
                    let data = &machine.arrays[*name];
                    let mut bytes = Vec::with_capacity(data.len() * 8);
                    for x in data {
                        bytes.extend_from_slice(&x.to_le_bytes());
                    }
                    ((*name).clone(), Value::UInt(fnv1a64(&bytes)))
                })
                .collect()
        };
        fields.push(("digests".into(), Value::Object(digests)));
        if req.reply != ReplyMode::Digest {
            let mut names: Vec<&String> = machine.scalars.keys().collect();
            names.sort();
            let scalars: Vec<(String, Value)> = names
                .iter()
                .map(|name| ((*name).clone(), Value::Int(machine.scalars[*name])))
                .collect();
            fields.push(("scalars".into(), Value::Object(scalars)));
        }
        if req.reply == ReplyMode::Full {
            let mut names: Vec<&String> = machine.arrays.keys().collect();
            names.sort();
            let arrays: Vec<(String, Value)> = names
                .iter()
                .map(|name| {
                    (
                        (*name).clone(),
                        Value::Array(
                            machine.arrays[*name]
                                .iter()
                                .map(|&x| Value::Int(x))
                                .collect(),
                        ),
                    )
                })
                .collect();
            fields.push(("arrays".into(), Value::Object(arrays)));
        }
        fields.push((
            "latency_us".into(),
            Value::UInt(started.elapsed().as_micros() as u64),
        ));
        json::to_string(&ok_response(req.id.as_deref(), "run", fields))
    }

    /// Shared pre-admission rejection path: counters, obs event, error
    /// line.
    fn reject(
        &self,
        tenant: &TenantState,
        code: &'static str,
        detail: String,
        id: Option<String>,
        retry_after_ms: Option<u64>,
    ) -> String {
        tenant.rejected.fetch_add(1, Ordering::Relaxed);
        self.rejected.fetch_add(1, Ordering::Relaxed);
        self.record(Event::RegionReject { retriable: true });
        self.errors.fetch_add(1, Ordering::Relaxed);
        proto::error_line(&ProtoError { code, detail, id }, retry_after_ms)
    }

    /// Shared deadline/abandon exit: counters, obs event, breaker
    /// bookkeeping, retriable `timeout` line. `queued` distinguishes
    /// giving up in the lane queue from expiring mid-execution.
    fn timed_out(
        &self,
        tenant: &TenantState,
        id: Option<String>,
        started: Instant,
        abandoned: bool,
        queued: bool,
    ) -> String {
        tenant.timeouts.fetch_add(1, Ordering::Relaxed);
        self.timeouts.fetch_add(1, Ordering::Relaxed);
        self.record(Event::RequestTimeout { queued });
        self.breaker_failure(tenant);
        self.errors.fetch_add(1, Ordering::Relaxed);
        let what = if abandoned {
            "client abandoned the request"
        } else {
            "deadline expired"
        };
        let stage = if queued {
            "waiting for a lane"
        } else {
            "during execution"
        };
        proto::error_line(
            &ProtoError {
                code: codes::TIMEOUT,
                detail: format!("{what} {stage} after {}ms", started.elapsed().as_millis()),
                id,
            },
            Some(self.cfg.retry_after_ms),
        )
    }

    /// Counts a hard failure against the tenant's breaker, recording the
    /// trip event when this one opened the circuit.
    fn breaker_failure(&self, tenant: &TenantState) {
        if tenant.breaker.lock().record_failure() {
            self.record(Event::CircuitTrip { open: true });
        }
    }

    /// Cache lookup + obs accounting; errors are pre-rendered. A miss
    /// minted a fresh certificate, so it is also the journal-append
    /// point: by the time the response leaves, the certificate is on
    /// disk (subject to the fsync batch policy) and survives a crash.
    fn lookup(&self, source: &str) -> Result<(Arc<CacheEntry>, CacheOutcome), String> {
        match self.cache.lookup(source) {
            Ok((entry, outcome)) => {
                self.record(match outcome {
                    CacheOutcome::Hit => Event::CertCacheHit { key: entry.key },
                    CacheOutcome::Miss => Event::CertCacheMiss { key: entry.key },
                });
                if outcome == CacheOutcome::Miss {
                    self.persist_entry(&entry);
                }
                Ok((entry, outcome))
            }
            Err(e) => Err(e.render(source)),
        }
    }

    /// Journals one freshly minted certificate and compacts the journal
    /// when it has outgrown its threshold. Persistence failures are
    /// counted and events recorded; they never fail the request — the
    /// entry is resident either way, it just may not survive a restart.
    fn persist_entry(&self, entry: &CacheEntry) {
        let Some(store) = &self.persist else { return };
        let cert_line = entry.analysis.certificate.encode_compact();
        let out = store.append(&entry.source, &cert_line);
        if out.persisted {
            self.record(Event::JournalAppend { bytes: out.bytes });
        }
        if out.needs_compact {
            // The collection closure runs under the journal lock (see
            // `PersistentStore::compact`), so every record that could be
            // truncated out of the journal is already resident and lands
            // in the snapshot.
            let snapshot = store.compact(|| {
                self.cache
                    .resident_entries()
                    .iter()
                    .map(|e| (e.source.clone(), e.analysis.certificate.encode_compact()))
                    .collect()
            });
            if let Ok(records) = snapshot {
                self.record(Event::SnapshotWrite { records });
            }
        }
    }

    /// Flushes any fsync-batched journal tail (graceful-shutdown path;
    /// no-op without persistence).
    pub fn flush_persist(&self) {
        if let Some(store) = &self.persist {
            store.sync();
        }
    }

    /// The persistent store, when `persist` was configured.
    pub fn persist_store(&self) -> Option<&Arc<PersistentStore>> {
        self.persist.as_ref()
    }

    /// Admission control: per-tenant in-flight bound, then shared queue
    /// depth. On rejection the counters and obs events are recorded.
    fn admit(&self, tenant: &Arc<TenantState>, req: &RunRequest) -> Result<(), ProtoError> {
        let mut cur = tenant.in_flight.load(Ordering::Relaxed);
        loop {
            if cur >= self.cfg.max_inflight_per_tenant {
                tenant.rejected.fetch_add(1, Ordering::Relaxed);
                self.rejected.fetch_add(1, Ordering::Relaxed);
                self.record(Event::RegionReject { retriable: true });
                self.errors.fetch_add(1, Ordering::Relaxed);
                return Err(ProtoError {
                    code: codes::TENANT_BUSY,
                    detail: format!("{cur} regions already in flight for `{}`", req.tenant),
                    id: req.id.clone(),
                });
            }
            match tenant.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        if self.scheduler.waiting() >= self.cfg.max_queue_depth {
            tenant.in_flight.fetch_sub(1, Ordering::AcqRel);
            tenant.rejected.fetch_add(1, Ordering::Relaxed);
            self.rejected.fetch_add(1, Ordering::Relaxed);
            self.record(Event::RegionReject { retriable: true });
            self.errors.fetch_add(1, Ordering::Relaxed);
            return Err(ProtoError {
                code: codes::OVERLOADED,
                detail: format!(
                    "{} regions queued for {} lanes",
                    self.scheduler.waiting(),
                    self.scheduler.lanes()
                ),
                id: req.id.clone(),
            });
        }
        Ok(())
    }

    fn tenant(&self, name: &str) -> Arc<TenantState> {
        let mut tenants = self.tenants.lock();
        if let Some(t) = tenants.get(name) {
            return t.clone();
        }
        if tenants.len() >= self.cfg.max_tenants.max(1) {
            // Tenant names are client-chosen, so the table must stay
            // bounded. Evict an arbitrary idle tenant (its counters,
            // credits, and governor rung reset if it ever returns);
            // tenants with regions in flight are never evicted, so at
            // worst the table holds max_tenants idle + every busy one.
            let idle = tenants
                .iter()
                .find(|(_, t)| t.in_flight.load(Ordering::Acquire) == 0)
                .map(|(name, _)| name.clone());
            if let Some(evict) = idle {
                tenants.remove(&evict);
            }
        }
        tenants
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(TenantState::new(&self.cfg)))
            .clone()
    }

    fn record(&self, event: Event) {
        let mut samples = self.samples.lock();
        while samples.len() >= self.cfg.max_samples.max(1) {
            samples.pop_front();
            self.samples_dropped.fetch_add(1, Ordering::Relaxed);
        }
        samples.push_back(Sample {
            t: self.epoch.elapsed().as_nanos() as u64,
            proc: 0,
            event,
        });
    }

    /// Cache hits so far (also in the `stats` op and [`profile`](Self::profile)).
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Hits over total cache lookups.
    pub fn cache_hit_ratio(&self) -> f64 {
        self.cache.hit_ratio()
    }

    /// A snapshot of the service's event stream as a `wlp-obs`
    /// [`Trace`] (single logical proc; region/cache events only).
    pub fn trace(&self) -> Trace {
        Trace {
            p: 1,
            makespan: self.epoch.elapsed().as_nanos() as u64,
            samples: self.samples.lock().iter().cloned().collect(),
        }
    }

    /// The [`ProfileReport`] over [`trace`](Self::trace): the same
    /// aggregation path every other executor in the repo reports
    /// through, so `cache_hits`/`cache_misses`/`regions_admitted`/
    /// `regions_rejected` land in the standard report.
    pub fn profile(&self) -> ProfileReport {
        ProfileReport::from_trace(&self.trace())
    }

    /// The `stats` payload (also available without a request round-trip).
    pub fn stats_value(&self) -> Value {
        let tenants = self.tenants.lock();
        let mut names: Vec<&String> = tenants.keys().collect();
        names.sort();
        let per_tenant: Vec<(String, Value)> = names
            .iter()
            .map(|name| {
                let t = &tenants[*name];
                let breaker = t.breaker.lock();
                (
                    (*name).clone(),
                    Value::Object(vec![
                        (
                            "requests".into(),
                            Value::UInt(t.requests.load(Ordering::Relaxed)),
                        ),
                        (
                            "rejected".into(),
                            Value::UInt(t.rejected.load(Ordering::Relaxed)),
                        ),
                        (
                            "in_flight".into(),
                            Value::UInt(t.in_flight.load(Ordering::Relaxed) as u64),
                        ),
                        (
                            "credits".into(),
                            Value::UInt(t.credits.load(Ordering::Relaxed)),
                        ),
                        (
                            "rung".into(),
                            Value::Str(rung_name(t.governor.lock().current()).into()),
                        ),
                        (
                            "timeouts".into(),
                            Value::UInt(t.timeouts.load(Ordering::Relaxed)),
                        ),
                        ("circuit".into(), Value::Str(breaker.state().name().into())),
                        ("circuit_trips".into(), Value::UInt(breaker.trips())),
                    ]),
                )
            })
            .collect();
        Value::Object(vec![
            (
                "requests".into(),
                Value::UInt(self.requests.load(Ordering::Relaxed)),
            ),
            (
                "errors".into(),
                Value::UInt(self.errors.load(Ordering::Relaxed)),
            ),
            ("cache_hits".into(), Value::UInt(self.cache.hits())),
            ("cache_misses".into(), Value::UInt(self.cache.misses())),
            (
                "cache_hit_ratio".into(),
                Value::Float(self.cache.hit_ratio()),
            ),
            ("cache_len".into(), Value::UInt(self.cache.len() as u64)),
            (
                "cache_capacity".into(),
                Value::UInt(self.cache.capacity() as u64),
            ),
            (
                "regions_admitted".into(),
                Value::UInt(self.admitted.load(Ordering::Relaxed)),
            ),
            (
                "regions_rejected".into(),
                Value::UInt(self.rejected.load(Ordering::Relaxed)),
            ),
            (
                "regions_run".into(),
                Value::UInt(self.scheduler.regions_run()),
            ),
            ("lanes".into(), Value::UInt(self.scheduler.lanes() as u64)),
            (
                "lanes_free".into(),
                Value::UInt(self.scheduler.free_lanes() as u64),
            ),
            (
                "queue_waiting".into(),
                Value::UInt(self.scheduler.waiting() as u64),
            ),
            (
                "timeouts".into(),
                Value::UInt(self.timeouts.load(Ordering::Relaxed)),
            ),
            (
                "active_runs".into(),
                Value::UInt(self.active.load(Ordering::Acquire) as u64),
            ),
            ("draining".into(), Value::Bool(self.is_draining())),
            (
                "samples_dropped".into(),
                Value::UInt(self.samples_dropped.load(Ordering::Relaxed)),
            ),
            ("persist".into(), {
                let mut fields = vec![("enabled".into(), Value::Bool(self.persist.is_some()))];
                if let Some(store) = &self.persist {
                    fields.extend([
                        ("loaded".into(), Value::UInt(store.loaded())),
                        ("appended".into(), Value::UInt(store.appended())),
                        ("snapshots".into(), Value::UInt(store.snapshots())),
                        (
                            "skipped_corrupt".into(),
                            Value::UInt(store.skipped_corrupt()),
                        ),
                        ("io_errors".into(), Value::UInt(store.io_errors())),
                        ("journal_bytes".into(), Value::UInt(store.journal_bytes())),
                    ]);
                }
                Value::Object(fields)
            }),
            ("tenants".into(), Value::Object(per_tenant)),
        ])
    }
}

/// Releases the tenant's in-flight slot on every exit path.
struct InflightGuard<'a> {
    tenant: &'a Arc<TenantState>,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.tenant.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Counts one `run` in the service's drain-relevant active set between
/// admission and response.
struct ActiveGuard<'a> {
    svc: &'a Service,
}

impl<'a> ActiveGuard<'a> {
    fn enter(svc: &'a Service) -> Self {
        svc.active.fetch_add(1, Ordering::AcqRel);
        ActiveGuard { svc }
    }
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.svc.active.fetch_sub(1, Ordering::AcqRel);
    }
}

fn ok_response(id: Option<&str>, op: &str, rest: Vec<(String, Value)>) -> Value {
    let mut fields = vec![
        ("v".to_string(), Value::UInt(PROTOCOL_VERSION)),
        ("ok".to_string(), Value::Bool(true)),
    ];
    if let Some(id) = id {
        fields.push(("id".to_string(), Value::Str(id.to_string())));
    }
    fields.push(("op".to_string(), Value::Str(op.to_string())));
    fields.extend(rest);
    Value::Object(fields)
}

fn cache_value(outcome: CacheOutcome) -> Value {
    Value::Str(
        match outcome {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
        }
        .into(),
    )
}

fn rung_name(s: StrategyChoice) -> &'static str {
    match s {
        StrategyChoice::Speculative => "speculative",
        StrategyChoice::Windowed => "windowed",
        StrategyChoice::Distribution => "distribution",
        StrategyChoice::Sequential => "sequential",
    }
}

/// The deterministic host functions every served [`Machine`] provides
/// (WHILE programs may call uninterpreted functions like `g(x)`; a
/// service has no way to ship closures over JSON, so these are fixed and
/// documented in `docs/PROTOCOL.md`). All arithmetic wraps.
pub fn register_builtins(machine: &mut Machine) {
    machine.define_fn("f", |args: &[i64]| {
        args.first()
            .copied()
            .unwrap_or(0)
            .wrapping_mul(3)
            .wrapping_add(1)
    });
    machine.define_fn("g", |args: &[i64]| {
        args.first().copied().unwrap_or(0).wrapping_add(7)
    });
    machine.define_fn("h", |args: &[i64]| args.first().copied().unwrap_or(0) >> 1);
    machine.define_fn("abs", |args: &[i64]| {
        args.first().copied().unwrap_or(0).wrapping_abs()
    });
    machine.define_fn("min", |args: &[i64]| {
        args.iter().copied().min().unwrap_or(0)
    });
    machine.define_fn("max", |args: &[i64]| {
        args.iter().copied().max().unwrap_or(0)
    });
}

/// One-shot fault injectors for the chaos harness, registered only when
/// [`ServeConfig::chaos_builtins`] is on. Each fires exactly once per
/// request even across a speculative attempt plus its sequential
/// re-execution (both share the captured flag), so an aborted region's
/// rerun completes and what the harness measures is the service's
/// recovery, not a fault loop.
pub fn register_chaos_builtins(machine: &mut Machine) {
    let stalled = Arc::new(AtomicBool::new(false));
    machine.define_fn("chaos_stall", move |args: &[i64]| {
        if !stalled.swap(true, Ordering::AcqRel) {
            let ms = args.first().copied().unwrap_or(0).clamp(0, 5_000) as u64;
            std::thread::sleep(Duration::from_millis(ms));
        }
        0
    });
    let panicked = Arc::new(AtomicBool::new(false));
    machine.define_fn("chaos_panic", move |args: &[i64]| {
        if !panicked.swap(true, Ordering::AcqRel) {
            panic!("chaos_panic builtin fired");
        }
        args.first().copied().unwrap_or(0)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOUBLE: &str = "integer i = 0\nwhile (i < n) {\n    A[i] = 2 * A[i]\n    i = i + 1\n}";

    fn run_line(tenant: &str, n: i64, a: &[i64]) -> String {
        let items: Vec<String> = a.iter().map(i64::to_string).collect();
        format!(
            r#"{{"op":"run","tenant":"{tenant}","program":{},"arrays":{{"A":[{}]}},"scalars":{{"n":{n}}},"reply":"full"}}"#,
            json::to_string(DOUBLE),
            items.join(",")
        )
    }

    #[test]
    fn ping_and_stats_round_trip() {
        let svc = Service::with_defaults();
        let pong = svc.handle_line(r#"{"op":"ping","id":"p1"}"#);
        assert!(
            pong.contains("\"ok\":true") && pong.contains("\"pong\":true"),
            "{pong}"
        );
        assert!(pong.contains("\"id\":\"p1\""));
        let stats = svc.handle_line(r#"{"op":"stats"}"#);
        assert!(stats.contains("\"cache_hits\":0"), "{stats}");
    }

    #[test]
    fn run_executes_and_second_submission_hits_the_cache() {
        let svc = Service::with_defaults();
        let r1 = svc.handle_line(&run_line("t0", 3, &[1, 2, 3]));
        assert!(r1.contains("\"cache\":\"miss\""), "{r1}");
        assert!(r1.contains("\"arrays\":{\"A\":[2,4,6]}"), "{r1}");
        let r2 = svc.handle_line(&run_line("t0", 3, &[5, 5, 5]));
        assert!(r2.contains("\"cache\":\"hit\""), "{r2}");
        assert!(r2.contains("\"arrays\":{\"A\":[10,10,10]}"), "{r2}");
        assert_eq!((svc.cache_hits(), svc.cache_misses()), (1, 1));
        let report = svc.profile();
        assert_eq!((report.cache_hits, report.cache_misses), (1, 1));
        assert_eq!(report.regions_admitted, 2);
    }

    #[test]
    fn malformed_program_is_a_parse_error_with_a_span() {
        let svc = Service::with_defaults();
        let resp = svc.handle_line(r#"{"op":"run","program":"while (","id":"x"}"#);
        assert!(resp.contains("\"code\":\"parse_error\""), "{resp}");
        assert!(resp.contains("\"id\":\"x\""));
        assert!(resp.contains("error at "), "{resp}");
    }

    #[test]
    fn exec_errors_are_reported_not_panicked() {
        let svc = Service::with_defaults();
        // array A is never supplied
        let resp = svc.handle_line(&format!(
            r#"{{"op":"run","program":{},"scalars":{{"n":3}}}}"#,
            json::to_string(DOUBLE)
        ));
        assert!(resp.contains("\"code\":\"exec_error\""), "{resp}");
    }

    #[test]
    fn budget_exhaustion_rejects_with_retry_hint() {
        let svc = Service::new(ServeConfig {
            tenant_spec_credits: 4,
            ..ServeConfig::default()
        });
        // GATHER_SCATTER-shaped: one uncertain write per iteration, so a
        // 100-iteration bound needs 100 credits against a pool of 4.
        let src = "integer i = 0\nwhile (i < n) {\n    A[idx[i]] = A[idx[i]] + 1\n    i = i + 1\n}";
        let resp = svc.handle_line(&format!(
            r#"{{"op":"run","program":{},"arrays":{{"A":[0,0],"idx":[0,1]}},"scalars":{{"n":2}},"max_iters":100}}"#,
            json::to_string(src)
        ));
        assert!(resp.contains("\"code\":\"budget_exhausted\""), "{resp}");
        assert!(resp.contains("\"retry_after_ms\":25"), "{resp}");
        // the slot was released: a cheap certified program still runs
        let ok = svc.handle_line(&run_line("anon", 2, &[1, 1]));
        assert!(ok.contains("\"ok\":true"), "{ok}");
    }

    #[test]
    fn sample_buffer_and_tenant_table_stay_bounded() {
        let svc = Service::new(ServeConfig {
            max_samples: 4,
            max_tenants: 2,
            ..ServeConfig::default()
        });
        for i in 0..16 {
            // 16 distinct client-chosen tenant names, each a real run
            // (every run records admit + cache events)
            let ok = svc.handle_line(&run_line(&format!("t{i}"), 2, &[1, 1]));
            assert!(ok.contains("\"ok\":true"), "{ok}");
        }
        assert!(
            svc.trace().samples.len() <= 4,
            "sample ring overran its cap"
        );
        assert!(
            svc.tenants.lock().len() <= 2,
            "tenant table overran its cap"
        );
        let stats = svc.handle_line(r#"{"op":"stats"}"#);
        assert!(stats.contains("\"samples_dropped\":"), "{stats}");
    }

    /// A unique scratch state dir, removed on drop.
    struct TempStateDir(std::path::PathBuf);

    impl TempStateDir {
        fn new(tag: &str) -> TempStateDir {
            let dir = std::env::temp_dir()
                .join(format!("wlp-serve-persist-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("create temp dir");
            TempStateDir(dir)
        }
    }

    impl Drop for TempStateDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn persist_config(dir: &std::path::Path) -> ServeConfig {
        ServeConfig {
            persist: Some(persist::PersistConfig::at(dir)),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn persist_stats_report_disabled_without_a_state_dir() {
        let svc = Service::with_defaults();
        let stats = svc.handle_line(r#"{"op":"stats"}"#);
        assert!(stats.contains("\"persist\":{\"enabled\":false}"), "{stats}");
    }

    #[test]
    fn warm_restart_recovers_the_cache_and_first_lookup_hits() {
        let t = TempStateDir::new("warm");
        {
            let cold = Service::new(persist_config(&t.0));
            let r = cold.handle_line(&run_line("t0", 3, &[1, 2, 3]));
            assert!(r.contains("\"cache\":\"miss\""), "{r}");
            let stats = cold.handle_line(r#"{"op":"stats"}"#);
            assert!(stats.contains("\"enabled\":true"), "{stats}");
            assert!(stats.contains("\"appended\":1"), "{stats}");
            assert!(stats.contains("\"loaded\":0"), "{stats}");
        } // drop releases the LOCK, as a graceful shutdown would
        let warm = Service::new(persist_config(&t.0));
        let r = warm.handle_line(&run_line("t0", 3, &[4, 5, 6]));
        assert!(
            r.contains("\"cache\":\"hit\""),
            "warm restart must serve the first submission from recovered state: {r}"
        );
        assert!(r.contains("\"arrays\":{\"A\":[8,10,12]}"), "{r}");
        let stats = warm.handle_line(r#"{"op":"stats"}"#);
        assert!(stats.contains("\"loaded\":1"), "{stats}");
        assert!(stats.contains("\"skipped_corrupt\":0"), "{stats}");
    }

    #[test]
    fn corrupted_journal_costs_a_miss_never_a_panic_or_wrong_answer() {
        let t = TempStateDir::new("corrupt");
        {
            let cold = Service::new(persist_config(&t.0));
            cold.handle_line(&run_line("t0", 3, &[1, 2, 3]));
        }
        // flip a payload bit in the only journal record
        let journal = t.0.join(persist::JOURNAL_FILE);
        let mut bytes = std::fs::read(&journal).unwrap();
        bytes[20] ^= 0x01;
        std::fs::write(&journal, &bytes).unwrap();
        let warm = Service::new(persist_config(&t.0));
        let r = warm.handle_line(&run_line("t0", 3, &[1, 2, 3]));
        assert!(r.contains("\"cache\":\"miss\""), "{r}");
        assert!(r.contains("\"arrays\":{\"A\":[2,4,6]}"), "{r}");
        let stats = warm.handle_line(r#"{"op":"stats"}"#);
        assert!(stats.contains("\"skipped_corrupt\":1"), "{stats}");
        assert_eq!(warm.profile().recovery_skips, 1);
    }

    #[test]
    fn unusable_state_dir_fails_fast_with_one_line_error() {
        let t = TempStateDir::new("fail-fast");
        let bogus = t.0.join("no-such-parent").join("state");
        let err = Service::try_new(persist_config(&bogus))
            .err()
            .expect("must refuse to boot");
        let line = err.to_string();
        assert!(!line.contains('\n'), "one-line error: {line:?}");
        assert!(line.contains("parent directory"), "{line}");
    }

    #[test]
    fn injected_fsync_errors_never_fail_requests() {
        let t = TempStateDir::new("sync-fault");
        let io = Arc::new(wlp_fault::FsFaultPlan::at(
            wlp_fault::FsFaultKind::SyncError,
            0,
            0,
        ));
        let svc = Service::try_new_with_io(persist_config(&t.0), io).expect("open");
        let r = svc.handle_line(&run_line("t0", 2, &[1, 1]));
        assert!(r.contains("\"ok\":true"), "{r}");
        let stats = svc.handle_line(r#"{"op":"stats"}"#);
        assert!(stats.contains("\"io_errors\":1"), "{stats}");
    }

    fn chaos_config() -> ServeConfig {
        ServeConfig {
            chaos_builtins: true,
            circuit: circuit::CircuitPolicy {
                trip_threshold: 2,
                open_ms: 60,
                half_open_probes: 1,
            },
            ..ServeConfig::default()
        }
    }

    /// A stall program: the one-shot `chaos_stall` sleeps `stall` ms on
    /// its first call, so any deadline below that expires mid-execution.
    fn stall_line(tenant: &str, stall: u64, deadline_ms: u64) -> String {
        let src = format!(
            "integer i = 0\nwhile (i < n) {{\n    A[i] = chaos_stall({stall})\n    i = i + 1\n}}"
        );
        format!(
            r#"{{"op":"run","tenant":"{tenant}","program":{},"arrays":{{"A":[0,0]}},"scalars":{{"n":2}},"deadline_ms":{deadline_ms}}}"#,
            json::to_string(&src)
        )
    }

    fn assert_no_leaks(svc: &Service) {
        let stats = svc.handle_line(r#"{"op":"stats"}"#);
        let lanes = svc.scheduler.lanes();
        assert!(
            stats.contains(&format!("\"lanes_free\":{lanes}")),
            "leaked a lane: {stats}"
        );
        assert!(stats.contains("\"queue_waiting\":0"), "{stats}");
        assert!(stats.contains("\"active_runs\":0"), "{stats}");
    }

    #[test]
    fn deadline_expiry_is_a_retriable_timeout_and_leaks_nothing() {
        let svc = Service::new(chaos_config());
        let resp = svc.handle_line(&stall_line("slow", 80, 20));
        assert!(resp.contains("\"code\":\"timeout\""), "{resp}");
        assert!(resp.contains("\"retry_after_ms\":"), "{resp}");
        assert!(resp.contains("deadline expired"), "{resp}");
        assert_eq!(svc.timeouts(), 1);
        assert_no_leaks(&svc);
        // credits and slots are back: the same tenant runs again at once
        let ok = svc.handle_line(&run_line("slow", 2, &[1, 1]));
        assert!(ok.contains("\"ok\":true"), "{ok}");
        let report = svc.profile();
        assert_eq!(report.request_timeouts, 1);
    }

    #[test]
    fn abandoned_client_gets_timeout_and_lane_returns() {
        let svc = Service::new(chaos_config());
        let cancel = Arc::new(CancelFlag::new());
        cancel.cancel(); // the client is already gone
        let resp = svc.handle_line_with(&run_line("gone", 2, &[1, 1]), Some(&cancel));
        assert!(resp.contains("\"code\":\"timeout\""), "{resp}");
        assert!(resp.contains("client abandoned"), "{resp}");
        assert_no_leaks(&svc);
    }

    #[test]
    fn consecutive_timeouts_trip_the_tenant_circuit_then_it_recovers() {
        let svc = Service::new(chaos_config());
        for _ in 0..2 {
            let resp = svc.handle_line(&stall_line("flappy", 50, 10));
            assert!(resp.contains("\"code\":\"timeout\""), "{resp}");
        }
        // circuit is open: rejected before any lane or credit is touched
        let resp = svc.handle_line(&run_line("flappy", 2, &[1, 1]));
        assert!(resp.contains("\"code\":\"tenant_circuit_open\""), "{resp}");
        assert!(resp.contains("\"retry_after_ms\":"), "{resp}");
        let stats = svc.handle_line(r#"{"op":"stats"}"#);
        assert!(stats.contains("\"circuit\":\"open\""), "{stats}");
        assert!(stats.contains("\"circuit_trips\":1"), "{stats}");
        // other tenants are unaffected
        let ok = svc.handle_line(&run_line("steady", 2, &[1, 1]));
        assert!(ok.contains("\"ok\":true"), "{ok}");
        // after the open interval a probe closes the circuit again
        std::thread::sleep(Duration::from_millis(70));
        let ok = svc.handle_line(&run_line("flappy", 2, &[1, 1]));
        assert!(ok.contains("\"ok\":true"), "{ok}");
        let stats = svc.handle_line(r#"{"op":"stats"}"#);
        assert!(stats.contains("\"circuit\":\"closed\""), "{stats}");
        let report = svc.profile();
        assert_eq!(report.circuit_trips, 1);
        assert_no_leaks(&svc);
    }

    #[test]
    fn chaos_panic_is_contained_and_counts_as_a_hard_failure() {
        let svc = Service::new(chaos_config());
        // x is loop-carried, so the verdict is sequential and the panic
        // fires on the inline path — catch_unwind must contain it.
        let src = "integer i = 0\nwhile (i < n) {\n    x = chaos_panic(x)\n    i = i + 1\n}";
        let resp = svc.handle_line(&format!(
            r#"{{"op":"run","tenant":"boom","program":{},"scalars":{{"n":3,"x":1}}}}"#,
            json::to_string(src)
        ));
        assert!(resp.contains("\"code\":\"exec_error\""), "{resp}");
        assert!(resp.contains("panic"), "{resp}");
        assert_no_leaks(&svc);
        // the service survives and still answers
        let ok = svc.handle_line(&run_line("boom", 2, &[1, 1]));
        assert!(ok.contains("\"ok\":true"), "{ok}");
    }

    #[test]
    fn shutdown_drains_gracefully_and_ping_reports_it() {
        let svc = Service::with_defaults();
        let pong = svc.handle_line(r#"{"op":"ping"}"#);
        assert!(pong.contains("\"draining\":false"), "{pong}");
        assert!(pong.contains("\"uptime_ms\":"), "{pong}");
        assert!(pong.contains("\"version\":1"), "{pong}");
        let resp = svc.handle_line(r#"{"op":"shutdown","id":"bye"}"#);
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert!(resp.contains("\"draining\":true"), "{resp}");
        // new runs are rejected retriable while draining
        let rej = svc.handle_line(&run_line("late", 2, &[1, 1]));
        assert!(rej.contains("\"code\":\"draining\""), "{rej}");
        assert!(rej.contains("\"retry_after_ms\":"), "{rej}");
        // ping and stats still work so probes can watch the drain
        let pong = svc.handle_line(r#"{"op":"ping"}"#);
        assert!(pong.contains("\"draining\":true"), "{pong}");
        assert!(svc.await_drain(Duration::from_millis(100)), "idle drain");
        let report = svc.profile();
        assert_eq!(report.drains, 1);
    }

    #[test]
    fn deadline_clamp_keeps_the_operator_in_charge() {
        let svc = Service::new(ServeConfig {
            max_deadline_ms: 30,
            chaos_builtins: true,
            ..ServeConfig::default()
        });
        // the client asks for 10 s but the operator caps at 30 ms; the
        // 80 ms stall therefore still times out
        let resp = svc.handle_line(&stall_line("greedy", 80, 10_000));
        assert!(resp.contains("\"code\":\"timeout\""), "{resp}");
        assert_no_leaks(&svc);
    }

    #[test]
    fn certify_returns_the_certificate_without_running() {
        let svc = Service::with_defaults();
        let resp = svc.handle_line(&format!(
            r#"{{"op":"certify","program":{}}}"#,
            json::to_string(DOUBLE)
        ));
        assert!(resp.contains("\"verdict\":\"certified_doall\""), "{resp}");
        assert!(resp.contains("cert-v1;"), "{resp}");
        assert_eq!(svc.cache_misses(), 1);
    }
}
