//! MA28 `MA30AD` loops 270 and 320: cooperative Markowitz pivot search
//! with sequential consistency (Figures 12–14).
//!
//! MA28 is a *sequential* solver, so its parallelization must return
//! exactly the pivot the sequential code would pick. The paper's recipe:
//! privatize the per-processor best pivots, time-stamp them with their
//! candidate position, and after the loop perform a **time-stamp-ordered
//! minimum reduction** — smallest Markowitz cost, ties broken by the
//! earliest candidate. Loop 270 searches candidate *rows* (fewest active
//! entries first), loop 320 candidate *columns*; both exit early when a
//! cost-0 pivot (a singleton) appears, making them DO loops with
//! conditional exits. Taxonomy: induction dispatcher, RV terminator,
//! backups + time-stamps.

use crate::mcsparse::{best_in_col, column_rows};
use std::sync::atomic::{AtomicU64, Ordering};
use wlp_core::induction::InductionOutcome;
use wlp_runtime::{doall_dynamic, Pool, Step};
use wlp_sim::spec::TerminatorKind;
use wlp_sim::{ExecConfig, LoopSpec, Overheads};
use wlp_sparse::{best_in_row, EliminationWork, Pivot};

/// A pivot tagged with the candidate position that produced it — the
/// "time-stamp" of the reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StampedPivot {
    /// Candidate index in search order.
    pub stamp: usize,
    /// The pivot found there.
    pub pivot: Pivot,
}

fn better(a: &StampedPivot, b: &StampedPivot) -> bool {
    // smaller cost wins; ties go to the earlier candidate (sequential
    // consistency)
    (a.pivot.cost, a.stamp) < (b.pivot.cost, b.stamp)
}

/// Candidate rows in MA30AD order (fewest active entries first).
pub fn candidate_rows(work: &EliminationWork) -> Vec<usize> {
    wlp_sparse::markowitz::candidate_rows(work)
}

/// Candidate columns in MA30AD order (fewest entries first).
pub fn candidate_cols(work: &EliminationWork) -> Vec<usize> {
    let mut cols: Vec<usize> = (0..work.n()).filter(|&j| work.is_col_active(j)).collect();
    cols.sort_by_key(|&j| (work.col_count(j), j));
    cols
}

/// Generic sequential search with the cost-0 conditional exit: the WHILE
/// loop the paper parallelizes. Returns the chosen pivot and the number
/// of candidates examined.
pub fn search_sequential(
    candidates: &[usize],
    eval: impl Fn(usize) -> Option<Pivot>,
) -> (Option<StampedPivot>, usize) {
    let mut best: Option<StampedPivot> = None;
    for (k, &cand) in candidates.iter().enumerate() {
        if let Some(p) = eval(cand) {
            let sp = StampedPivot { stamp: k, pivot: p };
            if best.as_ref().is_none_or(|b| better(&sp, b)) {
                best = Some(sp);
            }
            if p.cost == 0 {
                return (best, k + 1); // conditional exit
            }
        }
    }
    let n = candidates.len();
    (best, n)
}

/// Generic parallel search: Induction-2 DOALL over the candidates with
/// per-processor privatized bests and the time-stamp-ordered minimum
/// reduction. Exactly reproduces the sequential answer (see module docs
/// for why overshoot cannot change the winner).
pub fn search_parallel(
    pool: &Pool,
    candidates: &[usize],
    eval: impl Fn(usize) -> Option<Pivot> + Sync,
) -> (Option<StampedPivot>, InductionOutcome) {
    let p = pool.size();
    let locals: Vec<parking_lot::Mutex<Option<StampedPivot>>> =
        (0..p).map(|_| parking_lot::Mutex::new(None)).collect();
    let executed = AtomicU64::new(0);

    let out = doall_dynamic(pool, candidates.len(), |k, vpn| {
        executed.fetch_add(1, Ordering::Relaxed);
        if let Some(piv) = eval(candidates[k]) {
            let sp = StampedPivot {
                stamp: k,
                pivot: piv,
            };
            let mut local = locals[vpn].lock();
            if local.as_ref().is_none_or(|b| better(&sp, b)) {
                *local = Some(sp);
            }
            if piv.cost == 0 {
                return Step::Quit;
            }
        }
        Step::Continue
    });

    // time-stamp-ordered minimum reduction over the privatized pivots
    let best = locals.into_iter().filter_map(|m| m.into_inner()).fold(
        None,
        |acc: Option<StampedPivot>, sp| match acc {
            Some(b) if better(&b, &sp) => Some(b),
            _ => Some(sp),
        },
    );

    (
        best,
        InductionOutcome {
            last_valid: out.quit,
            executed: executed.load(Ordering::Relaxed),
            max_started: out.max_started,
            panic: out.panic,
        },
    )
}

/// MA28's pre-phase: eliminate singleton rows (cost-0 pivots) outright, so
/// loops 270/320 run on a workspace where a real search is needed. Returns
/// the number of singletons eliminated.
pub fn pre_eliminate_singletons(work: &mut EliminationWork, u: f64) -> usize {
    let mut eliminated = 0;
    loop {
        let next = work
            .active_rows()
            .find(|&r| work.row_count(r) == 1)
            .and_then(|r| best_in_row(work, r, u));
        match next {
            Some(p) if p.cost == 0 => {
                work.eliminate(p.row, p.col);
                eliminated += 1;
            }
            _ => return eliminated,
        }
    }
}

/// The MA30AD scan-length rule: rows are searched in increasing-count
/// order, and the scan stops once the best cost found so far cannot be
/// beaten by the next count class (`best ≤ (nz − 1)²` where `nz` is the
/// next candidate's count). Returns how many candidates the sequential
/// loop examines — the iteration space the parallelization gets to
/// overlap, and the "available parallelism" that differs per input.
pub fn class_bound_scan_length(
    candidates: &[usize],
    count_of: impl Fn(usize) -> u32,
    eval: impl Fn(usize) -> Option<Pivot>,
) -> usize {
    let mut best: Option<u64> = None;
    for (k, &cand) in candidates.iter().enumerate() {
        if let Some(b) = best {
            let nz = count_of(cand).max(1) as u64;
            if b <= (nz - 1) * (nz - 1) {
                return k;
            }
        }
        if let Some(p) = eval(cand) {
            best = Some(best.map_or(p.cost, |b| b.min(p.cost)));
            if p.cost == 0 {
                return k + 1;
            }
        }
    }
    candidates.len()
}

/// Loop 270 (row search), sequential reference.
pub fn loop270_sequential(work: &EliminationWork, u: f64) -> (Option<StampedPivot>, usize) {
    let rows = candidate_rows(work);
    search_sequential(&rows, |r| best_in_row(work, r, u))
}

/// Loop 270 (row search), parallel.
pub fn loop270_parallel(
    pool: &Pool,
    work: &EliminationWork,
    u: f64,
) -> (Option<StampedPivot>, InductionOutcome) {
    let rows = candidate_rows(work);
    search_parallel(pool, &rows, |r| best_in_row(work, r, u))
}

/// Loop 320 (column search), sequential reference.
pub fn loop320_sequential(work: &EliminationWork, u: f64) -> (Option<StampedPivot>, usize) {
    let cols = candidate_cols(work);
    let colmap = column_rows(work);
    search_sequential(&cols, |j| best_in_col(work, &colmap, j, u))
}

/// Loop 320 (column search), parallel.
pub fn loop320_parallel(
    pool: &Pool,
    work: &EliminationWork,
    u: f64,
) -> (Option<StampedPivot>, InductionOutcome) {
    let cols = candidate_cols(work);
    let colmap = column_rows(work);
    search_parallel(pool, &cols, |j| best_in_col(work, &colmap, j, u))
}

/// Simulator view of a pivot-search loop: candidate-evaluation bodies
/// sized by each candidate's entry count, RV cost-0 exit at `exit_at`
/// (from the sequential reference), backups + time-stamps per Table 2.
pub fn sim_spec(
    candidate_lens: Vec<u64>,
    exit_at: Option<usize>,
) -> (LoopSpec, Overheads, ExecConfig) {
    let n = candidate_lens.len();
    let mut spec = LoopSpec::uniform(n, 0)
        .with_work(move |i| 10 + 7 * candidate_lens[i])
        .with_accesses(|_| 1, |_| 3);
    if let Some(e) = exit_at {
        spec = spec.with_exit(e, TerminatorKind::RemainderVariant);
    }
    // the backed-up state is the privatized pivot accumulators (a handful
    // of scalars per processor), not the matrix — MA28's "backups and
    // time-stamps" row is cheap in memory but still on the critical path
    (spec, Overheads::default(), ExecConfig::with_undo(64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlp_sparse::gen::{gemat_like, stencil7};

    fn stencil_work() -> EliminationWork {
        EliminationWork::from_csr(&stencil7(7, 7, 3, 9))
    }

    fn gemat_work() -> EliminationWork {
        EliminationWork::from_csr(&gemat_like(400, 2600, 4))
    }

    #[test]
    fn loop270_parallel_is_sequentially_consistent() {
        for work in [stencil_work(), gemat_work()] {
            let (seq, _) = loop270_sequential(&work, 0.1);
            let pool = Pool::new(4);
            let (par, _) = loop270_parallel(&pool, &work, 0.1);
            assert_eq!(seq, par, "parallel must return the sequential pivot");
            assert!(seq.is_some());
        }
    }

    #[test]
    fn loop320_parallel_is_sequentially_consistent() {
        for work in [stencil_work(), gemat_work()] {
            let (seq, _) = loop320_sequential(&work, 0.1);
            let pool = Pool::new(4);
            let (par, _) = loop320_parallel(&pool, &work, 0.1);
            assert_eq!(seq, par);
            assert!(seq.is_some());
        }
    }

    #[test]
    fn consistency_holds_across_elimination_steps() {
        let mut work = stencil_work();
        let pool = Pool::new(4);
        for step in 0..15 {
            let (seq, _) = loop270_sequential(&work, 0.1);
            let (par, _) = loop270_parallel(&pool, &work, 0.1);
            assert_eq!(seq, par, "step {step}");
            let p = seq.unwrap().pivot;
            work.eliminate(p.row, p.col);
        }
    }

    #[test]
    fn gemat_rows_have_singletons_causing_early_exit() {
        // GEMAT-class matrices have rows of count 1-2, so the cost-0 exit
        // usually fires early — the conditional exit that makes this a
        // WHILE loop
        let work = gemat_work();
        let (seq, examined) = loop270_sequential(&work, 0.01);
        assert!(seq.is_some());
        if seq.unwrap().pivot.cost == 0 {
            assert!(examined < work.n(), "exit must curb the scan");
        }
    }

    #[test]
    fn parallel_overshoot_does_not_change_the_winner() {
        // run with many pools; the winner must be identical every time
        let work = gemat_work();
        let (reference, _) = loop270_sequential(&work, 0.1);
        for p in [1, 2, 3, 8] {
            let pool = Pool::new(p);
            let (par, _) = loop270_parallel(&pool, &work, 0.1);
            assert_eq!(par, reference, "p = {p}");
        }
    }

    #[test]
    fn candidate_orders_are_by_count() {
        let work = stencil_work();
        let rows = candidate_rows(&work);
        for w in rows.windows(2) {
            assert!(
                (work.row_count(w[0]), w[0]) <= (work.row_count(w[1]), w[1]),
                "rows must be sorted by (count, index)"
            );
        }
        let cols = candidate_cols(&work);
        for w in cols.windows(2) {
            assert!((work.col_count(w[0]), w[0]) <= (work.col_count(w[1]), w[1]));
        }
    }

    #[test]
    fn empty_candidates() {
        let (best, examined) = search_sequential(&[], |_| None);
        assert!(best.is_none());
        assert_eq!(examined, 0);
        let pool = Pool::new(2);
        let (best, out) = search_parallel(&pool, &[], |_| None);
        assert!(best.is_none());
        assert_eq!(out.executed, 0);
    }
}
