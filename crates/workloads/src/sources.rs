//! WHILE-source forms of representative loops, certified end to end.
//!
//! Each constant is a loop the front-end can parse; [`certify`] runs the
//! static analysis over it and [`certified_config`] translates the
//! resulting [`SafetyCertificate`] into the simulator's [`ExecConfig`] —
//! the point where a static proof actually removes run-time machinery:
//!
//! * certified-DOALL + remainder-invariant exit → no backups, no stamps,
//!   no PD shadow (the loop runs as a plain DOALL);
//! * certified-DOALL + remainder-variant exit → overshoot undo only,
//!   the PD test is dropped;
//! * speculate-bounded → full PD machinery, but the undo budget is the
//!   certified bound (uncertain writes only), not the naive every-write
//!   one.

use wlp_analyze::{analyze, Analysis, CertVerdict, SafetyCertificate};
use wlp_core::taxonomy::TerminatorClass;
use wlp_ir::frontend::parse_loop;
use wlp_sim::ExecConfig;

/// Figure 5(b): the even/odd element swap through a temporary. The
/// temporary's carried dependences make the baseline plan sequential;
/// privatization certifies the loop as a DOALL.
pub const SWAP: &str = "integer i = 1\n\
integer tmp = 0\n\
while (i < n) {\n\
    tmp = A[2 * i]\n\
    A[2 * i] = A[2 * i - 1]\n\
    A[2 * i - 1] = tmp\n\
    i = i + 1\n\
}";

/// Mixed-certainty gather/scatter: the dense `B[i]` write is statically
/// certified (and `B` privatizes), only the indirect `A[idx[i]]` update
/// needs shadowing — the certificate halves the undo budget.
pub const GATHER_SCATTER: &str = "integer i = 0\n\
while (i < n) {\n\
    B[i] = 2 * w[i]\n\
    A[idx[i]] = A[idx[i]] + B[i]\n\
    i = i + 1\n\
}";

/// A counting reduction riding along a dense DOALL: `s` is an associative
/// accumulator read nowhere else, so the whole loop still certifies.
pub const COUNTED_FILL: &str = "integer i = 0\n\
integer s = 0\n\
while (i < n) {\n\
    s = s + 3\n\
    A[i] = w[i]\n\
    i = i + 1\n\
}";

/// TRACK-shaped error exit: independent iterations with a data-dependent
/// `exit if` — certified DOALL, but the remainder-variant terminator keeps
/// the overshoot-undo machinery.
pub const GUARDED_UPDATE: &str = "integer i = 0\n\
while (i < n) {\n\
    A[i] = g(A[i])\n\
    exit if (A[i] > limit)\n\
    i = i + 1\n\
}";

/// Figure 5(c): a first-order array recurrence — certified sequential,
/// speculation would abort deterministically.
pub const PARTIAL_SUMS: &str = "integer i = 1\n\
while (i < n) {\n\
    A[i] = A[i] + A[i - 1]\n\
    i = i + 1\n\
}";

/// A producer/consumer wavefront: the `B` recurrence is provably
/// sequential, but the `C` statement only reads `B[i-1]` — fission cuts
/// the loop into a sequential stage feeding a DOALL stage across one
/// distance-1 DOACROSS edge.
pub const WAVEFRONT: &str = "integer i = 1\n\
while (i < n) {\n\
    B[i] = B[i - 1] + w[i]\n\
    C[i] = B[i - 1] + 3\n\
    i = i + 1\n\
}";

/// MCSPARSE-shaped recurrence pair: two independent first-order
/// recurrences (`A`, `B`) plus a consumer of `A[i-1]` — the fission plan
/// fuses the recurrences into one sequential block and recovers the
/// consumer as a parallel sibling behind a DOACROSS edge.
pub const MCSPARSE_PAIR: &str = "integer i = 1\n\
while (i < n) {\n\
    A[i] = A[i - 1] + w[i]\n\
    B[i] = B[i - 1] * 2\n\
    C[i] = A[i - 1] + w[i]\n\
    i = i + 1\n\
}";

/// The named corpus the `wlp-serve` replay harness, smoke tests, and CI
/// draw from: every source constant in this module under a stable name.
pub fn corpus() -> Vec<(&'static str, &'static str)> {
    vec![
        ("swap", SWAP),
        ("gather_scatter", GATHER_SCATTER),
        ("counted_fill", COUNTED_FILL),
        ("guarded_update", GUARDED_UPDATE),
        ("partial_sums", PARTIAL_SUMS),
        ("wavefront", WAVEFRONT),
        ("mcsparse_pair", MCSPARSE_PAIR),
    ]
}

/// The `(arrays, scalars)` initial state a serve request supplies:
/// named integer arrays and named scalars.
pub type MachineInputs = (Vec<(String, Vec<i64>)>, Vec<(String, i64)>);

/// Canonical machine inputs for one corpus program at problem size `n`:
/// the `(arrays, scalars)` a serve request must supply for the loop to
/// run to completion. Deterministic in `(name, n)` so replayed traffic
/// is reproducible.
///
/// # Panics
/// On an unknown corpus name — callers enumerate [`corpus`].
pub fn machine_inputs(name: &str, n: usize) -> MachineInputs {
    let ni = n as i64;
    let fill = |len: usize, f: fn(usize) -> i64| (0..len).map(f).collect::<Vec<i64>>();
    match name {
        "swap" => (
            vec![("A".into(), fill(2 * n + 1, |i| (i as i64 * 3) % 17))],
            vec![("n".into(), ni)],
        ),
        "gather_scatter" => {
            let len = n.max(1);
            // a permutation keeps the indirect updates conflict-free, so
            // the speculative path commits
            let idx = (0..len).map(|i| ((i * 7 + 3) % len) as i64).collect();
            (
                vec![
                    ("A".into(), fill(len, |i| i as i64 % 11)),
                    ("B".into(), vec![0; len]),
                    ("w".into(), fill(len, |i| i as i64 % 7)),
                    ("idx".into(), idx),
                ],
                vec![("n".into(), ni)],
            )
        }
        "counted_fill" => (
            vec![
                ("A".into(), vec![0; n.max(1)]),
                ("w".into(), fill(n.max(1), |i| i as i64 % 13)),
            ],
            vec![("n".into(), ni)],
        ),
        "guarded_update" => (
            vec![("A".into(), fill(n.max(1), |i| i as i64 % 5))],
            vec![("n".into(), ni), ("limit".into(), 9)],
        ),
        "partial_sums" => (
            vec![("A".into(), vec![1; n.max(1)])],
            vec![("n".into(), ni)],
        ),
        "wavefront" => (
            vec![
                ("B".into(), vec![0; n.max(1)]),
                ("C".into(), vec![0; n.max(1)]),
                ("w".into(), fill(n.max(1), |i| i as i64 % 7)),
            ],
            vec![("n".into(), ni)],
        ),
        "mcsparse_pair" => (
            vec![
                ("A".into(), vec![0; n.max(1)]),
                ("B".into(), vec![1; n.max(1)]),
                ("C".into(), vec![0; n.max(1)]),
                ("w".into(), fill(n.max(1), |i| i as i64 % 7)),
            ],
            vec![("n".into(), ni)],
        ),
        other => panic!("unknown corpus program `{other}`"),
    }
}
///
/// # Panics
/// On parse errors — the sources are compile-time constants, so failure
/// to parse is a bug in this crate, not an input condition.
pub fn certify(src: &str) -> Analysis {
    analyze(&parse_loop(src).expect("workload source parses"))
}

/// The execution machinery a certificate prescribes for an `iters`-long
/// run, as a simulator [`ExecConfig`].
pub fn certified_config(cert: &SafetyCertificate, iters: u64) -> ExecConfig {
    match cert.verdict {
        // one lane, no speculation state to configure
        CertVerdict::CertifiedSequential => ExecConfig::default(),
        CertVerdict::CertifiedDoall => {
            if cert.terminator == TerminatorClass::RemainderVariant {
                // independent iterations but a data-dependent exit:
                // overshot iterations must be undone, nothing is shadowed
                ExecConfig::with_undo(cert.naive_write_budget(iters))
            } else {
                ExecConfig::default()
            }
        }
        CertVerdict::SpeculateBounded => ExecConfig::with_pd(cert.naive_write_budget(iters))
            .with_write_budget(cert.write_budget(iters).max(1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlp_ir::plan::StrategyKind;
    use wlp_runtime::GovernorPolicy;

    #[test]
    fn swap_is_replanned_from_sequential_to_doall() {
        let a = certify(SWAP);
        // before: the carried dependences through `tmp` force a
        // sequential plan; after: privatization certifies a DOALL
        assert_eq!(a.baseline.strategy, StrategyKind::Sequential);
        assert_eq!(a.refined.strategy, StrategyKind::InductionDoall);
        assert_eq!(a.certificate.verdict, CertVerdict::CertifiedDoall);

        let cfg = certified_config(&a.certificate, 1024);
        assert!(!cfg.pd_shadow && !cfg.stamp_writes && !cfg.undo_overshoot);
        assert_eq!(cfg.backup_elems, 0);
        assert_eq!(cfg.budget_writes, None);
    }

    #[test]
    fn gather_scatter_budget_is_halved() {
        let a = certify(GATHER_SCATTER);
        assert_eq!(a.certificate.verdict, CertVerdict::SpeculateBounded);
        assert_eq!(a.certificate.writes_per_iter, 2);
        assert_eq!(a.certificate.uncertain_writes_per_iter, 1);

        // before: every write shadowed; after: only the indirect update
        let n = 512;
        assert_eq!(a.certificate.naive_write_budget(n), 2 * n);
        assert_eq!(a.certificate.write_budget(n), n);

        let cfg = certified_config(&a.certificate, n);
        assert!(cfg.pd_shadow && cfg.stamp_writes);
        assert_eq!(cfg.budget_writes, Some(n));

        // the same bound flows into the governor's policy…
        let policy = a.certificate.apply_to_policy(GovernorPolicy::default(), n);
        assert_eq!(policy.budget_writes, Some(n));

        // …and into the speculative array: a real run of the indirect
        // update (one uncertain write per iteration, through a
        // permutation) commits within the certified budget
        let n_us = n as usize;
        let arr = a.certificate.speculative_array(vec![0i64; n_us], n);
        let out = wlp_core::speculative_while(
            &wlp_runtime::Pool::new(2),
            n_us,
            &arr,
            |_i, _acc| false,
            |i, acc| {
                let idx = (i * 7 + 3) % n_us;
                let v = acc.read(idx);
                acc.write(idx, v + 1);
            },
        );
        assert!(out.committed_parallel, "{out:?}");
        assert!(!arr.budget_exceeded());
        assert_eq!(arr.stamped_writes(), n);
    }

    #[test]
    fn counted_fill_reduction_rides_a_certified_doall() {
        let a = certify(COUNTED_FILL);
        assert!(a
            .recurrences
            .iter()
            .any(|r| r.role == wlp_analyze::RecurrenceRole::Reduction
                || r.role == wlp_analyze::RecurrenceRole::Dispatcher));
        assert_eq!(a.certificate.verdict, CertVerdict::CertifiedDoall);
        assert!(!a.certificate.needs_pd());
    }

    #[test]
    fn guarded_update_keeps_undo_but_drops_the_pd_test() {
        let a = certify(GUARDED_UPDATE);
        assert_eq!(a.certificate.verdict, CertVerdict::CertifiedDoall);
        assert_eq!(a.terminator, TerminatorClass::RemainderVariant);

        let cfg = certified_config(&a.certificate, 64);
        assert!(cfg.stamp_writes && cfg.undo_overshoot);
        assert!(!cfg.pd_shadow, "certified loops drop the run-time test");
    }

    #[test]
    fn wavefront_fissions_into_a_doacross_pipeline() {
        let a = certify(WAVEFRONT);
        // the whole loop is confined by the B recurrence…
        assert_eq!(a.certificate.verdict, CertVerdict::CertifiedSequential);
        // …but the fission plan recovers the consumer as a DOALL sibling
        assert!(a.fission.is_fissioned());
        assert_eq!(a.fission.blocks.len(), 2);
        assert_eq!(a.fission.parallel_blocks(), 1);
        assert_eq!(a.fission.edges.len(), 1);
        assert_eq!(a.fission.min_sync_distance(), Some(1));
    }

    #[test]
    fn mcsparse_pair_certifies_two_blocks_with_a_doacross_edge() {
        let a = certify(MCSPARSE_PAIR);
        assert_eq!(a.certificate.verdict, CertVerdict::CertifiedSequential);
        assert!(a.fission.is_fissioned());
        assert!(a.fission.blocks.len() >= 2, "{:?}", a.fission);
        assert!(a.fission.parallel_blocks() >= 1);
        assert!(!a.fission.edges.is_empty(), "needs a DOACROSS edge");
        // mixed verdict: W-SEQ01 downgrades to a warning, so wlp-lint
        // exits 0 on this source
        assert!(a.diagnostics.iter().any(|d| d.code == "W-SEQ02"));
        assert!(a.diagnostics.iter().all(|d| d.code != "W-SEQ01"));
    }

    #[test]
    fn partial_sums_is_certified_sequential() {
        let a = certify(PARTIAL_SUMS);
        assert_eq!(a.certificate.verdict, CertVerdict::CertifiedSequential);
        let cfg = certified_config(&a.certificate, 64);
        assert_eq!(cfg, ExecConfig::default());
    }
}
