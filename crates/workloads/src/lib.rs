//! The five loops of the paper's evaluation (Section 9, Table 2).
//!
//! | module | paper loop | dispatcher | terminator | machinery |
//! |---|---|---|---|---|
//! | [`spice`] | SPICE `LOAD` loop 40 | linked list | RI (null) | none |
//! | [`track`] | TRACK `FPTRAK` loop 300 | induction | RV (error exit) | backups + stamps |
//! | [`mcsparse`] | MCSPARSE `DFACT` loop 500 | induction | RV (pivot found) | none (DOANY) |
//! | [`ma28`] | MA28 `MA30AD` loop 270 | induction | RV (cost-0 exit) | backups + stamps |
//! | [`ma28`] | MA28 `MA30AD` loop 320 | induction | RV (cost-0 exit) | backups + stamps |
//!
//! Each module provides the sequential reference, the parallel (threaded)
//! transformation built from `wlp-core`, and a [`wlp_sim::LoopSpec`]
//! builder so the bench harness can regenerate the corresponding figure on
//! the deterministic multiprocessor simulator.

pub mod ma28;
pub mod mcsparse;
pub mod sources;
pub mod spice;
pub mod track;
