//! SPICE `LOAD` loop 40: loading capacitor device models (Figure 6).
//!
//! The loop traverses a linked list of capacitor models, evaluating each
//! device and accumulating its companion-model contributions into
//! per-device slots. The dispatcher is a general recurrence (the list
//! pointer), the terminator is remainder-invariant (`tmp ≠ null`), and the
//! iterations are independent — Table 2's "no backups or time-stamps"
//! row. The paper measured General-1 at 2.9× and General-3 at 4.9× on 8
//! processors; ~40% of SPICE's sequential time sits in loops of this
//! shape (LOAD and the BJT/MOSFET model loops share it).

use crossbeam::atomic::AtomicCell;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wlp_core::general::{
    general1, general2, general3, general3_recovering_rec, GeneralConfig, GeneralOutcome,
};
use wlp_fault::FaultPlan;
use wlp_list::ListArena;
use wlp_obs::Recorder;
use wlp_runtime::{Pool, Step};
use wlp_sim::{LoopSpec, Overheads};

/// A capacitor device model (a slice of what SPICE keeps per device).
#[derive(Debug, Clone, Copy)]
pub struct Capacitor {
    /// Device index (stable identity for output slots).
    pub id: usize,
    /// Capacitance (farads).
    pub capacitance: f64,
    /// Voltage across the device at the previous timepoint.
    pub v_prev: f64,
    /// Charge state at the previous timepoint.
    pub q_prev: f64,
}

/// Companion-model contributions produced by evaluating one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stamp {
    /// Equivalent conductance `g_eq = C/Δt`.
    pub geq: f64,
    /// Equivalent current `i_eq = g_eq·v − dq/dt`.
    pub ieq: f64,
}

/// Evaluates one capacitor with backward-Euler integration — the `WORK`
/// of the loop body. A small fixed iteration count stands in for the
/// per-device model arithmetic SPICE performs.
pub fn evaluate(dev: &Capacitor, dt: f64) -> Stamp {
    let geq = dev.capacitance / dt;
    let q_new = dev.capacitance * dev.v_prev;
    let mut ieq = geq * dev.v_prev - (q_new - dev.q_prev) / dt;
    // model refinement sweeps (charge conservation / limiting), giving the
    // body enough arithmetic to be worth parallelizing
    for _ in 0..8 {
        ieq = 0.5 * (ieq + (geq * dev.v_prev - (q_new - dev.q_prev) / dt));
    }
    Stamp { geq, ieq }
}

/// Builds a device list of `n` capacitors with a shuffled memory layout
/// (heap-allocated list nodes are not contiguous in a real SPICE run).
pub fn build_device_list(n: usize, seed: u64) -> ListArena<Capacitor> {
    let mut rng = StdRng::seed_from_u64(seed);
    ListArena::from_values_shuffled(
        (0..n).map(|id| Capacitor {
            id,
            capacitance: rng.gen_range(1e-12..1e-9),
            v_prev: rng.gen_range(-5.0..5.0),
            q_prev: rng.gen_range(-1e-9..1e-9),
        }),
        seed,
    )
}

/// Sequential reference: the untransformed WHILE loop.
pub fn load_sequential(list: &ListArena<Capacitor>, dt: f64) -> Vec<Stamp> {
    let mut out = vec![Stamp { geq: 0.0, ieq: 0.0 }; list.len()];
    for (_, dev) in list.iter() {
        out[dev.id] = evaluate(dev, dt);
    }
    out
}

/// Which parallelization to use for [`load_parallel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// General-1 (locks).
    General1,
    /// General-2 (static).
    General2,
    /// General-3 (dynamic, no locks).
    General3,
}

/// Parallel LOAD via the chosen General method. Iterations write disjoint
/// slots, so plain atomic cells carry the output.
pub fn load_parallel(
    pool: &Pool,
    list: &ListArena<Capacitor>,
    dt: f64,
    method: Method,
) -> (Vec<Stamp>, GeneralOutcome) {
    let out: Vec<AtomicCell<Stamp>> = (0..list.len())
        .map(|_| AtomicCell::new(Stamp { geq: 0.0, ieq: 0.0 }))
        .collect();
    let body = |_i: usize, node: wlp_list::NodeId| {
        let dev = &list[node];
        out[dev.id].store(evaluate(dev, dt));
    };
    let cfg = GeneralConfig::default();
    let outcome = match method {
        Method::General1 => general1(pool, list, cfg, body),
        Method::General2 => general2(pool, list, cfg, body),
        Method::General3 => general3(pool, list, cfg, body),
    };
    (out.into_iter().map(|c| c.load()).collect(), outcome)
}

/// Parallel LOAD under fault injection: General-3 wrapped in the paper's
/// Section 5 exception rule. `plan` injects its fault into the loop body
/// (the injection point reports vpn 0, so use vpn-unconstrained plans); a
/// contained worker panic triggers a guarded sequential re-execution —
/// sound here because each body writes only its own device's output slot —
/// and the abort is recorded on `rec` as an exception [`wlp_obs::Event::SpecAbort`].
/// The returned stamps therefore match the sequential reference even when
/// the fault fires.
pub fn load_parallel_recovering<R: Recorder>(
    pool: &Pool,
    list: &ListArena<Capacitor>,
    dt: f64,
    plan: &FaultPlan,
    rec: &R,
) -> (Vec<Stamp>, GeneralOutcome) {
    let out: Vec<AtomicCell<Stamp>> = (0..list.len())
        .map(|_| AtomicCell::new(Stamp { geq: 0.0, ieq: 0.0 }))
        .collect();
    let outcome = general3_recovering_rec(pool, list, GeneralConfig::default(), rec, |i, node| {
        let _ = plan.inject(i, 0);
        let dev = &list[node];
        out[dev.id].store(evaluate(dev, dt));
        Step::Continue
    });
    (out.into_iter().map(|c| c.load()).collect(), outcome)
}

/// The simulator view of this loop: `n` devices, uniform model-evaluation
/// bodies, RI (null) terminator, one write + a few reads per iteration.
///
/// The paper notes "the body in Loop 40 does little work", which is what
/// makes General-1's critical section the bottleneck: the lock hold
/// (acquire + `next()` + null test) is sized at roughly half the body, so
/// General-1's throughput caps near `(work + hold)/hold ≈ 2.8` — the 2.9×
/// saturation of Figure 6 — while the lock-free methods keep scaling.
pub fn sim_spec(n: usize) -> (LoopSpec, Overheads) {
    let spec = LoopSpec::uniform(n, 40).with_accesses(|_| 2, |_| 4);
    let oh = Overheads {
        t_lock: 11,
        ..Overheads::default()
    };
    (spec, oh)
}

/// A bipolar-junction transistor model (the `BJT` subroutine's per-device
/// state). Its evaluation is much heavier than a capacitor's — companion
/// models require exponentials and a Newton–Raphson refinement.
#[derive(Debug, Clone, Copy)]
pub struct Bjt {
    /// Device index.
    pub id: usize,
    /// Saturation current.
    pub is_sat: f64,
    /// Forward beta.
    pub beta_f: f64,
    /// Base–emitter voltage at the previous iterate.
    pub v_be: f64,
}

/// A MOSFET model (the `MOSFET` subroutine's per-device state).
#[derive(Debug, Clone, Copy)]
pub struct Mosfet {
    /// Device index.
    pub id: usize,
    /// Threshold voltage.
    pub vt0: f64,
    /// Transconductance parameter × W/L.
    pub kp: f64,
    /// Gate–source voltage at the previous iterate.
    pub v_gs: f64,
    /// Drain–source voltage at the previous iterate.
    pub v_ds: f64,
}

/// Any device the LOAD loop can encounter — "the structure of Loop 40 is
/// identical to those for the evaluation of transistor models (subroutines
/// BJT and MOSFET), \[so\] the same parallelization techniques can also be
/// used on these loops".
#[derive(Debug, Clone, Copy)]
pub enum Device {
    /// A linear capacitor.
    Capacitor(Capacitor),
    /// A bipolar transistor.
    Bjt(Bjt),
    /// A MOS transistor.
    Mosfet(Mosfet),
}

impl Device {
    /// Stable output-slot index.
    pub fn id(&self) -> usize {
        match self {
            Device::Capacitor(d) => d.id,
            Device::Bjt(d) => d.id,
            Device::Mosfet(d) => d.id,
        }
    }
}

/// Evaluates a BJT with a short Newton–Raphson limiting loop (the heavy
/// body of the transistor-model subroutines).
pub fn evaluate_bjt(dev: &Bjt) -> Stamp {
    const VT: f64 = 0.02585; // thermal voltage
    let mut v = dev.v_be;
    // junction-voltage limiting: a few N-R iterates on i(v) = Is(e^{v/Vt}−1)
    for _ in 0..4 {
        let i = dev.is_sat * ((v / VT).exp() - 1.0);
        let g = (dev.is_sat / VT) * (v / VT).exp();
        v -= (i - dev.beta_f * 1e-6) / g.max(1e-12);
        v = v.clamp(-5.0, 0.9);
    }
    let geq = (dev.is_sat / VT) * (v / VT).exp();
    let ieq = dev.is_sat * ((v / VT).exp() - 1.0) - geq * v;
    Stamp { geq, ieq }
}

/// Evaluates a MOSFET with the level-1 square-law model.
pub fn evaluate_mosfet(dev: &Mosfet) -> Stamp {
    let vov = dev.v_gs - dev.vt0;
    let (i_d, gm) = if vov <= 0.0 {
        (0.0, 0.0)
    } else if dev.v_ds < vov {
        // triode
        let i = dev.kp * (vov * dev.v_ds - 0.5 * dev.v_ds * dev.v_ds);
        (i, dev.kp * dev.v_ds)
    } else {
        // saturation
        (0.5 * dev.kp * vov * vov, dev.kp * vov)
    };
    Stamp {
        geq: gm.max(1e-12),
        ieq: i_d - gm * dev.v_gs,
    }
}

/// Evaluates any device.
pub fn evaluate_device(dev: &Device, dt: f64) -> Stamp {
    match dev {
        Device::Capacitor(d) => evaluate(d, dt),
        Device::Bjt(d) => evaluate_bjt(d),
        Device::Mosfet(d) => evaluate_mosfet(d),
    }
}

/// Builds a mixed netlist: roughly 50% capacitors, 25% BJTs, 25% MOSFETs,
/// shuffled in memory like any heap-allocated device list.
pub fn build_netlist(n: usize, seed: u64) -> ListArena<Device> {
    let mut rng = StdRng::seed_from_u64(seed);
    ListArena::from_values_shuffled(
        (0..n).map(|id| match id % 4 {
            0 | 1 => Device::Capacitor(Capacitor {
                id,
                capacitance: rng.gen_range(1e-12..1e-9),
                v_prev: rng.gen_range(-5.0..5.0),
                q_prev: rng.gen_range(-1e-9..1e-9),
            }),
            2 => Device::Bjt(Bjt {
                id,
                is_sat: rng.gen_range(1e-16..1e-14),
                beta_f: rng.gen_range(50.0..300.0),
                v_be: rng.gen_range(0.4..0.8),
            }),
            _ => Device::Mosfet(Mosfet {
                id,
                vt0: rng.gen_range(0.3..0.9),
                kp: rng.gen_range(1e-5..5e-4),
                v_gs: rng.gen_range(0.0..3.0),
                v_ds: rng.gen_range(0.0..3.0),
            }),
        }),
        seed,
    )
}

/// Sequential reference over a mixed netlist.
pub fn load_netlist_sequential(list: &ListArena<Device>, dt: f64) -> Vec<Stamp> {
    let mut out = vec![Stamp { geq: 0.0, ieq: 0.0 }; list.len()];
    for (_, dev) in list.iter() {
        out[dev.id()] = evaluate_device(dev, dt);
    }
    out
}

/// Parallel LOAD over a mixed netlist via the chosen General method —
/// heterogeneous bodies are where General-3's dynamic balancing earns its
/// keep over General-2's static assignment.
pub fn load_netlist_parallel(
    pool: &Pool,
    list: &ListArena<Device>,
    dt: f64,
    method: Method,
) -> (Vec<Stamp>, GeneralOutcome) {
    let out: Vec<AtomicCell<Stamp>> = (0..list.len())
        .map(|_| AtomicCell::new(Stamp { geq: 0.0, ieq: 0.0 }))
        .collect();
    let body = |_i: usize, node: wlp_list::NodeId| {
        let dev = &list[node];
        out[dev.id()].store(evaluate_device(dev, dt));
    };
    let cfg = GeneralConfig::default();
    let outcome = match method {
        Method::General1 => general1(pool, list, cfg, body),
        Method::General2 => general2(pool, list, cfg, body),
        Method::General3 => general3(pool, list, cfg, body),
    };
    (out.into_iter().map(|c| c.load()).collect(), outcome)
}

/// Simulator view of the *mixed* netlist: per-iteration work follows the
/// device class (capacitors are light, BJTs heavy, MOSFETs in between),
/// using the same 2:1:1 interleave as [`build_netlist`]. Heterogeneous
/// bodies are what separate the static and dynamic General methods.
pub fn sim_spec_mixed(n: usize) -> (LoopSpec, Overheads) {
    let spec = LoopSpec::uniform(n, 0)
        .with_work(|i| match i % 4 {
            0 | 1 => 35, // capacitor
            2 => 140,    // BJT: exponentials + N-R limiting
            _ => 70,     // MOSFET
        })
        .with_accesses(|_| 2, |_| 4);
    let oh = Overheads {
        t_lock: 11,
        ..Overheads::default()
    };
    (spec, oh)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn all_methods_match_sequential() {
        let list = build_device_list(500, 42);
        let seq = load_sequential(&list, 1e-6);
        let pool = Pool::new(4);
        for method in [Method::General1, Method::General2, Method::General3] {
            let (par, outcome) = load_parallel(&pool, &list, 1e-6, method);
            assert_eq!(outcome.iterations, 500, "{method:?}");
            assert_eq!(outcome.quit, None, "RI terminator never quits early");
            for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
                assert!(
                    close(s.geq, p.geq) && close(s.ieq, p.ieq),
                    "{method:?} device {i}"
                );
            }
        }
    }

    #[test]
    fn evaluation_is_deterministic() {
        let dev = Capacitor {
            id: 0,
            capacitance: 1e-10,
            v_prev: 2.0,
            q_prev: 1e-10,
        };
        assert_eq!(evaluate(&dev, 1e-6), evaluate(&dev, 1e-6));
    }

    #[test]
    fn device_list_is_seed_stable() {
        let a = build_device_list(100, 7);
        let b = build_device_list(100, 7);
        for ((_, x), (_, y)) in a.iter().zip(b.iter()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.capacitance, y.capacitance);
        }
    }

    #[test]
    fn hop_accounting_differs_between_methods() {
        let list = build_device_list(200, 1);
        let pool = Pool::new(4);
        let (_, g1) = load_parallel(&pool, &list, 1e-6, Method::General1);
        let (_, g2) = load_parallel(&pool, &list, 1e-6, Method::General2);
        assert_eq!(g1.hops, 200, "General-1 walks the list once");
        assert!(g2.hops > g1.hops, "General-2 walks it per processor");
    }

    #[test]
    fn mixed_netlist_methods_match_sequential() {
        let list = build_netlist(600, 9);
        let seq = load_netlist_sequential(&list, 1e-6);
        let pool = Pool::new(4);
        for method in [Method::General1, Method::General2, Method::General3] {
            let (par, outcome) = load_netlist_parallel(&pool, &list, 1e-6, method);
            assert_eq!(outcome.iterations, 600, "{method:?}");
            for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
                assert!(
                    close(s.geq, p.geq) && close(s.ieq, p.ieq),
                    "{method:?} device {i}"
                );
            }
        }
    }

    #[test]
    fn device_mix_has_all_three_kinds() {
        let list = build_netlist(100, 3);
        let (mut caps, mut bjts, mut fets) = (0, 0, 0);
        for (_, d) in list.iter() {
            match d {
                Device::Capacitor(_) => caps += 1,
                Device::Bjt(_) => bjts += 1,
                Device::Mosfet(_) => fets += 1,
            }
        }
        assert_eq!((caps, bjts, fets), (50, 25, 25));
    }

    #[test]
    fn bjt_limiting_converges_to_finite_stamp() {
        let d = Bjt {
            id: 0,
            is_sat: 1e-15,
            beta_f: 100.0,
            v_be: 0.7,
        };
        let s = evaluate_bjt(&d);
        assert!(s.geq.is_finite() && s.geq > 0.0);
        assert!(s.ieq.is_finite());
    }

    #[test]
    fn mosfet_regions_are_covered() {
        // cutoff
        let s = evaluate_mosfet(&Mosfet {
            id: 0,
            vt0: 1.0,
            kp: 1e-4,
            v_gs: 0.5,
            v_ds: 1.0,
        });
        assert_eq!(s.ieq, 0.0);
        // triode: v_ds < v_ov
        let s = evaluate_mosfet(&Mosfet {
            id: 0,
            vt0: 0.5,
            kp: 1e-4,
            v_gs: 2.0,
            v_ds: 0.5,
        });
        assert!(s.geq > 0.0);
        // saturation: v_ds ≥ v_ov
        let s = evaluate_mosfet(&Mosfet {
            id: 0,
            vt0: 0.5,
            kp: 1e-4,
            v_gs: 1.0,
            v_ds: 2.0,
        });
        assert!(s.geq > 0.0);
    }

    #[test]
    fn injected_panic_recovers_to_the_sequential_answer() {
        use wlp_obs::{BufferRecorder, ProfileReport};
        let list = build_device_list(400, 11);
        let seq = load_sequential(&list, 1e-6);
        let pool = Pool::new(4);
        let plan = FaultPlan::panic_at(200);
        let rec = BufferRecorder::new(4);
        let (par, outcome) = load_parallel_recovering(&pool, &list, 1e-6, &plan, &rec);
        assert!(plan.fired(), "the fault must actually fire");
        assert!(outcome.recovered, "recovery path must run");
        assert!(outcome.panic.is_some());
        assert_eq!(outcome.iterations, 400, "recovery re-executes everything");
        for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
            assert!(close(s.geq, p.geq) && close(s.ieq, p.ieq), "device {i}");
        }
        let report = ProfileReport::from_trace(&rec.finish());
        assert_eq!(report.spec_aborts, 1);
        assert_eq!(report.aborts_exception, 1);
        assert_eq!(report.aborts_dependence, 0);
    }

    #[test]
    fn clean_runs_pass_through_the_recovery_wrapper() {
        let list = build_device_list(300, 5);
        let seq = load_sequential(&list, 1e-6);
        let pool = Pool::new(4);
        let plan = FaultPlan::none();
        let (par, outcome) =
            load_parallel_recovering(&pool, &list, 1e-6, &plan, &wlp_obs::NoopRecorder);
        assert!(!outcome.recovered);
        assert!(outcome.panic.is_none());
        assert_eq!(outcome.iterations, 300);
        for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
            assert!(close(s.geq, p.geq) && close(s.ieq, p.ieq), "device {i}");
        }
    }

    #[test]
    fn corrupted_device_list_reports_divergence_not_a_hang() {
        let mut list = build_device_list(200, 8);
        wlp_fault::corrupt_list_cycle(&mut list, 99).expect("list long enough");
        let pool = Pool::new(4);
        let plan = FaultPlan::none();
        let (_, outcome) =
            load_parallel_recovering(&pool, &list, 1e-6, &plan, &wlp_obs::NoopRecorder);
        let d = outcome.diverged.expect("cycle must be detected");
        assert!(d.cycle || d.steps >= d.budget, "{d:?}");
    }

    #[test]
    fn empty_netlist() {
        let list = build_device_list(0, 1);
        let pool = Pool::new(2);
        let (out, outcome) = load_parallel(&pool, &list, 1e-6, Method::General3);
        assert!(out.is_empty());
        assert_eq!(outcome.iterations, 0);
    }
}
