//! TRACK `FPTRAK` loop 300: a DO loop with a conditional error exit and
//! run-time-computed subscripts (Figure 7).
//!
//! Each iteration filters one track-point measurement through a
//! subscript-array indirection (`A[idx[i]]`), and bails out of the loop
//! when an error condition — computed from the iteration's own result —
//! fires. Taxonomy: induction dispatcher, **RV** terminator, statically
//! unanalyzable accesses ⇒ Induction-1/2 with checkpoint, write
//! time-stamps and undo of overshot iterations (the paper measured 5.8×
//! at p = 8 with backups and time-stamps, against a hand-parallelized
//! ideal).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use wlp_core::induction::InductionOutcome;
use wlp_core::speculate::{speculative_while, SpecOutcome, SpeculativeArray};
use wlp_runtime::Pool;
use wlp_sim::spec::TerminatorKind;
use wlp_sim::{ExecConfig, LoopSpec, Overheads};

/// One TRACK-like problem instance.
#[derive(Debug, Clone)]
pub struct TrackInstance {
    /// Run-time-computed subscripts (a permutation in a healthy run).
    pub idx: Vec<usize>,
    /// Measurement inputs, one per iteration.
    pub meas: Vec<f64>,
    /// Error threshold: the loop exits at the first filtered value whose
    /// magnitude exceeds it.
    pub limit: f64,
    /// Initial state of the track-point array.
    pub state: Vec<f64>,
}

/// The per-iteration filter: combines the measurement with the current
/// track-point value (reads `A[idx[i]]`, writes it back).
fn filter(prev: f64, meas: f64) -> f64 {
    let mut v = 0.75 * prev + 0.25 * meas;
    for _ in 0..6 {
        v = v + 0.01 * (meas - v); // smoothing sweeps (body weight)
    }
    v
}

impl TrackInstance {
    /// Builds an instance whose error exit fires at iteration `exit_at`
    /// (or never, if `exit_at >= n`).
    pub fn new(n: usize, exit_at: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut rng);
        let state: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let limit = 1e6;
        let mut meas: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        if exit_at < n {
            meas[exit_at] = 10.0 * limit; // guarantees |filtered| > limit
        }
        TrackInstance {
            idx,
            meas,
            limit,
            state,
        }
    }

    /// Sequential reference: returns the final state and the exit
    /// iteration (the first whose filtered value breaks the limit).
    pub fn run_sequential(&self) -> (Vec<f64>, Option<usize>) {
        let mut a = self.state.clone();
        for i in 0..self.meas.len() {
            let e = self.idx[i];
            let v = filter(a[e], self.meas[i]);
            if v.abs() > self.limit {
                return (a, Some(i)); // error detected: A[idx[i]] not updated
            }
            a[e] = v;
        }
        (a, None)
    }

    /// Parallel execution: speculative Induction-2 DOALL with the PD test
    /// over the indirectly-subscripted array, checkpoint/time-stamps and
    /// undo of overshot iterations. Returns the final state and the
    /// speculation outcome.
    pub fn run_parallel(&self, pool: &Pool) -> (Vec<f64>, SpecOutcome) {
        let arr = SpeculativeArray::new(self.state.clone());
        let out = speculative_while(
            pool,
            self.meas.len(),
            &arr,
            |i, a| {
                // RV terminator: reads the track point and filters — the
                // condition depends on values the loop computes
                let v = filter(a.read(self.idx[i]), self.meas[i]);
                v.abs() > self.limit
            },
            |i, a| {
                let e = self.idx[i];
                let v = filter(a.read(e), self.meas[i]);
                a.write(e, v);
            },
        );
        (arr.snapshot(), out)
    }

    /// The paper also reports the ideal (hand-parallelized) curve for this
    /// loop: the same DOALL without any checkpoint/stamp/undo machinery,
    /// valid because a human has proven independence. Returns the outcome
    /// only (state handling identical to the speculative path).
    pub fn run_hand_parallel(&self, pool: &Pool) -> InductionOutcome {
        let state: Vec<crossbeam::atomic::AtomicCell<f64>> = self
            .state
            .iter()
            .map(|&v| crossbeam::atomic::AtomicCell::new(v))
            .collect();
        wlp_core::induction::induction2(
            pool,
            self.meas.len(),
            |i| filter(state[self.idx[i]].load(), self.meas[i]).abs() > self.limit,
            |i, _| {
                let e = self.idx[i];
                state[e].store(filter(state[e].load(), self.meas[i]));
            },
        )
    }
}

/// Simulator view: uniform filter bodies, RV exit at `exit_at`, one
/// indirect read + one indirect write per iteration, with the full undo
/// machinery (Table 2: "backups and time-stamps").
pub fn sim_spec(n: usize, exit_at: usize) -> (LoopSpec, Overheads, ExecConfig) {
    let spec = LoopSpec::uniform(n, 45)
        .with_exit(exit_at, TerminatorKind::RemainderVariant)
        .with_accesses(|_| 1, |_| 2);
    // TRACK's indirect accesses make the stamping/backup machinery
    // relatively expensive (subscripted-subscript stores): the gap between
    // the Induction-1 curve and the hand-parallel ideal in Figure 7
    let oh = Overheads {
        t_stamp: 12,
        t_backup: 6,
        t_restore: 6,
        ..Overheads::default()
    };
    (spec, oh, ExecConfig::with_undo(n as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close_vec(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn parallel_matches_sequential_with_exit() {
        let inst = TrackInstance::new(2000, 1500, 11);
        let (seq_state, seq_exit) = inst.run_sequential();
        let pool = Pool::new(4);
        let (par_state, out) = inst.run_parallel(&pool);
        assert_eq!(out.last_valid, seq_exit);
        assert_eq!(seq_exit, Some(1500));
        assert!(
            out.committed_parallel,
            "speculation must pass: {:?}",
            out.verdict
        );
        close_vec(&seq_state, &par_state);
    }

    #[test]
    fn parallel_matches_sequential_without_exit() {
        let inst = TrackInstance::new(500, usize::MAX, 3);
        let (seq_state, seq_exit) = inst.run_sequential();
        assert_eq!(seq_exit, None);
        let pool = Pool::new(4);
        let (par_state, out) = inst.run_parallel(&pool);
        assert!(out.committed_parallel);
        assert_eq!(out.last_valid, None);
        close_vec(&seq_state, &par_state);
    }

    #[test]
    fn overshot_iterations_are_undone() {
        let inst = TrackInstance::new(4000, 100, 5);
        let pool = Pool::new(8);
        let (par_state, out) = inst.run_parallel(&pool);
        assert!(out.committed_parallel);
        let (seq_state, _) = inst.run_sequential();
        close_vec(&seq_state, &par_state);
        // iterations past 100 were claimed but their writes rolled back
        assert_eq!(out.last_valid, Some(100));
    }

    #[test]
    fn duplicate_subscripts_force_sequential_fallback() {
        // corrupt the subscript array: iterations 10 and 11 collide, and
        // iteration 11 reads what 10 wrote ⇒ cross-iteration flow dep
        let mut inst = TrackInstance::new(200, usize::MAX, 9);
        inst.idx[11] = inst.idx[10];
        let (seq_state, _) = inst.run_sequential();
        let pool = Pool::new(4);
        let (par_state, out) = inst.run_parallel(&pool);
        assert!(!out.committed_parallel, "PD test must catch the collision");
        assert!(out.reexecuted_sequentially);
        close_vec(&seq_state, &par_state);
    }

    #[test]
    fn hand_parallel_finds_the_same_exit() {
        let inst = TrackInstance::new(1000, 700, 21);
        let pool = Pool::new(4);
        let out = inst.run_hand_parallel(&pool);
        assert_eq!(out.last_valid, Some(700));
    }
}
