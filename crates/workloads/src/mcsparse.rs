//! MCSPARSE `DFACT` loop 500: non-deterministic pivot search — the
//! WHILE-DOANY construct (Figures 8–11).
//!
//! MCSPARSE is insensitive to the order in which rows and columns are
//! searched for a pivot. The original code parallelized only the row
//! search (a DOANY) and left the column traversal sequential; the paper
//! fuses the two into a single WHILE-DOANY searching the whole matrix.
//! Because *any* satisfying iterate is acceptable, the RV terminator
//! needs **no backups and no time-stamps** despite overshooting — the
//! Table 2 row with speedups 7.0/6.8/4.8/5.7 across the four inputs.

use parking_lot::Mutex;
use wlp_runtime::{doall_dynamic, Pool, Step};
use wlp_sim::{LoopSpec, Overheads};
use wlp_sparse::{best_in_row, EliminationWork, Pivot};

/// A fused row/column candidate: even indices search a row, odd indices a
/// column (the WHILE-DOANY interleave of the two original loops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Candidate {
    /// Search row `r` for its best admissible entry.
    Row(usize),
    /// Search column `j` for its best admissible entry.
    Col(usize),
}

/// The fused candidate sequence for an `n × n` workspace.
pub fn candidates(n: usize) -> impl Iterator<Item = Candidate> {
    (0..2 * n).map(|k| {
        if k % 2 == 0 {
            Candidate::Row(k / 2)
        } else {
            Candidate::Col(k / 2)
        }
    })
}

/// Column → active rows holding it (built once per search step).
pub fn column_rows(work: &EliminationWork) -> Vec<Vec<usize>> {
    let mut map = vec![Vec::new(); work.n()];
    for r in work.active_rows() {
        for &(c, _) in work.row(r) {
            if work.is_col_active(c as usize) {
                map[c as usize].push(r);
            }
        }
    }
    map
}

/// Best admissible entry of column `j` (threshold relative to each row).
pub fn best_in_col(
    work: &EliminationWork,
    colmap: &[Vec<usize>],
    j: usize,
    u: f64,
) -> Option<Pivot> {
    if !work.is_col_active(j) {
        return None;
    }
    let mut best: Option<Pivot> = None;
    for &r in &colmap[j] {
        let Some(v) = work.get(r, j) else { continue };
        if v.abs() < u * work.row_abs_max(r) {
            continue;
        }
        let cost = work.markowitz_cost(r, j);
        if best.is_none_or(|b| cost < b.cost) {
            best = Some(Pivot {
                row: r,
                col: j,
                cost,
                value: v,
            });
        }
    }
    best
}

/// Evaluates candidate `k`: its best admissible pivot, if any.
pub fn evaluate_candidate(
    work: &EliminationWork,
    colmap: &[Vec<usize>],
    cand: Candidate,
    u: f64,
) -> Option<Pivot> {
    match cand {
        Candidate::Row(r) => best_in_row(work, r, u),
        Candidate::Col(j) => best_in_col(work, colmap, j, u),
    }
}

/// Acceptance: a pivot whose Markowitz cost is within `cost_bound`.
pub fn acceptable(p: &Pivot, cost_bound: u64) -> bool {
    p.cost <= cost_bound
}

/// Sequential DFACT search: scan the fused candidates in order, return the
/// first acceptable pivot (and how many candidates were examined).
pub fn dfact_sequential(work: &EliminationWork, u: f64, cost_bound: u64) -> (Option<Pivot>, usize) {
    let colmap = column_rows(work);
    for (k, cand) in candidates(work.n()).enumerate() {
        if let Some(p) = evaluate_candidate(work, &colmap, cand, u) {
            if acceptable(&p, cost_bound) {
                return (Some(p), k + 1);
            }
        }
    }
    (None, 2 * work.n())
}

/// Parallel WHILE-DOANY search: dynamic self-scheduled candidates, first
/// acceptable pivot quits the loop; overshot searches are simply
/// discarded (no undo — the defining DOANY property). Returns the pivot
/// found (any acceptable one) and the candidates examined.
pub fn dfact_doany(
    pool: &Pool,
    work: &EliminationWork,
    u: f64,
    cost_bound: u64,
) -> (Option<Pivot>, u64) {
    let colmap = column_rows(work);
    let cands: Vec<Candidate> = candidates(work.n()).collect();
    let found: Mutex<Option<Pivot>> = Mutex::new(None);
    let out = doall_dynamic(pool, cands.len(), |k, _| {
        if let Some(p) = evaluate_candidate(work, &colmap, cands[k], u) {
            if acceptable(&p, cost_bound) {
                let mut f = found.lock();
                if f.is_none() {
                    *f = Some(p);
                }
                return Step::Quit;
            }
        }
        Step::Continue
    });
    (found.into_inner(), out.executed)
}

/// All acceptable candidate indices — drives [`wlp_sim::sim_doany`] so the
/// figures reflect the *real* success density of each input matrix.
pub fn success_positions(work: &EliminationWork, u: f64, cost_bound: u64) -> Vec<usize> {
    let colmap = column_rows(work);
    candidates(work.n())
        .enumerate()
        .filter_map(|(k, cand)| {
            evaluate_candidate(work, &colmap, cand, u)
                .filter(|p| acceptable(p, cost_bound))
                .map(|_| k)
        })
        .collect()
}

/// Simulator view of the fused search: candidate-evaluation bodies whose
/// cost tracks the row/column lengths of `work`.
pub fn sim_spec(work: &EliminationWork) -> (LoopSpec, Overheads) {
    let colmap = column_rows(work);
    let lens: Vec<u64> = candidates(work.n())
        .map(|cand| match cand {
            Candidate::Row(r) => work.row(r).len() as u64,
            Candidate::Col(j) => colmap[j].len() as u64,
        })
        .collect();
    let spec = LoopSpec::uniform(lens.len(), 0)
        .with_work(move |i| 8 + 6 * lens[i])
        .with_accesses(|_| 0, |_| 2);
    (spec, Overheads::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlp_sparse::gen::stencil7;

    fn work() -> EliminationWork {
        EliminationWork::from_csr(&stencil7(8, 8, 3, 5))
    }

    #[test]
    fn sequential_finds_an_acceptable_pivot() {
        let w = work();
        let (p, examined) = dfact_sequential(&w, 0.1, 16);
        let p = p.expect("stencil has admissible pivots");
        assert!(acceptable(&p, 16));
        assert!(examined >= 1);
    }

    #[test]
    fn doany_finds_some_acceptable_pivot() {
        let w = work();
        let pool = Pool::new(4);
        let (p, _) = dfact_doany(&pool, &w, 0.1, 16);
        let p = p.expect("parallel search must find a pivot too");
        assert!(
            acceptable(&p, 16),
            "any acceptable pivot is a correct answer"
        );
        // the found pivot must be a real admissible entry
        assert!(w.get(p.row, p.col).is_some());
        assert_eq!(w.markowitz_cost(p.row, p.col), p.cost);
    }

    #[test]
    fn impossible_bound_finds_nothing() {
        let w = work();
        let (ps, examined) = dfact_sequential(&w, 1.1, 0);
        // u > 1 rejects every entry (nothing beats the row max strictly)
        assert!(ps.is_none());
        assert_eq!(examined, 2 * w.n());
        let pool = Pool::new(4);
        let (pp, executed) = dfact_doany(&pool, &w, 1.1, 0);
        assert!(pp.is_none());
        assert_eq!(executed, 2 * w.n() as u64);
    }

    #[test]
    fn success_positions_match_sequential_first_hit() {
        let w = work();
        let succ = success_positions(&w, 0.1, 16);
        let (p, examined) = dfact_sequential(&w, 0.1, 16);
        assert!(p.is_some());
        assert_eq!(succ.first().copied(), Some(examined - 1));
    }

    #[test]
    fn column_search_agrees_with_row_search_on_symmetric_pattern() {
        // the stencil is structurally symmetric: column j's entries mirror
        // row j's, so the candidate sets are consistent
        let w = work();
        let colmap = column_rows(&w);
        for j in [0usize, 17, 100] {
            let by_col = best_in_col(&w, &colmap, j, 0.0);
            assert!(by_col.is_some(), "col {j} must have entries");
            assert_eq!(by_col.unwrap().col, j);
        }
    }

    #[test]
    fn sim_spec_work_tracks_structure() {
        let w = work();
        let (spec, _) = sim_spec(&w);
        assert_eq!(spec.upper, 2 * w.n());
        // an interior row has 7 entries → 8 + 42 = 50 cycles
        assert!(spec.t_rem() > 0);
    }
}
