//! Arena-based linked-list substrate for WHILE-loop parallelization.
//!
//! The paper's flagship "general recurrence" dispatcher is a pointer used to
//! traverse a linked list (Figure 1(b)). In Rust, an idiomatic and
//! concurrency-friendly representation is an *arena*: all nodes live in one
//! `Vec`, links are indices, and any number of threads may traverse the list
//! concurrently through a shared reference. This matches the paper's
//! assumption that "the dispatching recurrence is fully determined before
//! loop entry (no list elements may be inserted or deleted during loop
//! execution)" — mutation requires `&mut`, so the type system enforces the
//! assumption for the duration of a parallel traversal.
//!
//! Two list flavours are provided:
//!
//! * [`ListArena`] — a plain singly linked list whose memory layout can be
//!   deliberately *shuffled* relative to its logical order, so traversal
//!   costs behave like real pointer chasing rather than a sequential scan.
//! * [`chunked::ChunkedList`] — Harrison's chunked representation (related
//!   work, Section 10 of the paper): runs of contiguously allocated elements
//!   with per-chunk headers, which permits a cheap sequential prefix over
//!   chunk lengths followed by parallel intra-chunk dispatch. Used by the
//!   ablation benchmark comparing Harrison's scheme against General-2/3.

//!
//! A third concern cuts across both: a *corrupted* list (a `next` pointer
//! bent back onto an earlier node) turns every dispatcher into an infinite
//! loop. The [`guard`] module provides budget-bounded traversal with
//! Brent cycle detection, yielding a structured [`DispatcherDiverged`]
//! error instead of a hang.

pub mod arena;
pub mod chunked;
pub mod guard;

pub use arena::{Cursor, ListArena, NodeId};
pub use chunked::ChunkedList;
pub use guard::{traverse_guarded, DispatcherDiverged, GuardedCursor};
