//! Index-based singly linked list stored in an arena.

use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Handle to a node inside a [`ListArena`].
///
/// A `NodeId` is only meaningful for the arena that produced it; using it
/// with another arena yields unspecified (but memory-safe) results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Raw index of the node in the arena's backing storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct Node<T> {
    value: T,
    next: Option<NodeId>,
}

/// A singly linked list whose nodes live in a single growable arena.
///
/// Logical order (the order `next` pointers visit nodes) is independent of
/// storage order, so pointer-chasing workloads can be modelled faithfully by
/// building the list with [`ListArena::from_values_shuffled`].
///
/// Traversal through `&self` is safe from any number of threads at once.
#[derive(Debug, Clone, Default)]
pub struct ListArena<T> {
    nodes: Vec<Node<T>>,
    head: Option<NodeId>,
    tail: Option<NodeId>,
    len: usize,
}

impl<T> ListArena<T> {
    /// Creates an empty list.
    pub fn new() -> Self {
        ListArena {
            nodes: Vec::new(),
            head: None,
            tail: None,
            len: 0,
        }
    }

    /// Creates an empty list with room for `cap` nodes.
    pub fn with_capacity(cap: usize) -> Self {
        ListArena {
            nodes: Vec::with_capacity(cap),
            head: None,
            tail: None,
            len: 0,
        }
    }

    /// Builds a list whose storage order equals its logical order.
    pub fn from_values<I: IntoIterator<Item = T>>(values: I) -> Self {
        let iter = values.into_iter();
        let mut list = ListArena::with_capacity(iter.size_hint().0);
        for v in iter {
            list.push_back(v);
        }
        list
    }

    /// Builds a list whose *storage* order is a seeded random permutation of
    /// its logical order, emulating a heap-allocated list whose nodes are
    /// scattered in memory. Logical order still follows `values`.
    pub fn from_values_shuffled<I: IntoIterator<Item = T>>(values: I, seed: u64) -> Self {
        let values: Vec<T> = values.into_iter().collect();
        let n = values.len();
        let mut slots: Vec<u32> = (0..n as u32).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        slots.shuffle(&mut rng);
        // slots[logical position] = storage index
        let mut nodes: Vec<Option<Node<T>>> = (0..n).map(|_| None).collect();
        for (logical, v) in values.into_iter().enumerate() {
            let next = if logical + 1 < n {
                Some(NodeId(slots[logical + 1]))
            } else {
                None
            };
            nodes[slots[logical] as usize] = Some(Node { value: v, next });
        }
        let head = if n > 0 { Some(NodeId(slots[0])) } else { None };
        let tail = if n > 0 {
            Some(NodeId(slots[n - 1]))
        } else {
            None
        };
        ListArena {
            nodes: nodes
                .into_iter()
                .map(|n| n.expect("all slots filled"))
                .collect(),
            head,
            tail,
            len: n,
        }
    }

    /// Appends a value at the logical end of the list.
    pub fn push_back(&mut self, value: T) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("arena limited to u32 nodes"));
        self.nodes.push(Node { value, next: None });
        match self.tail {
            Some(tail) => self.nodes[tail.index()].next = Some(id),
            None => self.head = Some(id),
        }
        self.tail = Some(id);
        self.len += 1;
        id
    }

    /// Overwrites `from`'s `next` pointer without any bookkeeping. Only
    /// for the guard module's deliberate corruption API.
    pub(crate) fn set_next(&mut self, from: NodeId, to: Option<NodeId>) {
        self.nodes[from.index()].next = to;
    }

    /// Inserts a value immediately after `after`, returning the new node.
    pub fn insert_after(&mut self, after: NodeId, value: T) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("arena limited to u32 nodes"));
        let next = self.nodes[after.index()].next;
        self.nodes.push(Node { value, next });
        self.nodes[after.index()].next = Some(id);
        if self.tail == Some(after) {
            self.tail = Some(id);
        }
        self.len += 1;
        id
    }

    /// Unlinks the node following `after` (its storage is retained but no
    /// longer reachable). Returns the unlinked node's id, if any.
    pub fn remove_after(&mut self, after: NodeId) -> Option<NodeId> {
        let victim = self.nodes[after.index()].next?;
        let vnext = self.nodes[victim.index()].next;
        self.nodes[after.index()].next = vnext;
        if self.tail == Some(victim) {
            self.tail = Some(after);
        }
        self.len -= 1;
        Some(victim)
    }

    /// First node of the list, or `None` when empty.
    #[inline]
    pub fn head(&self) -> Option<NodeId> {
        self.head
    }

    /// Last node of the list, or `None` when empty.
    #[inline]
    pub fn tail(&self) -> Option<NodeId> {
        self.tail
    }

    /// The dispatcher increment: `next(tmp)` in the paper's Figure 1(b).
    #[inline]
    pub fn next(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].next
    }

    /// Value stored at `id`.
    #[inline]
    pub fn value(&self, id: NodeId) -> &T {
        &self.nodes[id.index()].value
    }

    /// Mutable value stored at `id`.
    #[inline]
    pub fn value_mut(&mut self, id: NodeId) -> &mut T {
        &mut self.nodes[id.index()].value
    }

    /// Number of reachable nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Hops `k` links starting from `id`; `None` if the list ends first.
    /// `nth_from(id, 0) == Some(id)`.
    pub fn nth_from(&self, id: NodeId, k: usize) -> Option<NodeId> {
        let mut cur = id;
        for _ in 0..k {
            cur = self.next(cur)?;
        }
        Some(cur)
    }

    /// Logical-order iterator over `(NodeId, &T)` pairs.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            arena: self,
            cur: self.head,
        }
    }

    /// A cursor positioned at the head, for explicit dispatcher loops.
    pub fn cursor(&self) -> Cursor<'_, T> {
        Cursor {
            arena: self,
            cur: self.head,
            hops: 0,
        }
    }

    /// Collects the logical order of node ids (mostly for tests and for the
    /// run-twice execution scheme of Section 4).
    pub fn logical_order(&self) -> Vec<NodeId> {
        self.iter().map(|(id, _)| id).collect()
    }
}

impl<T> std::ops::Index<NodeId> for ListArena<T> {
    type Output = T;
    #[inline]
    fn index(&self, id: NodeId) -> &T {
        self.value(id)
    }
}

impl<T> std::ops::IndexMut<NodeId> for ListArena<T> {
    #[inline]
    fn index_mut(&mut self, id: NodeId) -> &mut T {
        self.value_mut(id)
    }
}

impl<T> FromIterator<T> for ListArena<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        ListArena::from_values(iter)
    }
}

/// Logical-order iterator over a [`ListArena`].
#[derive(Debug, Clone)]
pub struct Iter<'a, T> {
    arena: &'a ListArena<T>,
    cur: Option<NodeId>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = (NodeId, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        let id = self.cur?;
        self.cur = self.arena.next(id);
        Some((id, self.arena.value(id)))
    }
}

/// An explicit traversal position, counting the hops it has performed.
///
/// The hop counter is what the simulator and the cost model charge for: each
/// `advance` is one evaluation of the general recurrence.
#[derive(Debug, Clone)]
pub struct Cursor<'a, T> {
    arena: &'a ListArena<T>,
    cur: Option<NodeId>,
    hops: u64,
}

impl<'a, T> Cursor<'a, T> {
    /// Current node, or `None` past the end.
    #[inline]
    pub fn get(&self) -> Option<NodeId> {
        self.cur
    }

    /// Current value, or `None` past the end.
    #[inline]
    pub fn value(&self) -> Option<&'a T> {
        self.cur.map(|id| self.arena.value(id))
    }

    /// Advances one link; returns the new position.
    #[inline]
    pub fn advance(&mut self) -> Option<NodeId> {
        if let Some(id) = self.cur {
            self.cur = self.arena.next(id);
            self.hops += 1;
        }
        self.cur
    }

    /// Advances `k` links (stopping early at the end of the list).
    pub fn advance_by(&mut self, k: usize) -> Option<NodeId> {
        for _ in 0..k {
            if self.cur.is_none() {
                break;
            }
            self.advance();
        }
        self.cur
    }

    /// Total hops performed by this cursor since creation.
    #[inline]
    pub fn hops(&self) -> u64 {
        self.hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_list() {
        let l: ListArena<i32> = ListArena::new();
        assert!(l.is_empty());
        assert_eq!(l.len(), 0);
        assert_eq!(l.head(), None);
        assert_eq!(l.tail(), None);
        assert_eq!(l.iter().count(), 0);
    }

    #[test]
    fn push_back_preserves_order() {
        let l = ListArena::from_values(0..10);
        let vals: Vec<i32> = l.iter().map(|(_, &v)| v).collect();
        assert_eq!(vals, (0..10).collect::<Vec<_>>());
        assert_eq!(l.len(), 10);
    }

    #[test]
    fn shuffled_layout_preserves_logical_order() {
        let l = ListArena::from_values_shuffled(0..100, 42);
        let vals: Vec<i32> = l.iter().map(|(_, &v)| v).collect();
        assert_eq!(vals, (0..100).collect::<Vec<_>>());
        // Layout should actually be permuted: at least one node out of place.
        let ids: Vec<usize> = l.iter().map(|(id, _)| id.index()).collect();
        assert!(ids.windows(2).any(|w| w[1] != w[0] + 1));
    }

    #[test]
    fn shuffled_is_deterministic_per_seed() {
        let a = ListArena::from_values_shuffled(0..50, 7);
        let b = ListArena::from_values_shuffled(0..50, 7);
        assert_eq!(a.logical_order(), b.logical_order());
        let c = ListArena::from_values_shuffled(0..50, 8);
        assert_ne!(
            a.logical_order(),
            c.logical_order(),
            "different seeds should permute differently (w.h.p.)"
        );
    }

    #[test]
    fn nth_from_hops() {
        let l = ListArena::from_values(0..5);
        let h = l.head().unwrap();
        assert_eq!(l.nth_from(h, 0), Some(h));
        assert_eq!(l[l.nth_from(h, 3).unwrap()], 3);
        assert_eq!(l.nth_from(h, 4).map(|id| l[id]), Some(4));
        assert_eq!(l.nth_from(h, 5), None);
    }

    #[test]
    fn insert_after_middle_and_tail() {
        let mut l = ListArena::from_values(vec![1, 2, 4]);
        let two = l.iter().find(|(_, &v)| v == 2).unwrap().0;
        l.insert_after(two, 3);
        let tail = l.tail().unwrap();
        l.insert_after(tail, 5);
        let vals: Vec<i32> = l.iter().map(|(_, &v)| v).collect();
        assert_eq!(vals, vec![1, 2, 3, 4, 5]);
        assert_eq!(l[l.tail().unwrap()], 5);
    }

    #[test]
    fn remove_after_unlinks() {
        let mut l = ListArena::from_values(vec![1, 2, 3]);
        let head = l.head().unwrap();
        let removed = l.remove_after(head).unwrap();
        assert_eq!(l[removed], 2);
        let vals: Vec<i32> = l.iter().map(|(_, &v)| v).collect();
        assert_eq!(vals, vec![1, 3]);
        assert_eq!(l.len(), 2);
        // removing past the tail yields None
        let last = l.tail().unwrap();
        assert_eq!(l.remove_after(last), None);
        // removing the tail updates the tail pointer
        l.remove_after(head);
        assert_eq!(l.tail(), Some(head));
    }

    #[test]
    fn cursor_counts_hops() {
        let l = ListArena::from_values(0..10);
        let mut c = l.cursor();
        assert_eq!(c.value(), Some(&0));
        c.advance_by(3);
        assert_eq!(c.value(), Some(&3));
        assert_eq!(c.hops(), 3);
        c.advance_by(100);
        assert_eq!(c.get(), None);
        // ran off the end after 10 total hops; extra advances are free
        assert_eq!(c.hops(), 10);
    }

    #[test]
    fn value_mut_updates() {
        let mut l = ListArena::from_values(vec![1, 2, 3]);
        let h = l.head().unwrap();
        *l.value_mut(h) = 99;
        assert_eq!(l[h], 99);
    }

    #[test]
    fn concurrent_traversal_is_safe() {
        let l = std::sync::Arc::new(ListArena::from_values_shuffled(0..1000, 3));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = l.clone();
            handles.push(std::thread::spawn(move || {
                l.iter().map(|(_, &v)| v as u64).sum::<u64>()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 999 * 1000 / 2);
        }
    }
}
