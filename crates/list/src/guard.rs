//! Runaway-dispatcher guards: bounded traversal and cycle detection.
//!
//! The paper's General methods hand the linked-list dispatcher to every
//! processor; the whole scheme silently assumes the `next()` chain is
//! finite. A corrupted pointer — one node linking back to an earlier one —
//! turns every dispatcher loop into an infinite walk. This module makes
//! such corruption a *detected, structured* failure instead of a hang:
//!
//! * [`GuardedCursor`] walks a list under a step budget (`f(list len)` —
//!   an acyclic traversal can take at most `len` hops, so the budget has
//!   no false positives) while running **Brent's cycle-finding
//!   algorithm**, which positively identifies a cycle in at most
//!   `2·(μ + λ)` hops with O(1) state (one saved "teleporting tortoise"
//!   node and two counters).
//! * [`DispatcherDiverged`] is the structured error both guards yield.
//! * [`ListArena::check_acyclic`](crate::ListArena::check_acyclic)
//!   verifies a whole list up front.

use crate::arena::{ListArena, NodeId};
use std::fmt;

/// A linked-list dispatcher exceeded its traversal budget or was caught in
/// a cycle: the list is corrupted and the loop would never terminate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatcherDiverged {
    /// Hops taken before the guard tripped.
    pub steps: u64,
    /// Step budget that was in force.
    pub budget: u64,
    /// `true` when Brent's algorithm positively identified a cycle;
    /// `false` when the budget was exhausted without revisit evidence
    /// (still impossible for a well-formed list of the stated length).
    pub cycle: bool,
}

impl fmt::Display for DispatcherDiverged {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cycle {
            write!(
                f,
                "dispatcher diverged: cycle detected after {} hops (budget {})",
                self.steps, self.budget
            )
        } else {
            write!(
                f,
                "dispatcher diverged: step budget {} exhausted",
                self.budget
            )
        }
    }
}

impl std::error::Error for DispatcherDiverged {}

/// A [`Cursor`] with a runaway guard: every advance is charged against a
/// step budget and checked by Brent's algorithm, so traversing a corrupted
/// (cyclic) list returns [`DispatcherDiverged`] instead of spinning.
#[derive(Debug)]
pub struct GuardedCursor<'a, T> {
    arena: &'a ListArena<T>,
    cur: Option<NodeId>,
    hops: u64,
    budget: u64,
    /// Brent's saved node: the hare (`cur`) is compared against it on
    /// every hop; it teleports to the hare whenever `lam` reaches `power`.
    tortoise: Option<NodeId>,
    power: u64,
    lam: u64,
}

impl<'a, T> GuardedCursor<'a, T> {
    /// A guarded cursor at the list head with the default budget
    /// `len + 1` — the tightest bound that admits every acyclic
    /// traversal.
    pub fn new(arena: &'a ListArena<T>) -> Self {
        Self::with_budget(arena, arena.len() as u64 + 1)
    }

    /// A guarded cursor at the list head with an explicit step budget.
    pub fn with_budget(arena: &'a ListArena<T>, budget: u64) -> Self {
        GuardedCursor {
            arena,
            cur: arena.head(),
            hops: 0,
            budget,
            tortoise: arena.head(),
            power: 1,
            lam: 0,
        }
    }

    /// Current node, if any.
    #[inline]
    pub fn get(&self) -> Option<NodeId> {
        self.cur
    }

    /// Value at the current node, if any.
    pub fn value(&self) -> Option<&'a T> {
        self.cur.map(|id| &self.arena[id])
    }

    /// Hops performed so far.
    #[inline]
    pub fn hops(&self) -> u64 {
        self.hops
    }

    /// Advances one hop, charging the budget and running one Brent step.
    pub fn advance(&mut self) -> Result<(), DispatcherDiverged> {
        let Some(id) = self.cur else {
            return Ok(());
        };
        if self.hops >= self.budget {
            return Err(DispatcherDiverged {
                steps: self.hops,
                budget: self.budget,
                cycle: false,
            });
        }
        self.cur = self.arena.next(id);
        self.hops += 1;
        // Brent: compare the hare against the saved tortoise; teleport the
        // tortoise every time the probed cycle length doubles.
        self.lam += 1;
        if self.cur.is_some() && self.cur == self.tortoise {
            return Err(DispatcherDiverged {
                steps: self.hops,
                budget: self.budget,
                cycle: true,
            });
        }
        if self.lam == self.power {
            self.tortoise = self.cur;
            self.power = self.power.saturating_mul(2);
            self.lam = 0;
        }
        Ok(())
    }

    /// Advances `k` hops (stopping early at list end).
    pub fn advance_by(&mut self, k: usize) -> Result<(), DispatcherDiverged> {
        for _ in 0..k {
            if self.cur.is_none() {
                break;
            }
            self.advance()?;
        }
        Ok(())
    }
}

impl<T> ListArena<T> {
    /// Verifies the `next` chain reaches the end within `len` hops,
    /// returning the number of nodes visited. A corrupted (cyclic) list
    /// yields [`DispatcherDiverged`] instead of hanging the caller.
    pub fn check_acyclic(&self) -> Result<usize, DispatcherDiverged> {
        let mut cur = GuardedCursor::new(self);
        let mut visited = 0usize;
        while cur.get().is_some() {
            visited += 1;
            cur.advance()?;
        }
        Ok(visited)
    }

    /// An unguarded [`Cursor`] starting at the list head (re-exported here
    /// for symmetry with [`GuardedCursor`]; see [`ListArena::cursor`]).
    pub fn guarded_cursor(&self) -> GuardedCursor<'_, T> {
        GuardedCursor::new(self)
    }

    /// **Fault injection only**: overwrites `from`'s `next` pointer to
    /// point at `to`, deliberately corrupting the list (typically creating
    /// a cycle). `len`, `tail` and logical bookkeeping are left untouched —
    /// exactly the kind of silent memory corruption the dispatcher guards
    /// exist to survive. Used by the `wlp-fault` harness.
    pub fn corrupt_link(&mut self, from: NodeId, to: NodeId) {
        self.set_next(from, Some(to));
    }
}

// Keep the unguarded Cursor and the guarded one API-compatible where it
// costs nothing, so strategies can be written against either.
impl<T> Clone for GuardedCursor<'_, T> {
    fn clone(&self) -> Self {
        GuardedCursor {
            arena: self.arena,
            cur: self.cur,
            hops: self.hops,
            budget: self.budget,
            tortoise: self.tortoise,
            power: self.power,
            lam: self.lam,
        }
    }
}

/// Guarded sequential traversal: applies `f` to every node in logical
/// order, failing with [`DispatcherDiverged`] on a corrupted list. The
/// bounded-traversal twin of iterating [`crate::Cursor`] by hand.
pub fn traverse_guarded<T>(
    arena: &ListArena<T>,
    mut f: impl FnMut(NodeId, &T),
) -> Result<usize, DispatcherDiverged> {
    let mut cur = GuardedCursor::new(arena);
    let mut visited = 0usize;
    while let Some(id) = cur.get() {
        f(id, &arena[id]);
        visited += 1;
        cur.advance()?;
    }
    Ok(visited)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cyclic_list(n: usize, back_to: usize) -> ListArena<u32> {
        let mut list = ListArena::from_values(0..n as u32);
        let tail = list.tail().unwrap();
        let target = list.nth_from(list.head().unwrap(), back_to).unwrap();
        list.corrupt_link(tail, target);
        list
    }

    #[test]
    fn acyclic_traversal_is_unaffected() {
        let list = ListArena::from_values(0..100u32);
        assert_eq!(list.check_acyclic(), Ok(100));
        let mut sum = 0u64;
        let visited = traverse_guarded(&list, |_, v| sum += u64::from(*v)).unwrap();
        assert_eq!(visited, 100);
        assert_eq!(sum, (0..100).sum::<u64>());
    }

    #[test]
    fn full_cycle_is_detected_within_budget() {
        let list = cyclic_list(50, 0);
        let err = list.check_acyclic().unwrap_err();
        assert!(err.cycle || err.steps >= err.budget);
        assert!(
            err.steps <= 51,
            "guard must trip within the budget, took {} hops",
            err.steps
        );
    }

    #[test]
    fn rho_shaped_cycle_is_detected() {
        // tail links back into the middle: a ρ-shape (tail μ=25, loop λ=75)
        let list = cyclic_list(100, 25);
        let err = list.check_acyclic().unwrap_err();
        assert!(err.steps <= 101, "took {} hops", err.steps);
    }

    #[test]
    fn self_loop_is_detected() {
        let list = cyclic_list(10, 9); // tail points at itself
        assert!(list.check_acyclic().is_err());
    }

    #[test]
    fn brent_positively_identifies_cycles_given_headroom() {
        // With a generous budget, Brent must report `cycle: true` rather
        // than mere budget exhaustion.
        let list = cyclic_list(64, 16);
        let mut cur = GuardedCursor::with_budget(&list, 10_000);
        let err = loop {
            if let Err(e) = cur.advance() {
                break e;
            }
        };
        assert!(err.cycle, "Brent must find the cycle: {err:?}");
        assert!(err.steps < 10_000, "well before the budget");
    }

    #[test]
    fn empty_list_is_trivially_acyclic() {
        let list: ListArena<u32> = ListArena::new();
        assert_eq!(list.check_acyclic(), Ok(0));
    }

    #[test]
    fn advance_by_propagates_divergence() {
        let list = cyclic_list(20, 5);
        let mut cur = list.guarded_cursor();
        assert!(cur.advance_by(1000).is_err());
    }

    #[test]
    fn error_display_mentions_the_cause() {
        let cyc = DispatcherDiverged {
            steps: 7,
            budget: 100,
            cycle: true,
        };
        assert!(cyc.to_string().contains("cycle"));
        let budget = DispatcherDiverged {
            steps: 100,
            budget: 100,
            cycle: false,
        };
        assert!(budget.to_string().contains("budget"));
    }
}
