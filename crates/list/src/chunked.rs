//! Harrison-style chunked lists (related work, Section 10 of the paper).
//!
//! In Harrison's memory allocator, lists consist of linked *chunks* of
//! contiguously allocated elements; each chunk header stores the number of
//! elements it holds. Traversal (the dispatcher) can then be optimized by a
//! sequential prefix over the chunk headers, after which each chunk's
//! elements can be dispatched to processors in parallel.
//!
//! The paper observes that when chunks degenerate to a single element (as in
//! Fortran-style allocation), this scheme collapses into the naive loop
//! distribution of Section 3.3, and when the entire list is one chunk it is
//! equivalent to the associative-recurrence/parallel-prefix method of
//! Section 3.2. The ablation benchmark sweeps the chunk size between those
//! extremes.

/// A list stored as a sequence of contiguous chunks.
#[derive(Debug, Clone, Default)]
pub struct ChunkedList<T> {
    chunks: Vec<Vec<T>>,
    len: usize,
}

impl<T> ChunkedList<T> {
    /// Creates an empty chunked list.
    pub fn new() -> Self {
        ChunkedList {
            chunks: Vec::new(),
            len: 0,
        }
    }

    /// Builds a chunked list from `values`, breaking it into chunks of at
    /// most `chunk_size` elements.
    ///
    /// # Panics
    /// Panics if `chunk_size == 0`.
    pub fn from_values<I: IntoIterator<Item = T>>(values: I, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        let mut list = ChunkedList::new();
        let mut cur: Vec<T> = Vec::with_capacity(chunk_size);
        for v in values {
            cur.push(v);
            if cur.len() == chunk_size {
                list.push_chunk(std::mem::replace(&mut cur, Vec::with_capacity(chunk_size)));
            }
        }
        if !cur.is_empty() {
            list.push_chunk(cur);
        }
        list
    }

    /// Appends a pre-built chunk (empty chunks are ignored).
    pub fn push_chunk(&mut self, chunk: Vec<T>) {
        if chunk.is_empty() {
            return;
        }
        self.len += chunk.len();
        self.chunks.push(chunk);
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of chunks.
    #[inline]
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Borrow of chunk `c`.
    #[inline]
    pub fn chunk(&self, c: usize) -> &[T] {
        &self.chunks[c]
    }

    /// Harrison's dispatcher optimization: the *sequential prefix* over chunk
    /// headers. Entry `c` is the global index of the first element of chunk
    /// `c`; a trailing entry holds the total length. Cost is
    /// `O(num_chunks)` — this is the sequential portion of the traversal.
    pub fn chunk_prefix(&self) -> Vec<usize> {
        let mut prefix = Vec::with_capacity(self.chunks.len() + 1);
        let mut acc = 0usize;
        for c in &self.chunks {
            prefix.push(acc);
            acc += c.len();
        }
        prefix.push(acc);
        prefix
    }

    /// Element at global (logical) index `i`, located via binary search on
    /// the chunk prefix. `O(log num_chunks)`.
    pub fn get(&self, i: usize) -> Option<&T> {
        if i >= self.len {
            return None;
        }
        let prefix = self.chunk_prefix();
        let c = match prefix.binary_search(&i) {
            Ok(c) => {
                // `i` is the first element of chunk c, unless c is the
                // trailing total-length entry (impossible since i < len).
                c
            }
            Err(c) => c - 1,
        };
        Some(&self.chunks[c][i - prefix[c]])
    }

    /// Logical-order iterator over all elements.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// The number of *sequential* dispatcher steps Harrison's scheme needs
    /// before parallel work can start: one per chunk header.
    #[inline]
    pub fn sequential_dispatch_steps(&self) -> usize {
        self.chunks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_partitions_exactly() {
        let l = ChunkedList::from_values(0..10, 4);
        assert_eq!(l.len(), 10);
        assert_eq!(l.num_chunks(), 3);
        assert_eq!(l.chunk(0), &[0, 1, 2, 3]);
        assert_eq!(l.chunk(2), &[8, 9]);
    }

    #[test]
    fn chunk_prefix_matches_layout() {
        let l = ChunkedList::from_values(0..10, 4);
        assert_eq!(l.chunk_prefix(), vec![0, 4, 8, 10]);
    }

    #[test]
    fn get_spans_chunk_boundaries() {
        let l = ChunkedList::from_values(0..10, 3);
        for i in 0..10 {
            assert_eq!(l.get(i), Some(&(i as i32)));
        }
        assert_eq!(l.get(10), None);
    }

    #[test]
    fn iter_is_logical_order() {
        let l = ChunkedList::from_values(0..25, 7);
        let v: Vec<i32> = l.iter().copied().collect();
        assert_eq!(v, (0..25).collect::<Vec<_>>());
    }

    #[test]
    fn degenerate_chunk_sizes() {
        // chunk size 1: one sequential step per element (Fortran case)
        let l = ChunkedList::from_values(0..5, 1);
        assert_eq!(l.sequential_dispatch_steps(), 5);
        // single chunk: one sequential step total (array case)
        let l = ChunkedList::from_values(0..5, 100);
        assert_eq!(l.sequential_dispatch_steps(), 1);
    }

    #[test]
    fn empty_list() {
        let l: ChunkedList<i32> = ChunkedList::from_values(std::iter::empty(), 4);
        assert!(l.is_empty());
        assert_eq!(l.chunk_prefix(), vec![0]);
        assert_eq!(l.get(0), None);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_size_panics() {
        let _ = ChunkedList::from_values(0..5, 0);
    }
}
