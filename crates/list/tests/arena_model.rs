//! Model-based property tests: an arena list driven by a random sequence
//! of operations must behave exactly like `VecDeque`-backed reference
//! semantics, regardless of the physical layout.

use proptest::prelude::*;
use wlp_list::{ChunkedList, ListArena};

#[derive(Debug, Clone)]
enum Op {
    PushBack(i32),
    InsertAfter(usize, i32), // position (mod len), value
    RemoveAfter(usize),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            any::<i32>().prop_map(Op::PushBack),
            (any::<usize>(), any::<i32>()).prop_map(|(p, v)| Op::InsertAfter(p, v)),
            any::<usize>().prop_map(Op::RemoveAfter),
        ],
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arena_matches_vec_model(ops in ops_strategy()) {
        let mut arena: ListArena<i32> = ListArena::new();
        let mut model: Vec<i32> = Vec::new();
        for op in ops {
            match op {
                Op::PushBack(v) => {
                    arena.push_back(v);
                    model.push(v);
                }
                Op::InsertAfter(pos, v) => {
                    if model.is_empty() {
                        continue;
                    }
                    let pos = pos % model.len();
                    let id = arena.nth_from(arena.head().unwrap(), pos).unwrap();
                    arena.insert_after(id, v);
                    model.insert(pos + 1, v);
                }
                Op::RemoveAfter(pos) => {
                    if model.is_empty() {
                        continue;
                    }
                    let pos = pos % model.len();
                    let id = arena.nth_from(arena.head().unwrap(), pos).unwrap();
                    let removed = arena.remove_after(id);
                    if pos + 1 < model.len() {
                        prop_assert!(removed.is_some());
                        model.remove(pos + 1);
                    } else {
                        prop_assert!(removed.is_none());
                    }
                }
            }
            let got: Vec<i32> = arena.iter().map(|(_, &v)| v).collect();
            prop_assert_eq!(&got, &model);
            prop_assert_eq!(arena.len(), model.len());
            prop_assert_eq!(arena.tail().map(|t| arena[t]), model.last().copied());
        }
    }

    #[test]
    fn shuffled_layout_never_changes_semantics(values in prop::collection::vec(any::<i32>(), 0..200), seed in any::<u64>()) {
        let plain = ListArena::from_values(values.clone());
        let shuffled = ListArena::from_values_shuffled(values.clone(), seed);
        let a: Vec<i32> = plain.iter().map(|(_, &v)| v).collect();
        let b: Vec<i32> = shuffled.iter().map(|(_, &v)| v).collect();
        prop_assert_eq!(&a, &values);
        prop_assert_eq!(&b, &values);
    }

    #[test]
    fn chunked_list_agrees_with_flat(values in prop::collection::vec(any::<i16>(), 0..300), chunk in 1usize..50) {
        let chunked = ChunkedList::from_values(values.iter().copied(), chunk);
        prop_assert_eq!(chunked.len(), values.len());
        let flat: Vec<i16> = chunked.iter().copied().collect();
        prop_assert_eq!(&flat, &values);
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(chunked.get(i), Some(&v));
        }
        // prefix structure is consistent
        let prefix = chunked.chunk_prefix();
        prop_assert_eq!(prefix.len(), chunked.num_chunks() + 1);
        prop_assert_eq!(*prefix.last().unwrap(), values.len());
        for (c, w) in prefix.windows(2).enumerate() {
            prop_assert_eq!(w[1] - w[0], chunked.chunk(c).len());
        }
    }

    #[test]
    fn cursor_hops_equal_distance(n in 1usize..100, k in 0usize..120, seed in any::<u64>()) {
        let list = ListArena::from_values_shuffled(0..n as u32, seed);
        let mut c = list.cursor();
        c.advance_by(k);
        prop_assert_eq!(c.hops() as usize, k.min(n));
        prop_assert_eq!(c.get().is_some(), k < n);
    }
}
