//! Unified observability for the WHILE-loop parallelization stack.
//!
//! The paper's argument is a cost accounting: speculative
//! parallelization wins exactly when the measured overheads — backup and
//! time-stamping (`Tb`), dispatcher serialization and shadow marking
//! (`Td`), post-execution analysis and undo (`Ta`) — stay below the
//! parallelism they buy. This crate is the measuring instrument:
//!
//! * [`Event`] — one schema for everything the cost model charges for,
//!   emitted identically by the threaded runtime (`wlp-runtime`,
//!   `wlp-core`) and the discrete-event simulator (`wlp-sim`), so real
//!   and simulated traces of the same loop are directly comparable.
//! * [`Recorder`] — the sink trait instrumented code is generic over.
//!   [`NoopRecorder`] monomorphizes probes away entirely;
//!   [`BufferRecorder`] collects time-stamped samples into per-worker
//!   buffers.
//! * [`ProfileReport`] — per-processor busy/idle/lock-wait accounting,
//!   speculation success rate, and undo volume, aggregated from a
//!   [`Trace`] and serializable to JSON.
//! * [`chrome_trace`] — Chrome trace-event JSON for visual inspection in
//!   `chrome://tracing` or Perfetto.

#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod pad;
pub mod recorder;
pub mod report;

pub use chrome::chrome_trace;
pub use event::{AbortReason, Event, Sample, StrategyChoice, Trace};
pub use pad::CachePadded;
pub use recorder::{BufferRecorder, NoopRecorder, Recorder};
pub use report::{ProcProfile, ProfileReport};
