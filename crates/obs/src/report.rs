//! Trace aggregation into a [`ProfileReport`].

use crate::event::{Event, Trace};
use serde::Serialize;

/// Per-processor time accounting, in the trace's unit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ProcProfile {
    /// Processor id.
    pub proc: usize,
    /// Busy time: sum of the `cost`/`hold` fields of this processor's
    /// events.
    pub busy: u64,
    /// Time blocked on locks or window admission.
    pub lock_wait: u64,
    /// Remainder of the makespan: `makespan − busy − lock_wait`
    /// (saturating; [`ProfileReport::check_conservation`] flags the
    /// overflow case where busy + wait exceeds the makespan).
    pub idle: u64,
}

/// Aggregated profile of one recorded execution, computed from a
/// [`Trace`] by [`ProfileReport::from_trace`]. Serializes to JSON via
/// [`ProfileReport::to_json`].
#[derive(Debug, Clone, Serialize)]
pub struct ProfileReport {
    /// Processor count.
    pub p: usize,
    /// End-to-end duration of the recorded region.
    pub makespan: u64,
    /// Per-processor busy/wait/idle breakdown.
    pub procs: Vec<ProcProfile>,
    /// Iterations claimed from the dispatcher.
    pub claimed: u64,
    /// Multi-iteration chunk grants issued by a chunked/guided
    /// self-scheduler (each grant covers ≥ 2 of the `claimed`
    /// iterations; 0 for one-at-a-time scheduling).
    pub chunk_grants: u64,
    /// Iteration bodies executed (valid + overshoot).
    pub executed: u64,
    /// Executed iterations whose effects were kept.
    pub committed: u64,
    /// Executed iterations whose effects were discarded.
    pub undone: u64,
    /// Elements restored by undo phases (the paper's undo volume, `Tb`'s
    /// restore side).
    pub undo_elems: u64,
    /// Elements checkpointed before speculation (`Tb`'s backup side).
    pub backup_elems: u64,
    /// Dispatcher `next()` hops.
    pub hops: u64,
    /// Total busy time across processors.
    pub busy_total: u64,
    /// Total lock/window wait across processors (the serialization
    /// component of `Td`).
    pub lock_wait_total: u64,
    /// Accesses marked into PD shadow structures during the loop.
    pub pd_marked: u64,
    /// Accesses examined by post-execution PD analysis (`Ta`).
    pub pd_analyzed: u64,
    /// Speculative executions that committed.
    pub spec_commits: u64,
    /// Speculative executions that aborted.
    pub spec_aborts: u64,
    /// Aborts caused by a detected cross-iteration dependence.
    pub aborts_dependence: u64,
    /// Aborts caused by an exception / contained worker fault (the paper's
    /// Section 5 rule: restore the checkpoint, re-execute sequentially).
    pub aborts_exception: u64,
    /// Aborts caused by a watchdog deadline expiry.
    pub aborts_timeout: u64,
    /// Aborts caused by an exhausted speculation (undo-log) budget.
    pub aborts_budget: u64,
    /// Watchdog expiries observed (`TimeoutAbort` events). Every expiry
    /// that interrupts a speculation also produces one
    /// `SpecAbort{Timeout}`, so usually `timeouts == aborts_timeout`; a
    /// bare governed DOALL can time out without a speculative abort.
    pub timeouts: u64,
    /// Governor demotions observed.
    pub demotions: u64,
    /// Governor re-promotions observed.
    pub repromotions: u64,
    /// QUIT broadcasts observed.
    pub quits: u64,
    /// Barrier episodes observed (summed over processors).
    pub barriers: u64,
    /// Window resize decisions observed.
    pub window_resizes: u64,
    /// Certificate-cache lookups that skipped parse + analysis.
    pub cache_hits: u64,
    /// Certificate-cache lookups that had to run the full front-end.
    pub cache_misses: u64,
    /// Regions admitted by the region scheduler.
    pub regions_admitted: u64,
    /// Region submissions rejected by admission control (backpressure).
    pub regions_rejected: u64,
    /// Service requests that missed their end-to-end deadline (or whose
    /// client vanished) and were aborted with a retriable `timeout`.
    pub request_timeouts: u64,
    /// Service drain phases entered (graceful shutdown).
    pub drains: u64,
    /// Per-tenant circuit-breaker trips (openings only; half-open
    /// recoveries emit a `circuit_trip` event but are not counted here).
    pub circuit_trips: u64,
    /// Snapshots written by the persistent certificate store (journal
    /// compactions and explicit snapshots).
    pub snapshot_writes: u64,
    /// Certificate records appended to the crash-safe journal.
    pub journal_appends: u64,
    /// Records skipped by warm-restart recovery (torn tail, failed CRC,
    /// hash/certificate mismatch) — summed over `recovery_skip` events.
    pub recovery_skips: u64,
    /// Total samples aggregated.
    pub samples: u64,
}

impl ProfileReport {
    /// Aggregates a trace.
    ///
    /// Accounting rules: busy and wait are summed from each event's own
    /// duration fields; `committed`/`undone` come from `SpecCommit`/
    /// `SpecAbort` events when present, otherwise from explicit
    /// `IterUndone` events (so a plain non-speculative run reports
    /// `committed == executed`).
    pub fn from_trace(trace: &Trace) -> Self {
        let mut busy = vec![0u64; trace.p];
        let mut wait = vec![0u64; trace.p];
        let mut r = ProfileReport {
            p: trace.p,
            makespan: trace.makespan,
            procs: Vec::new(),
            claimed: 0,
            chunk_grants: 0,
            executed: 0,
            committed: 0,
            undone: 0,
            undo_elems: 0,
            backup_elems: 0,
            hops: 0,
            busy_total: 0,
            lock_wait_total: 0,
            pd_marked: 0,
            pd_analyzed: 0,
            spec_commits: 0,
            spec_aborts: 0,
            aborts_dependence: 0,
            aborts_exception: 0,
            aborts_timeout: 0,
            aborts_budget: 0,
            timeouts: 0,
            demotions: 0,
            repromotions: 0,
            quits: 0,
            barriers: 0,
            window_resizes: 0,
            cache_hits: 0,
            cache_misses: 0,
            regions_admitted: 0,
            regions_rejected: 0,
            request_timeouts: 0,
            drains: 0,
            circuit_trips: 0,
            snapshot_writes: 0,
            journal_appends: 0,
            recovery_skips: 0,
            samples: trace.samples.len() as u64,
        };
        let mut iter_undone = 0u64;
        let mut spec_committed = 0u64;
        let mut spec_undone = 0u64;
        for s in &trace.samples {
            let p = (s.proc as usize).min(trace.p - 1);
            busy[p] += s.event.busy_cost();
            wait[p] += s.event.wait_time();
            match s.event {
                Event::IterClaimed { .. } => r.claimed += 1,
                Event::ChunkClaimed { .. } => r.chunk_grants += 1,
                Event::IterExecuted { .. } => r.executed += 1,
                Event::IterUndone { .. } => iter_undone += 1,
                Event::NextHop { hops, .. } => r.hops += hops,
                Event::PdMark { accesses, .. } => r.pd_marked += accesses,
                Event::PdAnalyze { accesses, .. } => r.pd_analyzed += accesses,
                Event::Backup { elems, .. } => r.backup_elems += elems,
                Event::UndoRestore { elems, .. } => r.undo_elems += elems,
                Event::SpecCommit { committed, undone } => {
                    r.spec_commits += 1;
                    spec_committed += committed;
                    spec_undone += undone;
                }
                Event::SpecAbort { reason, discarded } => {
                    r.spec_aborts += 1;
                    match reason {
                        crate::event::AbortReason::Dependence => r.aborts_dependence += 1,
                        crate::event::AbortReason::Exception => r.aborts_exception += 1,
                        crate::event::AbortReason::Timeout => r.aborts_timeout += 1,
                        crate::event::AbortReason::Budget => r.aborts_budget += 1,
                    }
                    spec_undone += discarded;
                }
                Event::TimeoutAbort { .. } => r.timeouts += 1,
                Event::Demote { .. } => r.demotions += 1,
                Event::Repromote { .. } => r.repromotions += 1,
                Event::Quit { .. } => r.quits += 1,
                Event::Barrier { .. } => r.barriers += 1,
                Event::WindowResize { .. } => r.window_resizes += 1,
                Event::CertCacheHit { .. } => r.cache_hits += 1,
                Event::CertCacheMiss { .. } => r.cache_misses += 1,
                Event::RegionAdmit { .. } => r.regions_admitted += 1,
                Event::RegionReject { .. } => r.regions_rejected += 1,
                Event::RequestTimeout { .. } => r.request_timeouts += 1,
                Event::Drain { .. } => r.drains += 1,
                Event::CircuitTrip { open } => r.circuit_trips += u64::from(open),
                Event::SnapshotWrite { .. } => r.snapshot_writes += 1,
                Event::JournalAppend { .. } => r.journal_appends += 1,
                Event::RecoverySkip { records } => r.recovery_skips += records,
                Event::TermTest { .. } | Event::LockWait { .. } | Event::LockAcquire { .. } => {}
            }
        }
        if r.spec_commits + r.spec_aborts > 0 {
            r.committed = spec_committed;
            r.undone = spec_undone;
        } else {
            r.undone = iter_undone;
            r.committed = r.executed.saturating_sub(iter_undone);
        }
        r.busy_total = busy.iter().sum();
        r.lock_wait_total = wait.iter().sum();
        r.procs = (0..trace.p)
            .map(|i| ProcProfile {
                proc: i,
                busy: busy[i],
                lock_wait: wait[i],
                idle: trace.makespan.saturating_sub(busy[i] + wait[i]),
            })
            .collect();
        r
    }

    /// Fraction of speculative executions that committed, `None` when no
    /// speculation ran.
    pub fn spec_success_rate(&self) -> Option<f64> {
        let total = self.spec_commits + self.spec_aborts;
        (total > 0).then(|| self.spec_commits as f64 / total as f64)
    }

    /// Machine utilization in `[0, 1]`: busy time over `p × makespan`.
    pub fn utilization(&self) -> f64 {
        let denom = (self.p as u64).saturating_mul(self.makespan).max(1);
        self.busy_total as f64 / denom as f64
    }

    /// Verifies the report's conservation laws:
    ///
    /// * per processor, `busy + lock_wait + idle == makespan`;
    /// * `committed + undone == executed`;
    /// * the per-reason abort counters partition `spec_aborts`;
    /// * every timeout-driven speculative abort has its watchdog expiry
    ///   (`aborts_timeout ≤ timeouts`).
    ///
    /// Returns a description of the first violated law.
    pub fn check_conservation(&self) -> Result<(), String> {
        for pp in &self.procs {
            let total = pp.busy + pp.lock_wait + pp.idle;
            if total != self.makespan {
                return Err(format!(
                    "proc {}: busy {} + wait {} + idle {} = {} != makespan {}",
                    pp.proc, pp.busy, pp.lock_wait, pp.idle, total, self.makespan
                ));
            }
        }
        if self.committed + self.undone != self.executed {
            return Err(format!(
                "committed {} + undone {} != executed {}",
                self.committed, self.undone, self.executed
            ));
        }
        let by_reason = self.aborts_dependence
            + self.aborts_exception
            + self.aborts_timeout
            + self.aborts_budget;
        if by_reason != self.spec_aborts {
            return Err(format!(
                "abort reasons {} (dep {} + exc {} + timeout {} + budget {}) != spec_aborts {}",
                by_reason,
                self.aborts_dependence,
                self.aborts_exception,
                self.aborts_timeout,
                self.aborts_budget,
                self.spec_aborts
            ));
        }
        if self.aborts_timeout > self.timeouts {
            return Err(format!(
                "aborts_timeout {} exceeds observed watchdog expiries {}",
                self.aborts_timeout, self.timeouts
            ));
        }
        Ok(())
    }

    /// Renders the report as a JSON object (via the workspace serde).
    pub fn to_json(&self) -> String {
        serde::json::to_string(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Sample;

    fn sample(t: u64, proc: u32, event: Event) -> Sample {
        Sample { t, proc, event }
    }

    #[test]
    fn aggregates_and_conserves() {
        let trace = Trace {
            p: 2,
            makespan: 100,
            samples: vec![
                sample(5, 0, Event::IterClaimed { iter: 0, cost: 2 }),
                sample(45, 0, Event::IterExecuted { iter: 0, cost: 40 }),
                sample(20, 1, Event::LockWait { dur: 20 }),
                sample(60, 1, Event::IterExecuted { iter: 1, cost: 40 }),
                sample(61, 1, Event::Quit { iter: 1 }),
            ],
        };
        let r = ProfileReport::from_trace(&trace);
        assert_eq!(r.executed, 2);
        assert_eq!(r.committed, 2);
        assert_eq!(r.undone, 0);
        assert_eq!(r.procs[0].busy, 42);
        assert_eq!(r.procs[1].lock_wait, 20);
        assert_eq!(r.procs[1].idle, 100 - 40 - 20);
        assert_eq!(r.quits, 1);
        r.check_conservation().expect("laws hold");
        assert!(r.spec_success_rate().is_none());
        let json = r.to_json();
        assert!(json.contains("\"makespan\":100"), "{json}");
    }

    #[test]
    fn speculation_accounting_uses_commit_events() {
        let trace = Trace {
            p: 1,
            makespan: 50,
            samples: vec![
                sample(10, 0, Event::IterExecuted { iter: 0, cost: 10 }),
                sample(20, 0, Event::IterExecuted { iter: 1, cost: 10 }),
                sample(30, 0, Event::IterExecuted { iter: 2, cost: 10 }),
                sample(40, 0, Event::UndoRestore { elems: 4, cost: 5 }),
                sample(
                    41,
                    0,
                    Event::SpecCommit {
                        committed: 2,
                        undone: 1,
                    },
                ),
            ],
        };
        let r = ProfileReport::from_trace(&trace);
        assert_eq!((r.committed, r.undone, r.executed), (2, 1, 3));
        assert_eq!(r.undo_elems, 4);
        assert_eq!(r.spec_success_rate(), Some(1.0));
        r.check_conservation().expect("laws hold");
    }

    #[test]
    fn abort_reasons_are_split_out() {
        use crate::event::AbortReason;
        let trace = Trace {
            p: 1,
            makespan: 30,
            samples: vec![
                sample(
                    10,
                    0,
                    Event::SpecAbort {
                        reason: AbortReason::Dependence,
                        discarded: 3,
                    },
                ),
                sample(
                    20,
                    0,
                    Event::SpecAbort {
                        reason: AbortReason::Exception,
                        discarded: 2,
                    },
                ),
                sample(
                    25,
                    0,
                    Event::SpecAbort {
                        reason: AbortReason::Exception,
                        discarded: 0,
                    },
                ),
            ],
        };
        let r = ProfileReport::from_trace(&trace);
        assert_eq!(r.spec_aborts, 3);
        assert_eq!(r.aborts_dependence, 1);
        assert_eq!(r.aborts_exception, 2);
        assert_eq!(r.spec_success_rate(), Some(0.0));
    }

    #[test]
    fn governor_counters_aggregate_and_conserve() {
        use crate::event::{AbortReason, StrategyChoice};
        let trace = Trace {
            p: 1,
            makespan: 40,
            samples: vec![
                sample(5, 0, Event::TimeoutAbort { vpn: 2, elapsed: 5 }),
                sample(
                    6,
                    0,
                    Event::SpecAbort {
                        reason: AbortReason::Timeout,
                        discarded: 0,
                    },
                ),
                sample(
                    7,
                    0,
                    Event::Demote {
                        from: StrategyChoice::Speculative,
                        to: StrategyChoice::Windowed,
                    },
                ),
                sample(10, 0, Event::IterExecuted { iter: 0, cost: 3 }),
                sample(13, 0, Event::IterExecuted { iter: 1, cost: 3 }),
                sample(16, 0, Event::IterExecuted { iter: 2, cost: 3 }),
                sample(19, 0, Event::IterExecuted { iter: 3, cost: 3 }),
                sample(
                    20,
                    0,
                    Event::SpecAbort {
                        reason: AbortReason::Budget,
                        discarded: 4,
                    },
                ),
                sample(
                    30,
                    0,
                    Event::Repromote {
                        from: StrategyChoice::Windowed,
                        to: StrategyChoice::Speculative,
                    },
                ),
            ],
        };
        let r = ProfileReport::from_trace(&trace);
        assert_eq!(r.timeouts, 1);
        assert_eq!(r.aborts_timeout, 1);
        assert_eq!(r.aborts_budget, 1);
        assert_eq!(r.demotions, 1);
        assert_eq!(r.repromotions, 1);
        assert_eq!(r.spec_aborts, 2);
        r.check_conservation().expect("laws hold");
        let json = r.to_json();
        assert!(json.contains("\"timeouts\":1"), "{json}");
        assert!(json.contains("\"demotions\":1"), "{json}");
    }

    #[test]
    fn service_lifecycle_events_aggregate() {
        let trace = Trace {
            p: 1,
            makespan: 20,
            samples: vec![
                sample(2, 0, Event::RequestTimeout { queued: true }),
                sample(4, 0, Event::RequestTimeout { queued: false }),
                sample(6, 0, Event::CircuitTrip { open: true }),
                sample(8, 0, Event::CircuitTrip { open: false }),
                sample(10, 0, Event::Drain { in_flight: 3 }),
            ],
        };
        let r = ProfileReport::from_trace(&trace);
        assert_eq!(r.request_timeouts, 2);
        assert_eq!(r.circuit_trips, 1, "only openings count as trips");
        assert_eq!(r.drains, 1);
        r.check_conservation().expect("laws hold");
        let json = r.to_json();
        assert!(json.contains("\"request_timeouts\":2"), "{json}");
    }

    #[test]
    fn persistence_events_aggregate() {
        let trace = Trace {
            p: 1,
            makespan: 20,
            samples: vec![
                sample(2, 0, Event::JournalAppend { bytes: 96 }),
                sample(4, 0, Event::JournalAppend { bytes: 120 }),
                sample(6, 0, Event::SnapshotWrite { records: 5 }),
                sample(8, 0, Event::RecoverySkip { records: 3 }),
            ],
        };
        let r = ProfileReport::from_trace(&trace);
        assert_eq!(r.journal_appends, 2);
        assert_eq!(r.snapshot_writes, 1);
        assert_eq!(r.recovery_skips, 3, "skips sum the per-event record counts");
        r.check_conservation().expect("laws hold");
        let json = r.to_json();
        assert!(json.contains("\"journal_appends\":2"), "{json}");
    }

    #[test]
    fn conservation_rejects_unattributed_aborts() {
        use crate::event::AbortReason;
        let mut r = ProfileReport::from_trace(&Trace {
            p: 1,
            makespan: 10,
            samples: vec![sample(
                5,
                0,
                Event::SpecAbort {
                    reason: AbortReason::Timeout,
                    discarded: 0,
                },
            )],
        });
        // a timeout abort with no watchdog expiry violates the law
        assert!(r.check_conservation().is_err());
        r.timeouts = 1;
        r.check_conservation().expect("now consistent");
        // an abort not attributed to any reason violates the partition
        r.spec_aborts += 1;
        assert!(r.check_conservation().is_err());
    }

    #[test]
    fn conservation_flags_overcommitted_processor() {
        let trace = Trace {
            p: 1,
            makespan: 10,
            samples: vec![sample(9, 0, Event::IterExecuted { iter: 0, cost: 30 })],
        };
        let r = ProfileReport::from_trace(&trace);
        assert!(r.check_conservation().is_err());
    }
}
