//! The shared event schema.
//!
//! One vocabulary for everything the paper's cost model charges for:
//! iteration claim/execute/undo, dispatcher hops, lock traffic, PD
//! marking and analysis, checkpoint/undo volume, speculation verdicts,
//! QUIT broadcasts, window resizes, and barriers. Both the threaded
//! runtime and the discrete-event simulator emit **exactly this type**,
//! so a real trace and a simulated trace of the same loop diff directly.
//!
//! Time units differ by domain and are carried by [`Sample::t`]: the
//! threaded runtime stamps nanoseconds since the recorder's epoch, the
//! simulator stamps virtual cycles. Events that represent time spent
//! carry their own duration in the same unit (`cost` for busy work,
//! `dur` for waiting), which is what the profile aggregation sums.

use serde::Serialize;

/// Why a speculative parallel execution was abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum AbortReason {
    /// The PD test found a cross-iteration dependence.
    Dependence,
    /// An iteration body signalled an exception under speculation.
    Exception,
    /// A watchdog deadline expired before the region finished.
    Timeout,
    /// The speculation's undo-log budget was exhausted.
    Budget,
}

/// One rung of the adaptive governor's strategy ladder, shared between
/// the static cost model (`wlp-core`), the runtime governor
/// (`wlp-runtime`), and the simulator mirror — demotion decisions and
/// cost-model decisions speak the same vocabulary.
///
/// The ladder is ordered from most to least speculative; [`demoted`]
/// steps one rung down and [`Sequential`](StrategyChoice::Sequential)
/// is terminal.
///
/// [`demoted`]: StrategyChoice::demoted
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum StrategyChoice {
    /// Full speculative parallel execution (backups, stamps, PD test).
    Speculative,
    /// Windowed/strip speculation: the in-flight span (and with it the
    /// undo memory and overshoot) is bounded by a window.
    Windowed,
    /// Loop distribution: the dispatcher is evaluated sequentially, the
    /// remainder runs as a DOALL — no speculation to abort.
    Distribution,
    /// Plain sequential execution; never fails, terminal.
    Sequential,
}

impl StrategyChoice {
    /// The next rung down the ladder (`Sequential` demotes to itself).
    pub fn demoted(self) -> StrategyChoice {
        match self {
            StrategyChoice::Speculative => StrategyChoice::Windowed,
            StrategyChoice::Windowed => StrategyChoice::Distribution,
            StrategyChoice::Distribution | StrategyChoice::Sequential => StrategyChoice::Sequential,
        }
    }

    /// The next rung up the ladder (`Speculative` promotes to itself).
    pub fn promoted(self) -> StrategyChoice {
        match self {
            StrategyChoice::Speculative | StrategyChoice::Windowed => StrategyChoice::Speculative,
            StrategyChoice::Distribution => StrategyChoice::Windowed,
            StrategyChoice::Sequential => StrategyChoice::Distribution,
        }
    }

    /// Short stable name (trace labels, JSON artifacts).
    pub fn name(&self) -> &'static str {
        match self {
            StrategyChoice::Speculative => "speculative",
            StrategyChoice::Windowed => "windowed",
            StrategyChoice::Distribution => "distribution",
            StrategyChoice::Sequential => "sequential",
        }
    }
}

/// One observable action, shared between the threaded runtime and the
/// simulator. See the module docs for the unit conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Event {
    /// An iteration was claimed from the dispatcher; `cost` is the claim
    /// overhead charged (0 where the claim is a single atomic increment).
    IterClaimed {
        /// Iteration index.
        iter: u64,
        /// Busy time spent claiming.
        cost: u64,
    },
    /// A chunk of consecutive iterations was granted by the dispatcher in
    /// one claim (chunked/guided self-scheduling); grants of one iteration
    /// are reported as plain [`Event::IterClaimed`].
    ChunkClaimed {
        /// First iteration of the grant.
        lo: u64,
        /// Number of consecutive iterations granted (≥ 2).
        len: u64,
        /// Busy time spent claiming the chunk.
        cost: u64,
    },
    /// An iteration body finished; `cost` is the body's busy time.
    IterExecuted {
        /// Iteration index.
        iter: u64,
        /// Busy time of the body (including per-iteration bookkeeping).
        cost: u64,
    },
    /// A terminator-only evaluation (RI early exit): the iteration tested
    /// the WHILE condition and stopped without running a body.
    TermTest {
        /// Iteration index.
        iter: u64,
        /// Busy time of the test.
        cost: u64,
    },
    /// An executed iteration was discarded (overshoot or failed
    /// speculation).
    IterUndone {
        /// Iteration index.
        iter: u64,
    },
    /// `next()` dispatcher hops performed (batched per claim or per
    /// worker).
    NextHop {
        /// Number of pointer-chase hops.
        hops: u64,
        /// Busy time spent hopping.
        cost: u64,
    },
    /// Time spent blocked on a scheduling resource — a dispatcher lock or
    /// window admission (the paper's dispatcher-serialization component
    /// of `Td`).
    LockWait {
        /// Wait duration (idle, not busy).
        dur: u64,
    },
    /// A lock was acquired and held; `hold` is busy time inside the
    /// critical section.
    LockAcquire {
        /// Busy time holding the lock.
        hold: u64,
    },
    /// Shadow-array marking during the loop (`Td`'s PD component).
    PdMark {
        /// Accesses marked.
        accesses: u64,
        /// Busy time spent marking.
        cost: u64,
    },
    /// Post-execution PD analysis (`Ta`).
    PdAnalyze {
        /// Accesses analyzed.
        accesses: u64,
        /// Busy time of the analysis.
        cost: u64,
    },
    /// Checkpoint copy before a speculative run (`Tb`).
    Backup {
        /// Elements backed up.
        elems: u64,
        /// Busy time of the copy.
        cost: u64,
    },
    /// Undo of overshot/aborted writes (`Tb`'s restore side — undo
    /// volume).
    UndoRestore {
        /// Elements restored.
        elems: u64,
        /// Busy time of the restore.
        cost: u64,
    },
    /// A speculative parallel execution committed.
    SpecCommit {
        /// Iterations whose effects were kept.
        committed: u64,
        /// Executed iterations discarded as overshoot.
        undone: u64,
    },
    /// A speculative parallel execution aborted.
    SpecAbort {
        /// Why the speculation failed.
        reason: AbortReason,
        /// Executed iterations whose effects were discarded.
        discarded: u64,
    },
    /// A watchdog deadline expired: the region was cancelled because the
    /// lane on `vpn` had not finished after `elapsed` time units.
    TimeoutAbort {
        /// Virtual processor of the overdue lane.
        vpn: u64,
        /// Time the lane had been running when the watchdog fired, in
        /// the trace's unit.
        elapsed: u64,
    },
    /// The governor demoted the strategy ladder after a failure storm.
    Demote {
        /// Rung the loop was running on.
        from: StrategyChoice,
        /// Rung it runs on from now.
        to: StrategyChoice,
    },
    /// The governor re-promoted after a successful probe period.
    Repromote {
        /// Rung the loop was running on.
        from: StrategyChoice,
        /// Rung it runs on from now.
        to: StrategyChoice,
    },
    /// A QUIT was broadcast: iteration `iter` requested termination.
    Quit {
        /// The quitting iteration.
        iter: u64,
    },
    /// The sliding window (Section 8.2) was resized.
    WindowResize {
        /// New window span in iterations.
        window: u64,
    },
    /// A synchronization barrier episode; `cost` is the per-processor
    /// barrier charge.
    Barrier {
        /// Busy time charged for the barrier.
        cost: u64,
    },
    /// A certificate-cache lookup found a cached analysis for the program
    /// hash `key` — parse and static analysis were skipped entirely.
    CertCacheHit {
        /// Content hash of the program the lookup was keyed by.
        key: u64,
    },
    /// A certificate-cache lookup missed: the program had to be parsed
    /// and analyzed (and the result was inserted for the next request).
    CertCacheMiss {
        /// Content hash of the program the lookup was keyed by.
        key: u64,
    },
    /// A loop region was admitted by the region scheduler and dispatched
    /// onto a worker lane.
    RegionAdmit {
        /// The scheduler lane the region ran on.
        lane: u64,
    },
    /// A region submission was rejected by admission control
    /// (backpressure); the client is told to retry later.
    RegionReject {
        /// Whether the rejection is retriable (tenant cap / hot budget /
        /// queue depth) as opposed to a permanent refusal.
        retriable: bool,
    },
    /// A service request missed its end-to-end deadline (or its client
    /// vanished) and was aborted: lane returned, credits refunded, and a
    /// retriable `timeout` error answered.
    RequestTimeout {
        /// Whether the request expired while still queued for a lane
        /// (`true`) or after execution had started (`false`).
        queued: bool,
    },
    /// The service entered its drain phase: no new work is admitted,
    /// in-flight requests run to completion under the drain deadline.
    Drain {
        /// Requests still in flight when the drain began.
        in_flight: u64,
    },
    /// A per-tenant circuit breaker changed state.
    CircuitTrip {
        /// `true` when the breaker opened (trip), `false` when a
        /// half-open probe closed it again (recovery).
        open: bool,
    },
    /// The persistent certificate store wrote a snapshot (journal
    /// compaction or explicit snapshot): the resident working set was
    /// written to a temp file, fsynced, and atomically renamed over the
    /// previous snapshot.
    SnapshotWrite {
        /// Records the snapshot contains.
        records: u64,
    },
    /// A certificate record was appended to the crash-safe journal
    /// (a cache miss whose certificate is now durable).
    JournalAppend {
        /// Framed bytes appended (header + payload).
        bytes: u64,
    },
    /// Warm-restart recovery skipped records it could not trust — torn
    /// tail, failed CRC, content-hash mismatch, undecodable certificate,
    /// or a certificate that no longer matches re-analysis. Skipping is
    /// the designed response to corruption; the records are simply
    /// re-certified (and re-journaled) on their next request.
    RecoverySkip {
        /// Records skipped during this recovery.
        records: u64,
    },
}

impl Event {
    /// Short stable name of the event kind (used for trace labels and
    /// cross-domain diffing).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::IterClaimed { .. } => "iter_claimed",
            Event::ChunkClaimed { .. } => "chunk_claimed",
            Event::IterExecuted { .. } => "iter_executed",
            Event::TermTest { .. } => "term_test",
            Event::IterUndone { .. } => "iter_undone",
            Event::NextHop { .. } => "next_hop",
            Event::LockWait { .. } => "lock_wait",
            Event::LockAcquire { .. } => "lock_acquire",
            Event::PdMark { .. } => "pd_mark",
            Event::PdAnalyze { .. } => "pd_analyze",
            Event::Backup { .. } => "backup",
            Event::UndoRestore { .. } => "undo_restore",
            Event::SpecCommit { .. } => "spec_commit",
            Event::SpecAbort { .. } => "spec_abort",
            Event::TimeoutAbort { .. } => "timeout_abort",
            Event::Demote { .. } => "demote",
            Event::Repromote { .. } => "repromote",
            Event::Quit { .. } => "quit",
            Event::WindowResize { .. } => "window_resize",
            Event::Barrier { .. } => "barrier",
            Event::CertCacheHit { .. } => "cert_cache_hit",
            Event::CertCacheMiss { .. } => "cert_cache_miss",
            Event::RegionAdmit { .. } => "region_admit",
            Event::RegionReject { .. } => "region_reject",
            Event::RequestTimeout { .. } => "request_timeout",
            Event::Drain { .. } => "drain",
            Event::CircuitTrip { .. } => "circuit_trip",
            Event::SnapshotWrite { .. } => "snapshot_write",
            Event::JournalAppend { .. } => "journal_append",
            Event::RecoverySkip { .. } => "recovery_skip",
        }
    }

    /// Busy time this event accounts for (0 for instantaneous events and
    /// waits).
    pub fn busy_cost(&self) -> u64 {
        match *self {
            Event::IterClaimed { cost, .. }
            | Event::ChunkClaimed { cost, .. }
            | Event::IterExecuted { cost, .. }
            | Event::TermTest { cost, .. }
            | Event::NextHop { cost, .. }
            | Event::PdMark { cost, .. }
            | Event::PdAnalyze { cost, .. }
            | Event::Backup { cost, .. }
            | Event::UndoRestore { cost, .. }
            | Event::Barrier { cost } => cost,
            Event::LockAcquire { hold } => hold,
            _ => 0,
        }
    }

    /// Wait (idle-while-blocked) time this event accounts for.
    pub fn wait_time(&self) -> u64 {
        match *self {
            Event::LockWait { dur } => dur,
            _ => 0,
        }
    }
}

/// A time-stamped, processor-attributed [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Sample {
    /// Timestamp at which the event *completed*, in the trace's unit
    /// (nanoseconds for the threaded runtime, cycles for the simulator).
    pub t: u64,
    /// Worker / virtual processor the event occurred on.
    pub proc: u32,
    /// The event itself.
    pub event: Event,
}

/// A complete recorded execution: processor count, end-to-end makespan,
/// and every sample, in one unit domain.
#[derive(Debug, Clone, Serialize)]
pub struct Trace {
    /// Number of processors/workers.
    pub p: usize,
    /// End-to-end duration of the recorded region, same unit as sample
    /// timestamps.
    pub makespan: u64,
    /// All recorded samples (per-worker order preserved; cross-worker
    /// order is merged by timestamp only on export).
    pub samples: Vec<Sample>,
}

impl Trace {
    /// Counts samples of each event kind, sorted by kind name — the
    /// domain-independent shape of an execution, used by
    /// `examples/trace.rs` to diff a threaded trace against a simulated
    /// one.
    pub fn kind_histogram(&self) -> Vec<(&'static str, u64)> {
        let mut counts: Vec<(&'static str, u64)> = Vec::new();
        for s in &self.samples {
            let k = s.event.kind();
            match counts.iter_mut().find(|(n, _)| *n == k) {
                Some((_, c)) => *c += 1,
                None => counts.push((k, 1)),
            }
        }
        counts.sort_by_key(|&(n, _)| n);
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_and_wait_partition_event_kinds() {
        let busy = Event::IterExecuted { iter: 3, cost: 40 };
        let wait = Event::LockWait { dur: 9 };
        let instant = Event::Quit { iter: 3 };
        assert_eq!(busy.busy_cost(), 40);
        assert_eq!(busy.wait_time(), 0);
        assert_eq!(wait.busy_cost(), 0);
        assert_eq!(wait.wait_time(), 9);
        assert_eq!(instant.busy_cost(), 0);
        assert_eq!(instant.wait_time(), 0);
    }

    #[test]
    fn histogram_counts_kinds() {
        let t = Trace {
            p: 1,
            makespan: 10,
            samples: vec![
                Sample {
                    t: 1,
                    proc: 0,
                    event: Event::Quit { iter: 0 },
                },
                Sample {
                    t: 2,
                    proc: 0,
                    event: Event::Quit { iter: 1 },
                },
                Sample {
                    t: 3,
                    proc: 0,
                    event: Event::Barrier { cost: 0 },
                },
            ],
        };
        assert_eq!(t.kind_histogram(), vec![("barrier", 1), ("quit", 2)]);
    }
}
