//! Event sinks: the zero-cost [`NoopRecorder`] and the buffering
//! [`BufferRecorder`].

use crate::event::{Event, Sample, Trace};
use crate::pad::CachePadded;
use parking_lot::Mutex;
use std::time::Instant;

/// An event sink that instrumented code reports into.
///
/// Instrumentation sites are generic over `R: Recorder` and guard every
/// probe with `if R::ENABLED { ... }`. `ENABLED` is an associated
/// constant, so with [`NoopRecorder`] the branch — including any
/// clock reads feeding it — is folded away at monomorphization time:
/// the uninstrumented entry points compile to the same code as before
/// the observability layer existed.
pub trait Recorder: Sync {
    /// Whether this recorder keeps events. `false` turns every probe
    /// into dead code.
    const ENABLED: bool = true;

    /// Records `event` as having completed now on worker `proc`.
    fn record(&self, proc: usize, event: Event);
}

/// The do-nothing recorder: discards everything, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&self, _proc: usize, _event: Event) {}
}

/// Per-worker sample buffers with wall-clock timestamps.
///
/// Each worker appends to its own buffer, so the per-buffer mutex is
/// uncontended on the hot path (workers never touch each other's
/// buffers; the lock only matters at [`BufferRecorder::finish`] time).
/// The buffers are cache-line-padded: without padding the adjacent
/// mutex words false-share a line, and the per-sample lock/unlock on
/// worker A invalidates worker B's line even though they never touch
/// the same buffer — the counters feeding [`ProfileReport`] would then
/// measure coherence traffic of the instrument itself.
/// Timestamps are nanoseconds since the recorder's creation, which makes
/// `finish()`'s makespan and the sample times share one epoch.
///
/// [`ProfileReport`]: crate::report::ProfileReport
#[derive(Debug)]
pub struct BufferRecorder {
    epoch: Instant,
    buffers: Vec<CachePadded<Mutex<Vec<Sample>>>>,
}

impl BufferRecorder {
    /// A recorder for `p` workers, with its epoch set to now.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "need at least one worker");
        BufferRecorder {
            epoch: Instant::now(),
            buffers: (0..p)
                .map(|_| CachePadded::new(Mutex::new(Vec::new())))
                .collect(),
        }
    }

    /// Nanoseconds since the recorder's epoch.
    #[inline]
    pub fn elapsed(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Number of workers this recorder was sized for.
    pub fn workers(&self) -> usize {
        self.buffers.len()
    }

    /// Closes the recording region: makespan becomes the elapsed time at
    /// this call, and all per-worker buffers are merged into a [`Trace`]
    /// sorted by timestamp.
    pub fn finish(self) -> Trace {
        let makespan = self.elapsed();
        let p = self.buffers.len();
        let mut samples: Vec<Sample> = Vec::new();
        for buf in self.buffers {
            samples.extend(buf.into_inner().into_inner());
        }
        samples.sort_by_key(|s| s.t);
        Trace {
            p,
            makespan,
            samples,
        }
    }
}

impl Recorder for BufferRecorder {
    fn record(&self, proc: usize, event: Event) {
        let t = self.elapsed();
        self.buffers[proc].lock().push(Sample {
            t,
            proc: proc as u32,
            event,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_recorder_collects_and_orders() {
        let rec = BufferRecorder::new(2);
        rec.record(1, Event::IterClaimed { iter: 0, cost: 0 });
        rec.record(0, Event::IterExecuted { iter: 0, cost: 5 });
        rec.record(1, Event::Quit { iter: 0 });
        let trace = rec.finish();
        assert_eq!(trace.samples.len(), 3);
        assert!(trace.samples.windows(2).all(|w| w[0].t <= w[1].t));
        assert!(trace.makespan >= trace.samples.last().unwrap().t);
        assert!(trace.p >= 2);
    }

    #[test]
    fn noop_recorder_is_disabled() {
        const { assert!(!NoopRecorder::ENABLED) };
        const { assert!(BufferRecorder::ENABLED) };
        NoopRecorder.record(0, Event::Quit { iter: 1 }); // must not panic
    }
}
