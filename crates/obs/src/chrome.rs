//! Chrome trace-event JSON export.
//!
//! The output loads in `chrome://tracing` / [Perfetto]: one row per
//! processor, complete (`"X"`) slices for events that consumed time,
//! instant (`"i"`) marks for everything else. Timestamps are emitted in
//! the trace's own unit (nanoseconds for threaded traces, virtual cycles
//! for simulated ones) — both viewers only require monotone numbers.
//!
//! [Perfetto]: https://ui.perfetto.dev

use crate::event::Trace;
use serde::{Serialize, Value};

/// Renders `trace` as Chrome trace-event JSON (the `traceEvents` array
/// format).
pub fn chrome_trace(trace: &Trace) -> String {
    let mut events: Vec<Value> = Vec::new();
    let mut samples: Vec<_> = trace.samples.iter().collect();
    samples.sort_by_key(|s| s.t);
    for s in samples {
        let span = s.event.busy_cost() + s.event.wait_time();
        let mut fields: Vec<(String, Value)> = vec![
            ("name".into(), Value::Str(s.event.kind().into())),
            ("pid".into(), Value::UInt(0)),
            ("tid".into(), Value::UInt(s.proc as u64)),
            ("args".into(), s.event.serialize()),
        ];
        if span > 0 {
            // Samples are stamped at completion; slices start earlier.
            fields.push(("ph".into(), Value::Str("X".into())));
            fields.push(("ts".into(), Value::UInt(s.t.saturating_sub(span))));
            fields.push(("dur".into(), Value::UInt(span)));
        } else {
            fields.push(("ph".into(), Value::Str("i".into())));
            fields.push(("ts".into(), Value::UInt(s.t)));
            fields.push(("s".into(), Value::Str("t".into())));
        }
        events.push(Value::Object(fields));
    }
    Value::Object(vec![
        ("traceEvents".into(), Value::Array(events)),
        ("displayTimeUnit".into(), Value::Str("ns".into())),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Sample};

    #[test]
    fn emits_slices_and_instants() {
        let trace = Trace {
            p: 1,
            makespan: 100,
            samples: vec![
                Sample {
                    t: 50,
                    proc: 0,
                    event: Event::IterExecuted { iter: 7, cost: 30 },
                },
                Sample {
                    t: 51,
                    proc: 0,
                    event: Event::Quit { iter: 7 },
                },
            ],
        };
        let json = chrome_trace(&trace);
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"dur\":30"), "{json}");
        assert!(
            json.contains("\"ts\":20"),
            "slice starts at completion - dur: {json}"
        );
        assert!(json.contains("\"ph\":\"i\""), "{json}");
    }
}
