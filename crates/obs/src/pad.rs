//! Cache-line padding for concurrently updated counters.
//!
//! The lock-free hot paths of this workspace (claim counters, QUIT
//! bounds, per-lane cursors, work-stealing deque ends) are single words
//! updated by different workers. Left adjacent in memory they share
//! cache lines, and every relaxed `fetch_add` becomes a coherence-miss
//! ping-pong — the measured `Td` dispatcher overhead the paper says must
//! shrink for self-scheduling to pay off. [`CachePadded`] rounds a value
//! up to its own 64-byte line so neighbouring counters stop false
//! sharing.

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 64 bytes (one cache line on x86-64 and
/// most aarch64 parts; on the handful of 128-byte-line machines two
/// padded values still never share a line with a *third* counter, which
/// is the failure mode that matters for the claim/stamp paths here).
///
/// The wrapper is transparent in use: it derefs to the inner value, so
/// `CachePadded<AtomicUsize>` is called exactly like an `AtomicUsize`.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads `value` to a 64-byte line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Consumes the padding, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: Clone> Clone for CachePadded<T> {
    fn clone(&self) -> Self {
        CachePadded::new(self.value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn padded_values_occupy_distinct_lines() {
        assert_eq!(std::mem::align_of::<CachePadded<AtomicUsize>>(), 64);
        assert!(std::mem::size_of::<CachePadded<AtomicUsize>>() >= 64);
        let v: Vec<CachePadded<AtomicUsize>> = (0..4)
            .map(|_| CachePadded::new(AtomicUsize::new(0)))
            .collect();
        let a = &*v[0] as *const AtomicUsize as usize;
        let b = &*v[1] as *const AtomicUsize as usize;
        assert!(b - a >= 64, "adjacent elements are a full line apart");
    }

    #[test]
    fn deref_and_into_inner_are_transparent() {
        let c = CachePadded::new(AtomicUsize::new(7));
        c.fetch_add(1, Ordering::Relaxed);
        assert_eq!(c.load(Ordering::Relaxed), 8);
        assert_eq!(c.into_inner().into_inner(), 8);
        let from: CachePadded<u32> = 5u32.into();
        assert_eq!(*from, 5);
    }
}
