//! Workspace-local stand-in for the slice of `criterion` this repository
//! uses: benchmark groups, throughput annotation, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment has no network access, so external dependencies
//! are replaced by path crates with the same names. Measurement here is a
//! plain mean over `sample_size` timed runs bounded by `measurement_time`
//! — no bootstrap statistics, no HTML reports — printed one line per
//! benchmark. Good enough to compare hot paths before/after a change on
//! the same machine.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(900),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets the number of timed runs per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Parses CLI arguments (accepted and ignored by this shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _parent: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let (ss, mt, wt) = (self.sample_size, self.measurement_time, self.warm_up_time);
        run_one(&id.into(), None, ss, mt, wt, |b| f(b));
    }
}

/// A group of related benchmarks sharing throughput annotation.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Times `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(
            &full,
            self.throughput,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            |b| f(b),
        );
    }

    /// Times `f(bencher, input)` under `id` within this group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl IntoBenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(
            &full,
            self.throughput,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            |b| f(b, input),
        );
    }

    /// Ends the group (prints nothing extra in this shim).
    pub fn finish(self) {}
}

/// Work-per-iteration annotation used to report element throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// `n` logical elements are processed per iteration.
    Elements(u64),
    /// `n` bytes are processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: either a bare name or `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark id (strings or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    warmed: bool,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine`, recording one sample per call, until the sample
    /// target or the measurement budget is reached.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.warmed {
            black_box(routine());
            self.warmed = true;
        }
        let start = Instant::now();
        while self.samples.len() < self.target_samples && start.elapsed() < self.budget {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
        if self.samples.is_empty() {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` only, rebuilding its input with `setup` before each
    /// sample (setup time is excluded from the measurement).
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if !self.warmed {
            black_box(routine(setup()));
            self.warmed = true;
        }
        let start = Instant::now();
        while self.samples.len() < self.target_samples && start.elapsed() < self.budget {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
        if self.samples.is_empty() {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_one(
    name: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
    _warm_up_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        budget: measurement_time,
        warmed: false,
        target_samples: sample_size,
    };
    f(&mut b);
    let n = b.samples.len().max(1);
    let total: Duration = b.samples.iter().sum();
    let mean = total / n as u32;
    let rate = match throughput {
        Some(Throughput::Elements(e)) if mean.as_nanos() > 0 => {
            format!("  ({:.1} Melem/s)", e as f64 / mean.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(by)) if mean.as_nanos() > 0 => {
            format!(
                "  ({:.1} MiB/s)",
                by as f64 / mean.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("{name:<50} time: {mean:>12.3?}  samples: {n}{rate}");
}

/// Declares a group of benchmark functions, optionally with a shared
/// configuration, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Expands to `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(50));
        targets = sample_bench
    }

    #[test]
    fn group_runs_without_panicking() {
        benches();
    }
}
