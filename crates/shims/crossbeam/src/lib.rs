//! Workspace-local stand-in for the subset of `crossbeam` this repository
//! uses: [`atomic::AtomicCell`].
//!
//! The build environment has no network access, so external dependencies
//! are replaced by path crates with the same names. Like the real
//! crossbeam, this `AtomicCell` has a **lock-free fast path for
//! word-sized payloads** (`size_of::<T>() == 8`, which covers the
//! `i64`/`u64`/`f64` arrays every speculative workload here stores):
//! loads and stores go through a native `AtomicU64` view of the 8-aligned
//! storage, so time-stamped speculative writes never serialize on a lock.
//! Wider payloads (e.g. 16-byte SPICE stamps) fall back to a
//! spinlock-per-cell path, which is correct for any `T: Copy`.

/// Atomic types.
pub mod atomic {
    use std::cell::UnsafeCell;
    use std::fmt;
    use std::mem::{align_of, size_of};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    /// 8-aligned storage so the word-sized fast path may view the payload
    /// as an `AtomicU64` regardless of `T`'s own alignment.
    #[repr(align(8))]
    struct Align8<T>(T);

    /// A thread-safe mutable memory location, API-compatible with
    /// `crossbeam::atomic::AtomicCell` for `Copy` payloads.
    ///
    /// Memory ordering: fast-path loads and stores are `Relaxed`. Every
    /// use in this workspace publishes cell contents across threads only
    /// through a pool-region boundary (the leader's completion latch is
    /// an acquire/release edge, and thread join is stronger), so the
    /// cells themselves carry no synchronization duty — they only have to
    /// keep racing accesses UB-free, which atomic access does.
    pub struct AtomicCell<T> {
        /// Slow-path lock; untouched by word-sized payloads.
        locked: AtomicBool,
        value: UnsafeCell<Align8<T>>,
    }

    // Safety: word-sized payloads are accessed through a native atomic;
    // all other access to `value` is serialized through the `locked`
    // spinlock. Either way the cell is Sync whenever the payload can be
    // sent.
    unsafe impl<T: Send> Sync for AtomicCell<T> {}
    unsafe impl<T: Send> Send for AtomicCell<T> {}

    /// Whether `T` takes the lock-free `AtomicU64` path. Compile-time
    /// constant, so the branch below folds away per monomorphization.
    #[inline(always)]
    const fn word_sized<T>() -> bool {
        size_of::<T>() == 8 && align_of::<T>() <= 8
    }

    impl<T> AtomicCell<T> {
        /// Creates a cell initialized to `value`.
        pub const fn new(value: T) -> Self {
            AtomicCell {
                locked: AtomicBool::new(false),
                value: UnsafeCell::new(Align8(value)),
            }
        }

        /// Consumes the cell and returns the contained value.
        pub fn into_inner(self) -> T {
            self.value.into_inner().0
        }

        #[inline]
        fn atomic_view(&self) -> &AtomicU64 {
            debug_assert!(word_sized::<T>());
            // Safety: the storage is 8 bytes (checked by the caller via
            // `word_sized`) and 8-aligned (via `Align8`), and every
            // access on this path goes through the same atomic view.
            unsafe { &*(self.value.get() as *const AtomicU64) }
        }

        #[inline]
        fn with_lock<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            while self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                std::hint::spin_loop();
            }
            let r = f(self.value.get() as *mut T);
            self.locked.store(false, Ordering::Release);
            r
        }

        /// Stores `value` into the cell.
        pub fn store(&self, value: T) {
            if word_sized::<T>() {
                // Safety: same size, fully initialized bytes (word-sized
                // primitives have no padding).
                let bits = unsafe { std::mem::transmute_copy::<T, u64>(&value) };
                self.atomic_view().store(bits, Ordering::Relaxed);
                std::mem::forget(value);
            } else {
                self.with_lock(|p| unsafe { *p = value });
            }
        }

        /// Replaces the contained value, returning the previous one.
        pub fn swap(&self, value: T) -> T {
            if word_sized::<T>() {
                let bits = unsafe { std::mem::transmute_copy::<T, u64>(&value) };
                std::mem::forget(value);
                let old = self.atomic_view().swap(bits, Ordering::Relaxed);
                unsafe { std::mem::transmute_copy::<u64, T>(&old) }
            } else {
                self.with_lock(|p| unsafe { std::ptr::replace(p, value) })
            }
        }
    }

    impl<T: Copy> AtomicCell<T> {
        /// Loads a copy of the contained value.
        pub fn load(&self) -> T {
            if word_sized::<T>() {
                let bits = self.atomic_view().load(Ordering::Relaxed);
                // Safety: the bits were produced by `store`/`swap` from a
                // valid `T` of the same size, or by `new`'s initializer.
                unsafe { std::mem::transmute_copy::<u64, T>(&bits) }
            } else {
                self.with_lock(|p| unsafe { *p })
            }
        }
    }

    impl<T: Copy + fmt::Debug> fmt::Debug for AtomicCell<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("AtomicCell")
                .field("value", &self.load())
                .finish()
        }
    }

    impl<T: Default> Default for AtomicCell<T> {
        fn default() -> Self {
            AtomicCell::new(T::default())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::atomic::AtomicCell;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn load_store_roundtrip() {
        let c = AtomicCell::new(1.5f64);
        assert_eq!(c.load(), 1.5);
        c.store(2.5);
        assert_eq!(c.load(), 2.5);
        assert_eq!(c.swap(3.5), 2.5);
        assert_eq!(c.into_inner(), 3.5);
    }

    #[test]
    fn narrow_payloads_take_the_locked_path_correctly() {
        let c = AtomicCell::new(7u16);
        assert_eq!(c.load(), 7);
        c.store(9);
        assert_eq!(c.swap(11), 9);
        assert_eq!(c.into_inner(), 11);
    }

    #[test]
    fn word_sized_signed_and_unsigned_roundtrip() {
        let c = AtomicCell::new(-5i64);
        assert_eq!(c.load(), -5);
        c.store(i64::MIN);
        assert_eq!(c.load(), i64::MIN);
        let u = AtomicCell::new(u64::MAX);
        assert_eq!(u.swap(0), u64::MAX);
        assert_eq!(u.load(), 0);
    }

    #[test]
    fn concurrent_stores_land_intact() {
        // u128 is wider than any native atomic: tearing would corrupt it.
        let cell = AtomicCell::new(0u128);
        let sum = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u128 {
                let cell = &cell;
                let sum = &sum;
                s.spawn(move || {
                    let pat = u128::from_be_bytes([t as u8 + 1; 16]);
                    for _ in 0..1000 {
                        cell.store(pat);
                        let v = cell.load().to_be_bytes();
                        assert!(v.iter().all(|&b| b == v[0]), "torn read: {v:?}");
                        sum.fetch_add(v[0] as u64, Ordering::Relaxed);
                    }
                });
            }
        });
        assert!(sum.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn concurrent_word_stores_are_lock_free_and_intact() {
        let cell = AtomicCell::new(0u64);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cell = &cell;
                s.spawn(move || {
                    let pat = u64::from_be_bytes([t as u8 + 1; 8]);
                    for _ in 0..1000 {
                        cell.store(pat);
                        let v = cell.load().to_be_bytes();
                        assert!(v.iter().all(|&b| b == v[0]), "torn read: {v:?}");
                    }
                });
            }
        });
    }
}
