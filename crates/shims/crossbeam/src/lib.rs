//! Workspace-local stand-in for the subset of `crossbeam` this repository
//! uses: [`atomic::AtomicCell`].
//!
//! The build environment has no network access, so external dependencies
//! are replaced by path crates with the same names. This `AtomicCell` is a
//! spinlock-per-cell implementation: correct for any `T: Copy`, slightly
//! slower than crossbeam's lock-free fast path for word-sized types.

/// Atomic types.
pub mod atomic {
    use std::cell::UnsafeCell;
    use std::fmt;
    use std::sync::atomic::{AtomicBool, Ordering};

    /// A thread-safe mutable memory location, API-compatible with
    /// `crossbeam::atomic::AtomicCell` for `Copy` payloads.
    pub struct AtomicCell<T> {
        locked: AtomicBool,
        value: UnsafeCell<T>,
    }

    // Safety: all access to `value` is serialized through the `locked`
    // spinlock, so the cell is Sync whenever the payload can be sent.
    unsafe impl<T: Send> Sync for AtomicCell<T> {}
    unsafe impl<T: Send> Send for AtomicCell<T> {}

    impl<T> AtomicCell<T> {
        /// Creates a cell initialized to `value`.
        pub const fn new(value: T) -> Self {
            AtomicCell {
                locked: AtomicBool::new(false),
                value: UnsafeCell::new(value),
            }
        }

        /// Consumes the cell and returns the contained value.
        pub fn into_inner(self) -> T {
            self.value.into_inner()
        }

        #[inline]
        fn with_lock<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            while self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                std::hint::spin_loop();
            }
            let r = f(self.value.get());
            self.locked.store(false, Ordering::Release);
            r
        }

        /// Stores `value` into the cell.
        pub fn store(&self, value: T) {
            self.with_lock(|p| unsafe { *p = value });
        }

        /// Replaces the contained value, returning the previous one.
        pub fn swap(&self, value: T) -> T {
            self.with_lock(|p| unsafe { std::ptr::replace(p, value) })
        }
    }

    impl<T: Copy> AtomicCell<T> {
        /// Loads a copy of the contained value.
        pub fn load(&self) -> T {
            self.with_lock(|p| unsafe { *p })
        }
    }

    impl<T: Copy + fmt::Debug> fmt::Debug for AtomicCell<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("AtomicCell")
                .field("value", &self.load())
                .finish()
        }
    }

    impl<T: Default> Default for AtomicCell<T> {
        fn default() -> Self {
            AtomicCell::new(T::default())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::atomic::AtomicCell;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn load_store_roundtrip() {
        let c = AtomicCell::new(1.5f64);
        assert_eq!(c.load(), 1.5);
        c.store(2.5);
        assert_eq!(c.load(), 2.5);
        assert_eq!(c.swap(3.5), 2.5);
        assert_eq!(c.into_inner(), 3.5);
    }

    #[test]
    fn concurrent_stores_land_intact() {
        // u128 is wider than any native atomic: tearing would corrupt it.
        let cell = AtomicCell::new(0u128);
        let sum = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u128 {
                let cell = &cell;
                let sum = &sum;
                s.spawn(move || {
                    let pat = u128::from_be_bytes([t as u8 + 1; 16]);
                    for _ in 0..1000 {
                        cell.store(pat);
                        let v = cell.load().to_be_bytes();
                        assert!(v.iter().all(|&b| b == v[0]), "torn read: {v:?}");
                        sum.fetch_add(v[0] as u64, Ordering::Relaxed);
                    }
                });
            }
        });
        assert!(sum.load(Ordering::Relaxed) > 0);
    }
}
