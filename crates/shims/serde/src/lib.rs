//! Workspace-local stand-in for the slice of `serde` this repository uses:
//! `#[derive(Serialize)]` plus JSON emission.
//!
//! The build environment has no network access, so external dependencies
//! are replaced by path crates with the same names. Real serde serializes
//! through a visitor; this shim serializes into an owned [`Value`] tree
//! and renders it as JSON via [`json::to_string`] — ample for the profile
//! reports and simulator outputs this workspace emits.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// A JSON value tree — the intermediate representation every
/// [`Serialize`] implementation produces.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating-point number (non-finite values render as `null`).
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    fn render(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(x) if x.is_finite() => out.push_str(&format!("{x}")),
            Value::Float(_) => out.push_str("null"),
            Value::Str(s) => escape_into(out, s),
            Value::Array(items) => {
                out.push('[');
                for (k, v) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    v.render(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (k, (name, v)) in fields.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    escape_into(out, name);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render(&mut s);
        f.write_str(&s)
    }
}

/// Types convertible to a JSON [`Value`]. Derivable for structs with named
/// fields via `#[derive(Serialize)]`.
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn serialize(&self) -> Value;
}

macro_rules! ser_uint {
    ($($t:ty),*) => { $(impl Serialize for $t {
        fn serialize(&self) -> Value { Value::UInt(*self as u64) }
    })* };
}
macro_rules! ser_int {
    ($($t:ty),*) => { $(impl Serialize for $t {
        fn serialize(&self) -> Value { Value::Int(*self as i64) }
    })* };
}
ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}
impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

/// JSON rendering of [`Serialize`] values (the `serde_json` role).
pub mod json {
    use super::Serialize;

    /// Renders `value` as a compact JSON string.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        value.serialize().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_json() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a\"b".into())),
            ("xs".into(), Value::Array(vec![Value::UInt(1), Value::Null])),
            ("ok".into(), Value::Bool(true)),
        ]);
        assert_eq!(v.to_string(), r#"{"name":"a\"b","xs":[1,null],"ok":true}"#);
    }

    #[test]
    fn primitives_serialize() {
        assert_eq!(json::to_string(&3usize), "3");
        assert_eq!(json::to_string(&-2i64), "-2");
        assert_eq!(json::to_string(&vec![1u64, 2]), "[1,2]");
        assert_eq!(json::to_string(&Option::<u64>::None), "null");
        assert_eq!(json::to_string("hi"), "\"hi\"");
    }
}
