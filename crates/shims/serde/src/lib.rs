//! Workspace-local stand-in for the slice of `serde` this repository uses:
//! `#[derive(Serialize)]` plus JSON emission and parsing.
//!
//! The build environment has no network access, so external dependencies
//! are replaced by path crates with the same names. Real serde serializes
//! through a visitor; this shim serializes into an owned [`Value`] tree
//! and renders it as JSON via [`json::to_string`] — ample for the profile
//! reports and simulator outputs this workspace emits. The inverse
//! direction ([`json::parse`], the `serde_json::from_str` role) produces
//! the same [`Value`] tree; consumers destructure it through the typed
//! accessors (`as_str`, `as_i64`, `get`, …) instead of `Deserialize`
//! impls — ample for the newline-delimited request protocol `wlp-serve`
//! speaks.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// A JSON value tree — the intermediate representation every
/// [`Serialize`] implementation produces.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating-point number (non-finite values render as `null`).
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    /// The string payload, if this is [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a signed integer (integral floats included).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            Value::Float(x) if x.fract() == 0.0 && x.abs() < 9.0e18 => Some(*x as i64),
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            Value::Float(x) if x.fract() == 0.0 && *x >= 0.0 && *x < 1.9e19 => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The boolean payload, if this is [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is [`Value::Object`].
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up a field of an object by name (first match wins).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    fn render(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(n) => out.push_str(&n.to_string()),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Float(x) if x.is_finite() => out.push_str(&format!("{x}")),
            Value::Float(_) => out.push_str("null"),
            Value::Str(s) => escape_into(out, s),
            Value::Array(items) => {
                out.push('[');
                for (k, v) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    v.render(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (k, (name, v)) in fields.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    escape_into(out, name);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render(&mut s);
        f.write_str(&s)
    }
}

/// Types convertible to a JSON [`Value`]. Derivable for structs with named
/// fields via `#[derive(Serialize)]`.
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn serialize(&self) -> Value;
}

macro_rules! ser_uint {
    ($($t:ty),*) => { $(impl Serialize for $t {
        fn serialize(&self) -> Value { Value::UInt(*self as u64) }
    })* };
}
macro_rules! ser_int {
    ($($t:ty),*) => { $(impl Serialize for $t {
        fn serialize(&self) -> Value { Value::Int(*self as i64) }
    })* };
}
ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}
impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

/// JSON rendering and parsing of [`Serialize`] values (the `serde_json`
/// role).
pub mod json {
    use super::{Serialize, Value};

    /// Renders `value` as a compact JSON string.
    pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
        value.serialize().to_string()
    }

    /// A JSON parse failure: byte offset and description.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ParseError {
        /// Byte offset of the failure in the input.
        pub at: usize,
        /// What went wrong.
        pub msg: String,
    }

    impl std::fmt::Display for ParseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
        }
    }

    impl std::error::Error for ParseError {}

    /// Parses one JSON document into a [`Value`] tree, rejecting trailing
    /// non-whitespace (the `serde_json::from_str` role).
    pub fn parse(src: &str) -> Result<Value, ParseError> {
        let bytes = src.as_bytes();
        let mut p = Parser {
            bytes,
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Maximum container nesting [`parse`] accepts. The parser recurses
    /// once per nesting level, so without a bound a line of a few tens
    /// of KB of `[` overflows the stack and aborts the process — fatal
    /// for a resident daemon parsing untrusted request lines.
    pub const MAX_PARSE_DEPTH: usize = 128;

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
        depth: usize,
    }

    impl Parser<'_> {
        fn err(&self, msg: impl Into<String>) -> ParseError {
            ParseError {
                at: self.pos,
                msg: msg.into(),
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, c: u8) -> Result<(), ParseError> {
            if self.peek() == Some(c) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.err(format!("expected `{}`", c as char)))
            }
        }

        fn lit(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(self.err(format!("expected `{word}`")))
            }
        }

        fn value(&mut self) -> Result<Value, ParseError> {
            match self.peek() {
                Some(b'{') => self.nested(Self::object),
                Some(b'[') => self.nested(Self::array),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.lit("true", Value::Bool(true)),
                Some(b'f') => self.lit("false", Value::Bool(false)),
                Some(b'n') => self.lit("null", Value::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
                None => Err(self.err("unexpected end of input")),
            }
        }

        fn nested(
            &mut self,
            inner: fn(&mut Self) -> Result<Value, ParseError>,
        ) -> Result<Value, ParseError> {
            if self.depth >= MAX_PARSE_DEPTH {
                return Err(self.err(format!("nesting deeper than {MAX_PARSE_DEPTH} levels")));
            }
            self.depth += 1;
            let v = inner(self);
            self.depth -= 1;
            v
        }

        fn object(&mut self) -> Result<Value, ParseError> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let v = self.value()?;
                fields.push((key, v));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(self.err("expected `,` or `}` in object")),
                }
            }
        }

        fn array(&mut self) -> Result<Value, ParseError> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(self.err("expected `,` or `]` in array")),
                }
            }
        }

        fn string(&mut self) -> Result<String, ParseError> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(self.err("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'b' => out.push('\u{0008}'),
                            b'f' => out.push('\u{000c}'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or_else(|| self.err("bad \\u escape"))?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| self.err("bad \\u escape"))?;
                                self.pos += 4;
                                // Surrogate pairs are not needed by this
                                // workspace's protocol; map lone
                                // surrogates to the replacement character.
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                            c => {
                                return Err(self.err(format!("bad escape `\\{}`", c as char)));
                            }
                        }
                    }
                    Some(_) => {
                        // consume one UTF-8 scalar, however many bytes
                        let rest = &self.bytes[self.pos..];
                        let s = std::str::from_utf8(rest)
                            .map_err(|_| self.err("invalid UTF-8 in string"))?;
                        let c = s.chars().next().unwrap();
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, ParseError> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            let mut float = false;
            if self.peek() == Some(b'.') {
                float = true;
                self.pos += 1;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                float = true;
                self.pos += 1;
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
            if float {
                text.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err("malformed number"))
            } else if text.starts_with('-') {
                text.parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| self.err("integer out of range"))
            } else {
                text.parse::<u64>()
                    .map(Value::UInt)
                    .map_err(|_| self.err("integer out of range"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_json() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a\"b".into())),
            ("xs".into(), Value::Array(vec![Value::UInt(1), Value::Null])),
            ("ok".into(), Value::Bool(true)),
        ]);
        assert_eq!(v.to_string(), r#"{"name":"a\"b","xs":[1,null],"ok":true}"#);
    }

    #[test]
    fn parses_what_it_renders() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a\"b\nc".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::UInt(1), Value::Null, Value::Int(-3)]),
            ),
            ("ok".into(), Value::Bool(true)),
            ("f".into(), Value::Float(1.5)),
        ]);
        assert_eq!(json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn parse_accessors_destructure() {
        let v = json::parse(r#" {"id":"r1","n":42,"neg":-7,"xs":[1,2],"b":false} "#).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_str), Some("r1"));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(42));
        assert_eq!(v.get("n").and_then(Value::as_i64), Some(42));
        assert_eq!(v.get("neg").and_then(Value::as_i64), Some(-7));
        assert_eq!(
            v.get("xs").and_then(Value::as_array).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(v.get("b").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "{} x", "\"unterminated"] {
            assert!(json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parse_rejects_hostile_nesting_instead_of_overflowing() {
        // Well past any honest request, far past the recursion budget: a
        // pre-fix parser blows the stack here and aborts the process.
        for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
            let deep = format!("{}0{}", open.repeat(100_000), close.repeat(100_000));
            let err = json::parse(&deep).unwrap_err();
            assert!(err.msg.contains("nesting"), "{err}");
        }
        // ...while the bound leaves generous headroom for real payloads
        let fine = format!("{}0{}", "[".repeat(100), "]".repeat(100));
        assert!(json::parse(&fine).is_ok());
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = json::parse(r#""tab\t nl\n quote\" uA é""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\t nl\n quote\" uA é"));
    }

    #[test]
    fn primitives_serialize() {
        assert_eq!(json::to_string(&3usize), "3");
        assert_eq!(json::to_string(&-2i64), "-2");
        assert_eq!(json::to_string(&vec![1u64, 2]), "[1,2]");
        assert_eq!(json::to_string(&Option::<u64>::None), "null");
        assert_eq!(json::to_string("hi"), "\"hi\"");
    }
}
