//! Workspace-local stand-in for the slice of `proptest` this repository
//! uses: the [`proptest!`] macro, range/tuple/`Just`/`prop_oneof!`
//! strategies, `prop::collection::vec`, `prop::option::of`, [`any`], and
//! the `prop_assert*` macros.
//!
//! The build environment has no network access, so external dependencies
//! are replaced by path crates with the same names. The one semantic
//! difference from real proptest: failing cases are reported but **not
//! shrunk** — the failure message carries the deterministic case number
//! and per-test seed instead, which is enough to reproduce locally.

pub mod strategy {
    //! Value-generation strategies (sampling only, no shrinking).

    use rand::prelude::*;

    /// The RNG handed to strategies.
    pub type TestRng = StdRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Strategy yielding a constant value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `arms` must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let k = rng.gen_range(0..self.arms.len());
            self.arms[k].sample(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// String-pattern strategies: real proptest interprets a `&str` as a
    /// regex to generate matching strings. This shim honours only the
    /// repetition count of the common fuzz form `\PC{lo,hi}` ("lo to hi
    /// printable characters") and otherwise produces 0..64 random
    /// non-control characters — sufficient for "never panics on arbitrary
    /// input" properties, which assert nothing about the distribution.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_repetition(self).unwrap_or((0, 64));
            let len = rng.gen_range(lo..hi.max(lo + 1) + 1);
            (0..len)
                .map(|_| {
                    // Mostly ASCII printable, occasionally wider unicode.
                    match rng.gen_range(0..10usize) {
                        0 => char::from_u32(rng.gen_range(0xA1u32..0x2FF)).unwrap_or('\u{FFFD}'),
                        _ => char::from_u32(rng.gen_range(0x20u32..0x7F)).expect("printable"),
                    }
                })
                .collect()
        }
    }

    fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
        let open = pattern.rfind('{')?;
        let close = pattern[open..].find('}')? + open;
        let body = &pattern[open + 1..close];
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod arbitrary {
    //! The [`any`](crate::arbitrary::any) entry point.

    use crate::strategy::{Strategy, TestRng};
    use rand::prelude::*;
    use std::marker::PhantomData;

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
        })*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values only: tests do arithmetic on these.
            rng.gen_range(-1e9..1e9)
        }
    }

    /// Strategy produced by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::{Strategy, TestRng};
    use rand::prelude::*;
    use std::ops::Range;

    /// A size specification: an exact length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`prop::option::of`).

    use crate::strategy::{Strategy, TestRng};
    use rand::prelude::*;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` roughly four times out of five, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0..5usize) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod test_runner {
    //! Run configuration and failure plumbing.

    use rand::prelude::*;
    use std::fmt;

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        /// 64 cases, overridable via the `PROPTEST_CASES` environment
        /// variable — the same knob real proptest reads, so CI can pin
        /// the case count explicitly.
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property case (produced by `prop_assert!`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        reason: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError {
                reason: reason.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.reason)
        }
    }

    /// Deterministic per-test RNG, seeded from the test's name (FNV-1a).
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Runs each `fn name(arg in strategy, ...) { body }` inside as a
/// property: `config.cases` deterministic samples, failing on panic or
/// `prop_assert!` violation. An optional leading
/// `#![proptest_config(expr)]` overrides the default configuration.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::rng_for(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __res: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(__e) = __res {
                    panic!(
                        "proptest property `{}` failed at case {}/{}: {}",
                        stringify!($name), __case + 1, __config.cases, __e
                    );
                }
            }
        }
        $crate::__proptest_fns!{ cfg = ($cfg); $($rest)* }
    };
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?} == {:?}` ({} == {})",
            __l, __r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, "{}: `{:?} == {:?}`", format!($($fmt)*), __l, __r);
    }};
}

/// Uniform choice among strategies yielding a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Everything a property-test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Module-style access (`prop::collection::vec`, `prop::option::of`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn op_strategy() -> impl Strategy<Value = (usize, bool)> {
        (0usize..10, any::<bool>())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]
        #[test]
        fn ranges_and_tuples_in_bounds(x in 3usize..9, pair in op_strategy()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(pair.0 < 10);
        }

        #[test]
        fn vec_and_option_and_oneof(
            xs in prop::collection::vec(prop_oneof![Just(1u32), 5u32..8], 0..6),
            o in prop::option::of(0i64..4),
            exact in prop::collection::vec(any::<i16>(), 3),
        ) {
            prop_assert!(xs.len() < 6);
            prop_assert!(xs.iter().all(|&v| v == 1 || (5..8).contains(&v)));
            if let Some(v) = o { prop_assert!((0..4).contains(&v)); }
            prop_assert_eq!(exact.len(), 3);
        }

        #[test]
        fn prop_map_applies(y in (0usize..5).prop_map(|v| v * 2)) {
            prop_assert!(y % 2 == 0 && y < 10);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            #[test]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
