//! Workspace-local stand-in for the subset of the `parking_lot` API this
//! repository uses: [`Mutex`] (non-poisoning `lock()`) and [`Condvar`]
//! (waits on a `&mut MutexGuard`).
//!
//! The build environment has no network access and no crates.io mirror, so
//! external dependencies are replaced by path crates with the same names
//! and call-compatible APIs. This one wraps `std::sync` primitives; the
//! behavioural difference from real `parking_lot` is performance only
//! (std mutexes are futex-based on Linux, so the gap is small).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the underlying std guard in an `Option` so [`Condvar::wait`] can
/// temporarily take it (std's condvar consumes and returns guards by
/// value, parking_lot's borrows them mutably).
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A condition variable usable with [`MutexGuard`], `parking_lot` style.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(inner);
    }

    /// Like [`Condvar::wait`] with a timeout; returns `true` if it timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let inner = guard.guard.take().expect("guard present");
        let (inner, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(inner);
        res.timed_out()
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}
