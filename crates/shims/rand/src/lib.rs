//! Workspace-local stand-in for the slice of `rand` 0.8 this repository
//! uses: a seedable [`rngs::StdRng`], [`Rng::gen_range`] over half-open
//! ranges, and [`seq::SliceRandom`]'s `shuffle`/`choose`.
//!
//! The build environment has no network access, so external dependencies
//! are replaced by path crates with the same names. The generator is
//! SplitMix64 — deterministic per seed, statistically fine for the test
//! and workload generation this workspace does (not cryptographic, just
//! like `StdRng` was never meant to be reproducible across rand versions).

use std::ops::Range;

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling helpers layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from the half-open range `lo..hi`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_in(self, range.start, range.end)
    }

    /// Returns a uniformly random value of a primitive type.
    fn gen<T: Fill>(&mut self) -> T
    where
        Self: Sized,
    {
        T::fill(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + lo as i128;
                v as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample from empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                (lo as f64 + (hi as f64 - lo as f64) * unit) as $t
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Types producible by filling with random bits (the `rng.gen()` family).
pub trait Fill {
    /// Produces one uniformly random value.
    fn fill<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! fill_int {
    ($($t:ty),*) => {$(impl Fill for $t {
        fn fill<R: RngCore>(rng: &mut R) -> Self { rng.next_u64() as $t }
    })*};
}
fill_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Fill for bool {
    fn fill<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Fill for f64 {
    fn fill<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard test generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Common re-exports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i64..6);
            assert!((-5..6).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
