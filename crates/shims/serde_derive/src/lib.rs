//! `#[derive(Serialize)]` for the workspace-local serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). Supports the shapes this workspace
//! derives on: structs with named fields, and enums whose variants are
//! units or carry named fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by mapping named fields into a
/// `serde::Value::Object` (structs) or an externally-tagged object
/// (enums).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (kind, name, body) = parse_item(&tokens);
    let impl_body = match kind {
        Kind::Struct => {
            let fields = named_fields(&body);
            let entries: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::serialize(&self.{f})),"))
                .collect();
            format!("serde::Value::Object(vec![{entries}])")
        }
        Kind::Enum => {
            let arms: String = enum_variants(&body)
                .into_iter()
                .map(|(variant, fields)| match fields {
                    None => {
                        format!("Self::{variant} => serde::Value::Str(\"{variant}\".to_string()),")
                    }
                    Some(fields) => {
                        let pat = fields.join(", ");
                        let entries: String = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), serde::Serialize::serialize({f})),")
                            })
                            .collect();
                        format!(
                            "Self::{variant} {{ {pat} }} => serde::Value::Object(vec![\
                             (\"{variant}\".to_string(), serde::Value::Object(vec![{entries}]))]),"
                        )
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn serialize(&self) -> serde::Value {{ {impl_body} }}\n\
         }}"
    )
    .parse()
    .expect("generated impl parses")
}

enum Kind {
    Struct,
    Enum,
}

/// Locates the item keyword, its name, and the `{ ... }` body tokens.
fn parse_item(tokens: &[TokenTree]) -> (Kind, String, Vec<TokenTree>) {
    let mut i = 0;
    let kind = loop {
        match &tokens.get(i) {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break Kind::Struct,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break Kind::Enum,
            Some(_) => i += 1,
            None => panic!("derive(Serialize): expected struct or enum"),
        }
    };
    let name = match &tokens[i + 1] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive(Serialize): expected item name, got {other}"),
    };
    let body = tokens[i + 2..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Some(g.stream().into_iter().collect::<Vec<_>>())
            }
            _ => None,
        })
        .unwrap_or_else(|| {
            panic!("derive(Serialize): {name} has no braced body (named fields required)")
        });
    (kind, name, body)
}

/// Splits a braced body at top-level commas (tracking `<...>` depth) and
/// returns each segment's field name: the identifier right before the
/// first top-level `:`, skipping attributes and visibility.
fn named_fields(body: &[TokenTree]) -> Vec<String> {
    split_top_level(body)
        .into_iter()
        .filter_map(|seg| field_name(&seg))
        .collect()
}

fn enum_variants(body: &[TokenTree]) -> Vec<(String, Option<Vec<String>>)> {
    split_top_level(body)
        .into_iter()
        .filter_map(|seg| {
            let mut name = None;
            let mut fields = None;
            for t in &seg {
                match t {
                    TokenTree::Ident(id) if name.is_none() => name = Some(id.to_string()),
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        fields = Some(named_fields(&inner));
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                        panic!("derive(Serialize): tuple variants are not supported by the shim")
                    }
                    _ => {}
                }
            }
            name.map(|n| (n, fields))
        })
        .collect()
}

fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn field_name(seg: &[TokenTree]) -> Option<String> {
    let mut last_ident: Option<String> = None;
    for t in seg {
        match t {
            // `#[...]` attributes arrive as a '#' punct then a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => continue,
            TokenTree::Group(_) => continue, // attribute body or pub(crate)
            TokenTree::Ident(id) if id.to_string() == "pub" => continue,
            TokenTree::Ident(id) => last_ident = Some(id.to_string()),
            TokenTree::Punct(p) if p.as_char() == ':' => return last_ident,
            _ => {}
        }
    }
    None
}
