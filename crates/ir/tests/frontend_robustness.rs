//! Front-end robustness: arbitrary input never panics, and valid programs
//! round-trip through parse → lower → plan without surprises.

use proptest::prelude::*;
use wlp_ir::frontend::{parse_program, Program};
use wlp_ir::{parse_loop, plan};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_bytes_never_panic(src in "\\PC{0,200}") {
        // any outcome is fine; panicking is not
        let _ = parse_loop(&src);
    }

    #[test]
    fn token_soup_never_panics(
        toks in prop::collection::vec(
            prop_oneof![
                Just("while".to_string()),
                Just("integer".to_string()),
                Just("exit".to_string()),
                Just("if".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("[".to_string()),
                Just("]".to_string()),
                Just("=".to_string()),
                Just("+".to_string()),
                Just("<".to_string()),
                Just("i".to_string()),
                Just("A".to_string()),
                Just("7".to_string()),
            ],
            0..40,
        )
    ) {
        let src = toks.join(" ");
        let _ = parse_loop(&src);
    }

    #[test]
    fn well_formed_counting_loops_always_lower(
        bound in 1i64..1000,
        stride in 1i64..5,
        coeff in 1i64..4,
        offset in 0i64..10,
    ) {
        let src = format!(
            "integer i = 0\nwhile (i < {bound}) {{ A[{coeff}*i + {offset}] = i; i = i + {stride} }}"
        );
        let ir = parse_loop(&src).unwrap();
        let p = plan(&ir);
        // an affine store over a known induction is always an induction DOALL
        assert_eq!(p.strategy, wlp_ir::StrategyKind::InductionDoall);
        assert!(!p.needs_pd_test, "affine subscripts are analyzable: {src}");
    }

    #[test]
    fn parse_is_deterministic(seed in any::<u64>()) {
        let src = format!(
            "integer i = {}\nwhile (i < n) {{ A[i] = B[i] + {}; i = i + 1 }}",
            seed % 100,
            seed % 7
        );
        let a: Program = parse_program(&src).unwrap();
        let b: Program = parse_program(&src).unwrap();
        assert_eq!(a, b);
    }
}
