//! Property: for randomly generated loop programs, the interpreter's
//! parallel execution (speculative DOALL through the planner) produces a
//! machine identical to the sequential interpretation — whatever the
//! subscript shapes, exit positions or collision patterns.

use proptest::prelude::*;
use wlp_ir::frontend::parse_program;
use wlp_ir::interp::{run_parallel, run_sequential, Machine};
use wlp_runtime::Pool;

#[derive(Debug, Clone)]
enum Sub {
    Affine(i64, i64), // coeff·i + offset
    Indirect,         // idx[i]
}

#[derive(Debug, Clone)]
struct ProgParams {
    n: usize,
    stride: i64,
    stores: Vec<(Sub, i64)>, // target subscript, addend
    exit_at: Option<usize>,
    idx_collides: bool,
}

fn sub_strategy() -> impl Strategy<Value = Sub> {
    prop_oneof![
        (1i64..3, 0i64..4).prop_map(|(c, o)| Sub::Affine(c, o)),
        Just(Sub::Indirect),
    ]
}

fn prog_strategy() -> impl Strategy<Value = ProgParams> {
    (
        4usize..60,
        1i64..3,
        prop::collection::vec((sub_strategy(), -5i64..6), 1..4),
        prop::option::of(0usize..80),
        any::<bool>(),
    )
        .prop_map(|(n, stride, stores, exit_at, idx_collides)| ProgParams {
            n,
            stride,
            stores,
            exit_at,
            idx_collides,
        })
}

fn source_of(p: &ProgParams) -> String {
    let mut body = String::new();
    if p.exit_at.is_some() {
        body.push_str("    exit if (stop[i] == 1)\n");
    }
    for (sub, add) in &p.stores {
        let s = match sub {
            Sub::Affine(c, o) => format!("{c}*i + {o}"),
            Sub::Indirect => "idx[i]".to_string(),
        };
        body.push_str(&format!("    A[{s}] = A[{s}] + i + {add}\n"));
    }
    body.push_str(&format!("    i = i + {}\n", p.stride));
    format!("integer i = 0\nwhile (i < {}) {{\n{body}}}", p.n)
}

fn machine_of(p: &ProgParams) -> Machine {
    let mut m = Machine::default();
    // array big enough for every affine subscript: max coeff 2·n + 4, plus
    // the indirect range
    let asize = 3 * p.n + 16;
    m.arrays.insert("A".into(), (0..asize as i64).collect());
    let idx: Vec<i64> = (0..p.n)
        .map(|i| {
            if p.idx_collides {
                (i as i64 / 2) * 2 // pairs collide
            } else {
                ((i * 17) % p.n) as i64 // permutation for n coprime to 17…
            }
        })
        .collect();
    m.arrays.insert("idx".into(), idx);
    let mut stop = vec![0i64; p.n];
    if let Some(e) = p.exit_at {
        if e < p.n {
            stop[e] = 1;
        }
    }
    m.arrays.insert("stop".into(), stop);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn parallel_interpretation_equals_sequential(params in prog_strategy(), workers in 1usize..5) {
        let src = source_of(&params);
        let prog = parse_program(&src).unwrap_or_else(|e| panic!("{src}\n{e}"));

        let mut seq = machine_of(&params);
        let so = run_sequential(&prog, &mut seq, params.n + 10).unwrap();

        let mut par = machine_of(&params);
        let pool = Pool::new(workers);
        let po = run_parallel(&prog, &mut par, &pool, params.n + 10).unwrap();

        prop_assert_eq!(&par.arrays, &seq.arrays, "src:\n{}", src);
        prop_assert_eq!(par.scalars.get("i"), seq.scalars.get("i"));
        // iterations agree whenever both terminated by condition/exit
        if so.exited_at.is_some() && po.exited_at.is_some() {
            prop_assert_eq!(so.iterations, po.iterations);
        }
    }

    #[test]
    fn colliding_indirections_always_fall_back_correctly(
        n in 4usize..40,
        workers in 2usize..5,
    ) {
        // guaranteed write-write+flow collisions through idx
        let src = format!(
            "integer i = 0\nwhile (i < {n}) {{ A[idx[i]] = A[idx[i]] + 1; i = i + 1 }}"
        );
        let prog = parse_program(&src).unwrap();
        let build = || {
            let mut m = Machine::default();
            m.arrays.insert("A".into(), vec![0; 8]);
            m.arrays.insert("idx".into(), vec![3; n]);
            m
        };
        let mut seq = build();
        run_sequential(&prog, &mut seq, n + 1).unwrap();
        let mut par = build();
        let out = run_parallel(&prog, &mut par, &Pool::new(workers), n).unwrap();
        prop_assert!(!out.ran_parallel);
        prop_assert_eq!(par.arrays["A"][3], n as i64);
        prop_assert_eq!(&par.arrays, &seq.arrays);
    }
}
