//! Recursive-descent parser for the loop DSL.
//!
//! ```text
//! program := decl* "while" "(" cond ")" "{" stmt* "}"
//! decl    := ("integer" | "real" | "pointer") ident ("=" expr)? ";"?
//! stmt    := "exit" "if" "(" cond ")" ";"?
//!          | ident "=" expr ";"?
//!          | ident "[" expr "]" "=" expr ";"?
//! cond    := expr (cmpop expr)?
//! expr    := term (("+" | "-") term)*
//! term    := unary (("*" | "/") unary)*
//! unary   := "-" unary | atom
//! atom    := int | "null" | ident | ident "(" args ")" | ident "[" expr "]"
//!          | "(" cond ")"
//! ```

use super::ast::{BinOp, Decl, Expr, Program, Stmt};
use super::lexer::{lex, Token};
use crate::span::Span;

/// A syntax error with the byte offset of the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset (or source length at end-of-input).
    pub pos: usize,
    /// Source span of the offending token (zero-width at end-of-input).
    pub span: Span,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.pos)
    }
}

struct Parser {
    toks: Vec<(Span, Token)>,
    at: usize,
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.at).map(|(_, t)| t)
    }

    fn pos(&self) -> usize {
        self.toks.get(self.at).map_or(self.end, |(s, _)| s.start)
    }

    /// Span of the token about to be consumed (zero-width at EOF).
    fn span(&self) -> Span {
        self.toks
            .get(self.at)
            .map_or(Span::point(self.end), |(s, _)| *s)
    }

    /// Span of the most recently consumed token.
    fn prev_span(&self) -> Span {
        self.toks
            .get(self.at.wrapping_sub(1))
            .map_or(Span::point(self.end), |(s, _)| *s)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.at).map(|(_, t)| t.clone());
        self.at += 1;
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            pos: self.pos(),
            span: self.span(),
            msg: msg.into(),
        })
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(want) {
            self.at += 1;
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn eat_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.at += 1;
                Ok(s)
            }
            other => self.err(format!("expected {what}, found {other:?}")),
        }
    }

    fn eat_semi(&mut self) {
        while self.peek() == Some(&Token::Semi) {
            self.at += 1;
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut decls = Vec::new();
        loop {
            match self.peek() {
                Some(Token::Ident(kw)) if matches!(kw.as_str(), "integer" | "real" | "pointer") => {
                    let start = self.span();
                    let ty = self.eat_ident("type keyword")?;
                    let name = self.eat_ident("variable name")?;
                    let init = if self.peek() == Some(&Token::Assign) {
                        self.at += 1;
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    let span = start.to(self.prev_span());
                    self.eat_semi();
                    decls.push(Decl {
                        ty,
                        name,
                        init,
                        span,
                    });
                }
                _ => break,
            }
        }
        match self.peek() {
            Some(Token::Ident(kw)) if kw == "while" => {
                self.at += 1;
            }
            _ => return self.err("expected `while`"),
        }
        self.expect(&Token::LParen, "`(`")?;
        let cond_start = self.span();
        let cond = self.cond()?;
        let cond_span = cond_start.to(self.prev_span());
        self.expect(&Token::RParen, "`)`")?;
        self.expect(&Token::LBrace, "`{`")?;
        let mut body = Vec::new();
        let mut stmt_spans = Vec::new();
        while self.peek() != Some(&Token::RBrace) {
            if self.peek().is_none() {
                return self.err("unterminated loop body (missing `}`)");
            }
            let start = self.span();
            body.push(self.stmt()?);
            stmt_spans.push(start.to(self.prev_span()));
            self.eat_semi();
        }
        self.expect(&Token::RBrace, "`}`")?;
        if let Some(t) = self.peek() {
            return self.err(format!("trailing input after loop: {t:?}"));
        }
        Ok(Program {
            decls,
            cond,
            cond_span,
            body,
            stmt_spans,
        })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        // `exit if (cond)`
        if let Some(Token::Ident(kw)) = self.peek() {
            if kw == "exit" {
                self.at += 1;
                let cont = self.eat_ident("`if`")?;
                if cont != "if" {
                    return self.err("expected `if` after `exit`");
                }
                self.expect(&Token::LParen, "`(`")?;
                let c = self.cond()?;
                self.expect(&Token::RParen, "`)`")?;
                return Ok(Stmt::ExitIf(c));
            }
        }
        let name = self.eat_ident("statement")?;
        match self.peek() {
            Some(Token::Assign) => {
                self.at += 1;
                Ok(Stmt::AssignVar(name, self.expr()?))
            }
            Some(Token::LBracket) => {
                self.at += 1;
                let sub = self.expr()?;
                self.expect(&Token::RBracket, "`]`")?;
                self.expect(&Token::Assign, "`=`")?;
                Ok(Stmt::AssignElem(name, sub, self.expr()?))
            }
            other => self.err(format!("expected `=` or `[`, found {other:?}")),
        }
    }

    fn cond(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.expr()?;
        if let Some(Token::Cmp(op)) = self.peek().cloned() {
            self.at += 1;
            let rhs = self.expr()?;
            Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.at += 1;
            let rhs = self.term()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.at += 1;
            let rhs = self.unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == Some(&Token::Minus) {
            self.at += 1;
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Token::Int(v)) => Ok(Expr::Int(v)),
            Some(Token::LParen) => {
                let e = self.cond()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if name == "null" {
                    return Ok(Expr::Null);
                }
                match self.peek() {
                    Some(Token::LParen) => {
                        self.at += 1;
                        let mut args = Vec::new();
                        if self.peek() != Some(&Token::RParen) {
                            loop {
                                args.push(self.cond()?);
                                if self.peek() == Some(&Token::Comma) {
                                    self.at += 1;
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect(&Token::RParen, "`)`")?;
                        Ok(Expr::Call(name, args))
                    }
                    Some(Token::LBracket) => {
                        self.at += 1;
                        let sub = self.expr()?;
                        self.expect(&Token::RBracket, "`]`")?;
                        Ok(Expr::Index(name, Box::new(sub)))
                    }
                    _ => Ok(Expr::Var(name)),
                }
            }
            other => self.err(format!("expected an expression, found {other:?}")),
        }
    }
}

/// Parses a complete loop program.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src).map_err(|e| ParseError {
        pos: e.pos,
        span: e.span(),
        msg: e.msg,
    })?;
    let mut p = Parser {
        toks,
        at: 0,
        end: src.len(),
    };
    p.program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::lexer::CmpOp;

    #[test]
    fn parses_figure1b() {
        let p = parse_program(
            "pointer tmp = head(list)\n\
             while (tmp != null) {\n\
                 work[tmp] = f(work[tmp])\n\
                 tmp = next(tmp)\n\
             }",
        )
        .unwrap();
        assert_eq!(p.decls.len(), 1);
        assert_eq!(p.decls[0].name, "tmp");
        assert_eq!(p.body.len(), 2);
        assert!(matches!(p.cond, Expr::Cmp(CmpOp::Ne, _, _)));
        assert!(matches!(&p.body[1], Stmt::AssignVar(v, _) if v == "tmp"));
    }

    #[test]
    fn parses_do_loop_with_exit() {
        let p = parse_program(
            "integer i = 1\n\
             while (i <= n) {\n\
                 exit if (f(i) == 1)\n\
                 A[i] = 2 * A[i];\n\
                 i = i + 1\n\
             }",
        )
        .unwrap();
        assert_eq!(p.body.len(), 3);
        assert!(matches!(&p.body[0], Stmt::ExitIf(_)));
        assert!(matches!(&p.body[1], Stmt::AssignElem(a, _, _) if a == "A"));
    }

    #[test]
    fn precedence_is_standard() {
        let p = parse_program("while (x < 9) { x = 1 + 2 * 3 }").unwrap();
        let Stmt::AssignVar(_, rhs) = &p.body[0] else {
            panic!()
        };
        // 1 + (2 * 3)
        assert_eq!(
            *rhs,
            Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Int(1)),
                Box::new(Expr::Bin(
                    BinOp::Mul,
                    Box::new(Expr::Int(2)),
                    Box::new(Expr::Int(3))
                )),
            )
        );
    }

    #[test]
    fn subscripted_subscripts_parse() {
        let p = parse_program("while (i < n) { A[idx[i]] = A[idx[i]] + 1; i = i + 1 }").unwrap();
        let Stmt::AssignElem(arr, sub, _) = &p.body[0] else {
            panic!()
        };
        assert_eq!(arr, "A");
        assert!(matches!(sub, Expr::Index(b, _) if b == "idx"));
    }

    #[test]
    fn missing_while_is_an_error() {
        let e = parse_program("integer i = 0\ni = i + 1").unwrap_err();
        assert!(e.msg.contains("while"), "{e}");
    }

    #[test]
    fn unterminated_body_is_an_error() {
        let e = parse_program("while (x < 1) { x = x + 1").unwrap_err();
        assert!(e.msg.contains("unterminated") || e.msg.contains('}'), "{e}");
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let e = parse_program("while (x < 1) { x = x + 1 } garbage").unwrap_err();
        assert!(e.msg.contains("trailing"), "{e}");
    }

    #[test]
    fn statement_spans_cover_their_source() {
        let src = "integer i = 0\nwhile (i < n) {\n    A[i] = 2 * A[i]\n    i = i + 1\n}";
        let p = parse_program(src).unwrap();
        assert_eq!(p.decls[0].span, Span::new(0, 13));
        assert_eq!(&src[p.cond_span.start..p.cond_span.end], "i < n");
        assert_eq!(
            &src[p.stmt_spans[0].start..p.stmt_spans[0].end],
            "A[i] = 2 * A[i]"
        );
        assert_eq!(
            &src[p.stmt_spans[1].start..p.stmt_spans[1].end],
            "i = i + 1"
        );
    }

    #[test]
    fn errors_carry_the_offending_token_span() {
        let e = parse_program("while (x < 1) { x = x + 1 } garbage").unwrap_err();
        assert_eq!(e.span, Span::new(28, 35));
        assert_eq!(e.pos, 28);
    }

    #[test]
    fn parenthesized_negation() {
        let p = parse_program("while (x > -(3 + 4)) { x = x - 1 }").unwrap();
        assert!(matches!(p.cond, Expr::Cmp(CmpOp::Gt, _, _)));
    }
}
