//! A small Fortran-flavored front-end for WHILE loops.
//!
//! The paper's compiler consumes Fortran; this front-end accepts the same
//! loop shapes in a compact textual form and lowers them to [`LoopIr`],
//! completing the source → analysis → plan → execution pipeline. The
//! paper's Figure 1(b), for example:
//!
//! ```text
//! pointer tmp = head(list)
//! while (tmp != null) {
//!     work[tmp] = f(work[tmp])
//!     tmp = next(tmp)
//! }
//! ```
//!
//! Recognized recurrence updates (the dispatcher candidates): `x = x + c`
//! (induction), `x = a*x + b` in any arrangement (associative), and
//! `p = next(p)` (pointer chase). Subscripts affine in a recognized
//! induction variable with a known initial value lower to
//! [`Subscript::Affine`]; anything else (subscripted subscripts, unknown
//! bases, nonlinear forms) lowers to [`Subscript::Unknown`] — exactly the
//! conservatism the run-time PD test exists to recover from.
//!
//! [`Subscript::Affine`]: crate::ir::Subscript::Affine
//! [`Subscript::Unknown`]: crate::ir::Subscript::Unknown
//! [`LoopIr`]: crate::ir::LoopIr

mod ast;
pub mod lexer;
mod lower;
mod parser;

pub use ast::{BinOp, Decl, Expr, Program, Stmt};
pub use lexer::{LexError, Token};
pub use lower::{lower, LowerError};
pub use parser::{parse_program, ParseError};

use crate::ir::LoopIr;
use crate::span::{render_pos, snippet, Span};

/// Parses and lowers one WHILE loop from source text.
pub fn parse_loop(src: &str) -> Result<LoopIr, FrontendError> {
    let program = parse_program(src)?;
    Ok(lower(&program)?)
}

/// Any front-end failure, with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontendError {
    /// Tokenization or syntax error.
    Parse(ParseError),
    /// The program is syntactically fine but cannot be lowered.
    Lower(LowerError),
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::Parse(e) => write!(f, "parse error: {e}"),
            FrontendError::Lower(e) => write!(f, "lowering error: {e}"),
        }
    }
}

impl std::error::Error for FrontendError {}

impl FrontendError {
    /// The source span the failure points at.
    pub fn span(&self) -> Span {
        match self {
            FrontendError::Parse(e) => e.span,
            FrontendError::Lower(e) => e.span,
        }
    }

    /// Renders the error against its source as a rustc-style snippet:
    /// `line:column`, the offending line, and a caret underline.
    pub fn render(&self, src: &str) -> String {
        let span = self.span();
        let (line, caret) = snippet(src, span);
        format!(
            "error at {}: {}\n    {}\n    {}",
            render_pos(src, span.start),
            self,
            line,
            caret
        )
    }
}

impl From<ParseError> for FrontendError {
    fn from(e: ParseError) -> Self {
        FrontendError::Parse(e)
    }
}

impl From<LowerError> for FrontendError {
    fn from(e: LowerError) -> Self {
        FrontendError::Lower(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendered_errors_report_line_and_column() {
        let src = "integer i = 0\nwhile (i < n) {\n    i = i $ 1\n}";
        let err = parse_loop(src).unwrap_err();
        let rendered = err.render(src);
        assert!(rendered.starts_with("error at 3:11:"), "{rendered}");
        assert!(rendered.contains("i = i $ 1"), "{rendered}");
        assert!(rendered.contains('^'), "{rendered}");
    }
}
