//! A small Fortran-flavored front-end for WHILE loops.
//!
//! The paper's compiler consumes Fortran; this front-end accepts the same
//! loop shapes in a compact textual form and lowers them to [`LoopIr`],
//! completing the source → analysis → plan → execution pipeline. The
//! paper's Figure 1(b), for example:
//!
//! ```text
//! pointer tmp = head(list)
//! while (tmp != null) {
//!     work[tmp] = f(work[tmp])
//!     tmp = next(tmp)
//! }
//! ```
//!
//! Recognized recurrence updates (the dispatcher candidates): `x = x + c`
//! (induction), `x = a*x + b` in any arrangement (associative), and
//! `p = next(p)` (pointer chase). Subscripts affine in a recognized
//! induction variable with a known initial value lower to
//! [`Subscript::Affine`]; anything else (subscripted subscripts, unknown
//! bases, nonlinear forms) lowers to [`Subscript::Unknown`] — exactly the
//! conservatism the run-time PD test exists to recover from.
//!
//! [`Subscript::Affine`]: crate::ir::Subscript::Affine
//! [`Subscript::Unknown`]: crate::ir::Subscript::Unknown
//! [`LoopIr`]: crate::ir::LoopIr

mod ast;
pub mod lexer;
mod lower;
mod parser;

pub use ast::{BinOp, Decl, Expr, Program, Stmt};
pub use lexer::{LexError, Token};
pub use lower::{lower, LowerError};
pub use parser::{parse_program, ParseError};

use crate::ir::LoopIr;

/// Parses and lowers one WHILE loop from source text.
pub fn parse_loop(src: &str) -> Result<LoopIr, FrontendError> {
    let program = parse_program(src)?;
    Ok(lower(&program)?)
}

/// Any front-end failure, with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontendError {
    /// Tokenization or syntax error.
    Parse(ParseError),
    /// The program is syntactically fine but cannot be lowered.
    Lower(LowerError),
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::Parse(e) => write!(f, "parse error: {e}"),
            FrontendError::Lower(e) => write!(f, "lowering error: {e}"),
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<ParseError> for FrontendError {
    fn from(e: ParseError) -> Self {
        FrontendError::Parse(e)
    }
}

impl From<LowerError> for FrontendError {
    fn from(e: LowerError) -> Self {
        FrontendError::Lower(e)
    }
}
