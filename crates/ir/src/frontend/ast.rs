//! Abstract syntax for the loop DSL.

use super::lexer::CmpOp;
use crate::span::Span;

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// The `null` pointer constant.
    Null,
    /// Variable reference.
    Var(String),
    /// Array element: `name[subscript]`.
    Index(String, Box<Expr>),
    /// Call of an uninterpreted function: `name(args…)`.
    Call(String, Vec<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary arithmetic.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Comparison (only valid in conditions).
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A pre-loop declaration: `integer i = 1`, `pointer p = head(list)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decl {
    /// Declared type keyword (`integer`, `real`, `pointer`).
    pub ty: String,
    /// Variable name.
    pub name: String,
    /// Optional initializer.
    pub init: Option<Expr>,
    /// Source span of the whole declaration.
    pub span: Span,
}

/// A loop-body statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `lhs = rhs` with a scalar left-hand side.
    AssignVar(String, Expr),
    /// `name[sub] = rhs`.
    AssignElem(String, Expr, Expr),
    /// `exit if (cond)`.
    ExitIf(Expr),
}

/// A whole program: declarations, the WHILE condition, the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Pre-loop declarations.
    pub decls: Vec<Decl>,
    /// The `while (…)` continuation condition.
    pub cond: Expr,
    /// Source span of the WHILE condition.
    pub cond_span: Span,
    /// Body statements in program order.
    pub body: Vec<Stmt>,
    /// Source span of each body statement (`stmt_spans[i]` covers
    /// `body[i]`). Kept parallel to `body` so pattern matches on the
    /// statements stay untouched; programs built by hand may leave it
    /// empty and spans degrade to zero-width.
    pub stmt_spans: Vec<Span>,
}

impl Program {
    /// The span of body statement `i` (zero-width when unknown).
    pub fn stmt_span(&self, i: usize) -> Span {
        self.stmt_spans.get(i).copied().unwrap_or_default()
    }
}

impl Expr {
    /// Walks the expression tree, calling `f` on every node.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Int(_) | Expr::Null | Expr::Var(_) => {}
            Expr::Index(_, sub) => sub.walk(f),
            Expr::Call(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Neg(e) => e.walk(f),
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
        }
    }
}
