//! Tokenizer for the loop DSL.

use crate::span::Span;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `=`.
    Assign,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `,`.
    Comma,
    /// `;`.
    Semi,
    /// `<`, `>`, `<=`, `>=`, `==`, `!=`.
    Cmp(CmpOp),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// A tokenization failure at a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl LexError {
    /// The source span of the offending character.
    pub fn span(&self) -> Span {
        Span::new(self.pos, self.pos + 1)
    }
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.pos)
    }
}

/// Tokenizes `src`, skipping whitespace and `//`/`!` line comments (the
/// latter being the Fortran comment flavor). Every token carries the byte
/// [`Span`] of the source text it was read from.
pub fn lex(src: &str) -> Result<Vec<(Span, Token)>, LexError> {
    let bytes = src.as_bytes();
    let mut out: Vec<(Span, Token)> = Vec::new();
    let mut i = 0usize;
    // Tokens are pushed with their start offset; the end offset is patched
    // in as soon as `i` has advanced past the token.
    macro_rules! tok {
        ($start:expr, $t:expr, $len:expr) => {{
            out.push((Span::new($start, $start + $len), $t));
        }};
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            // `!=` must win over the Fortran-style `!` comment
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tok!(i, Token::Cmp(CmpOp::Ne), 2);
                i += 2;
            }
            '!' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tok!(i, Token::LParen, 1);
                i += 1;
            }
            ')' => {
                tok!(i, Token::RParen, 1);
                i += 1;
            }
            '[' => {
                tok!(i, Token::LBracket, 1);
                i += 1;
            }
            ']' => {
                tok!(i, Token::RBracket, 1);
                i += 1;
            }
            '{' => {
                tok!(i, Token::LBrace, 1);
                i += 1;
            }
            '}' => {
                tok!(i, Token::RBrace, 1);
                i += 1;
            }
            '+' => {
                tok!(i, Token::Plus, 1);
                i += 1;
            }
            '-' => {
                tok!(i, Token::Minus, 1);
                i += 1;
            }
            '*' => {
                tok!(i, Token::Star, 1);
                i += 1;
            }
            '/' => {
                tok!(i, Token::Slash, 1);
                i += 1;
            }
            ',' => {
                tok!(i, Token::Comma, 1);
                i += 1;
            }
            ';' => {
                tok!(i, Token::Semi, 1);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tok!(i, Token::Cmp(CmpOp::Le), 2);
                    i += 2;
                } else {
                    tok!(i, Token::Cmp(CmpOp::Lt), 1);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tok!(i, Token::Cmp(CmpOp::Ge), 2);
                    i += 2;
                } else {
                    tok!(i, Token::Cmp(CmpOp::Gt), 1);
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tok!(i, Token::Cmp(CmpOp::Eq), 2);
                    i += 2;
                } else {
                    tok!(i, Token::Assign, 1);
                    i += 1;
                }
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let value = text.parse::<i64>().map_err(|_| LexError {
                    pos: start,
                    msg: format!("integer literal `{text}` out of range"),
                })?;
                tok!(start, Token::Int(value), i - start);
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tok!(start, Token::Ident(src[start..i].to_string()), i - start);
            }
            _ => {
                return Err(LexError {
                    pos: i,
                    msg: format!("unexpected character `{c}`"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|(_, t)| t).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("i = i + 1"),
            vec![
                Token::Ident("i".into()),
                Token::Assign,
                Token::Ident("i".into()),
                Token::Plus,
                Token::Int(1),
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("a < b <= c == d >= e > f"),
            vec![
                Token::Ident("a".into()),
                Token::Cmp(CmpOp::Lt),
                Token::Ident("b".into()),
                Token::Cmp(CmpOp::Le),
                Token::Ident("c".into()),
                Token::Cmp(CmpOp::Eq),
                Token::Ident("d".into()),
                Token::Cmp(CmpOp::Ge),
                Token::Ident("e".into()),
                Token::Cmp(CmpOp::Gt),
                Token::Ident("f".into()),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("x // trailing\ny"),
            vec![Token::Ident("x".into()), Token::Ident("y".into())]
        );
        assert_eq!(
            toks("x ! fortran\ny"),
            vec![Token::Ident("x".into()), Token::Ident("y".into())]
        );
    }

    #[test]
    fn subscripts_and_calls() {
        assert_eq!(
            toks("A[i] = f(B[j], 3)"),
            vec![
                Token::Ident("A".into()),
                Token::LBracket,
                Token::Ident("i".into()),
                Token::RBracket,
                Token::Assign,
                Token::Ident("f".into()),
                Token::LParen,
                Token::Ident("B".into()),
                Token::LBracket,
                Token::Ident("j".into()),
                Token::RBracket,
                Token::Comma,
                Token::Int(3),
                Token::RParen,
            ]
        );
    }

    #[test]
    fn not_equal_beats_comment() {
        assert_eq!(
            toks("a != b"),
            vec![
                Token::Ident("a".into()),
                Token::Cmp(CmpOp::Ne),
                Token::Ident("b".into())
            ]
        );
        // a bare `!` still comments to end of line
        assert_eq!(
            toks(
                "a !x != y
b"
            ),
            vec![Token::Ident("a".into()), Token::Ident("b".into())]
        );
    }

    #[test]
    fn bad_character_is_reported_with_position() {
        let e = lex("abc $").unwrap_err();
        assert_eq!(e.pos, 4);
    }

    #[test]
    fn positions_are_byte_offsets() {
        let lexed = lex("ab cd").unwrap();
        assert_eq!(lexed[0].0, Span::new(0, 2));
        assert_eq!(lexed[1].0, Span::new(3, 5));
    }

    #[test]
    fn spans_cover_multibyte_tokens() {
        let lexed = lex("x <= 1234").unwrap();
        assert_eq!(lexed[1].0, Span::new(2, 4));
        assert_eq!(lexed[2].0, Span::new(5, 9));
    }
}
