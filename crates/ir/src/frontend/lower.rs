//! Lowering: AST → [`LoopIr`].
//!
//! The interesting work is recognition — recurrence updates (induction /
//! associative / pointer chase) and affine subscripts — because that is
//! what decides, downstream, which of the paper's methods applies.

use super::ast::{BinOp, Decl, Expr, Program, Stmt};
use crate::ir::{ArrayId, LoopIr, Stmt as IrStmt, Subscript, UpdateOp, VarId, WRef};
use crate::span::Span;
use std::collections::HashMap;

/// A lowering failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// Description.
    pub msg: String,
    /// Source span the failure points at (zero-width when unknown).
    pub span: Span,
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// A linear form `Σ coeff·var + konst` with integer coefficients, or
/// nothing when the expression is not linear/foldable.
fn linear_form(e: &Expr) -> Option<(HashMap<String, i64>, i64)> {
    match e {
        Expr::Int(v) => Some((HashMap::new(), *v)),
        Expr::Var(v) => {
            let mut m = HashMap::new();
            m.insert(v.clone(), 1);
            Some((m, 0))
        }
        Expr::Neg(inner) => {
            let (mut m, k) = linear_form(inner)?;
            for c in m.values_mut() {
                *c = -*c;
            }
            Some((m, -k))
        }
        Expr::Bin(BinOp::Add, a, b) => {
            let (mut ma, ka) = linear_form(a)?;
            let (mb, kb) = linear_form(b)?;
            for (v, c) in mb {
                *ma.entry(v).or_insert(0) += c;
            }
            Some((ma, ka + kb))
        }
        Expr::Bin(BinOp::Sub, a, b) => {
            let (mut ma, ka) = linear_form(a)?;
            let (mb, kb) = linear_form(b)?;
            for (v, c) in mb {
                *ma.entry(v).or_insert(0) -= c;
            }
            Some((ma, ka - kb))
        }
        Expr::Bin(BinOp::Mul, a, b) => {
            let (ma, ka) = linear_form(a)?;
            let (mb, kb) = linear_form(b)?;
            match (ma.values().all(|&c| c == 0), mb.values().all(|&c| c == 0)) {
                (true, _) => {
                    // constant × linear
                    let mut m = mb;
                    for c in m.values_mut() {
                        *c *= ka;
                    }
                    Some((m, ka * kb))
                }
                (_, true) => {
                    let mut m = ma;
                    for c in m.values_mut() {
                        *c *= kb;
                    }
                    Some((m, ka * kb))
                }
                _ => None, // var × var: nonlinear
            }
        }
        _ => None,
    }
}

/// The recurrence shape of `name = rhs`, if `rhs` references `name`.
fn recurrence_shape(name: &str, rhs: &Expr) -> Option<UpdateOp> {
    // p = next(p)
    if let Expr::Call(f, args) = rhs {
        if f == "next" && args.len() == 1 {
            if let Expr::Var(v) = &args[0] {
                if v == name {
                    return Some(UpdateOp::PointerChase);
                }
            }
        }
    }
    // affine in itself?
    if let Some((coeffs, _)) = linear_form(rhs) {
        let self_coeff = coeffs.get(name).copied().unwrap_or(0);
        let others = coeffs.iter().any(|(v, &c)| v != name && c != 0);
        if self_coeff != 0 && !others {
            return Some(if self_coeff == 1 {
                UpdateOp::AddConst
            } else {
                UpdateOp::MulAddConst
            });
        }
    }
    // any other self-reference
    let mut mentions = false;
    rhs.walk(&mut |e| {
        if let Expr::Var(v) = e {
            if v == name {
                mentions = true;
            }
        }
    });
    mentions.then_some(UpdateOp::Other)
}

struct Lowerer {
    vars: HashMap<String, VarId>,
    arrays: HashMap<String, ArrayId>,
    /// Induction variables: name → (stride per iteration, initial value).
    inductions: HashMap<String, (i64, Option<i64>)>,
}

impl Lowerer {
    fn var(&mut self, name: &str) -> VarId {
        let next = VarId(self.vars.len() as u32);
        *self.vars.entry(name.to_string()).or_insert(next)
    }

    fn array(&mut self, name: &str) -> ArrayId {
        let next = ArrayId(self.arrays.len() as u32);
        *self.arrays.entry(name.to_string()).or_insert(next)
    }

    /// Lowers a subscript expression to the IR's subscript lattice.
    fn subscript(&mut self, e: &Expr) -> Subscript {
        let Some((coeffs, konst)) = linear_form(e) else {
            return Subscript::Unknown;
        };
        let mut coeff = 0i64;
        let mut offset = konst;
        for (v, c) in &coeffs {
            if *c == 0 {
                continue;
            }
            match self.inductions.get(v) {
                Some((stride, Some(init))) => {
                    // v = init + stride·iteration (update at end of body)
                    coeff += c * stride;
                    offset += c * init;
                }
                _ => return Subscript::Unknown, // unknown base or non-induction
            }
        }
        if coeff == 0 {
            Subscript::Const(offset)
        } else {
            Subscript::Affine { coeff, offset }
        }
    }

    /// Collects the memory references an expression reads.
    fn reads_of(&mut self, e: &Expr, out: &mut Vec<WRef>) {
        match e {
            Expr::Int(_) | Expr::Null => {}
            Expr::Var(v) => {
                let r = WRef::Scalar(self.var(v));
                if !out.contains(&r) {
                    out.push(r);
                }
            }
            Expr::Index(arr, sub) => {
                let s = self.subscript(sub);
                let a = self.array(arr);
                let r = WRef::Element(a, s);
                if !out.contains(&r) {
                    out.push(r);
                }
                self.reads_of(sub, out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    self.reads_of(a, out);
                }
            }
            Expr::Neg(inner) => self.reads_of(inner, out),
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
                self.reads_of(a, out);
                self.reads_of(b, out);
            }
        }
    }
}

fn const_fold(e: &Expr) -> Option<i64> {
    linear_form(e).and_then(|(coeffs, k)| coeffs.values().all(|&c| c == 0).then_some(k))
}

/// Lowers a parsed program to [`LoopIr`].
pub fn lower(p: &Program) -> Result<LoopIr, LowerError> {
    let mut lw = Lowerer {
        vars: HashMap::new(),
        arrays: HashMap::new(),
        inductions: HashMap::new(),
    };

    // initial values from declarations
    let inits: HashMap<&str, Option<i64>> = p
        .decls
        .iter()
        .map(|Decl { name, init, .. }| (name.as_str(), init.as_ref().and_then(const_fold)))
        .collect();

    // first pass: find induction variables (x = x + c) so subscripts of
    // *any* statement can use them
    for st in &p.body {
        if let Stmt::AssignVar(name, rhs) = st {
            if recurrence_shape(name, rhs) == Some(UpdateOp::AddConst) {
                if let Some((coeffs, k)) = linear_form(rhs) {
                    debug_assert_eq!(coeffs.get(name.as_str()), Some(&1));
                    let init = inits.get(name.as_str()).copied().flatten();
                    lw.inductions.insert(name.clone(), (k, init));
                }
            }
        }
    }

    let mut ir = LoopIr::new();

    // the WHILE condition is the loop's first exit test
    let mut cond_reads = Vec::new();
    lw.reads_of(&p.cond, &mut cond_reads);
    ir.push(IrStmt::exit_test(cond_reads).with_span(p.cond_span));

    for (si, st) in p.body.iter().enumerate() {
        let span = p.stmt_span(si);
        match st {
            Stmt::ExitIf(c) => {
                let mut reads = Vec::new();
                lw.reads_of(c, &mut reads);
                ir.push(IrStmt::exit_test(reads).with_span(span));
            }
            Stmt::AssignVar(name, rhs) => {
                let mut reads = Vec::new();
                lw.reads_of(rhs, &mut reads);
                match recurrence_shape(name, rhs) {
                    Some(op) => {
                        let v = lw.var(name);
                        let extra: Vec<WRef> = reads
                            .into_iter()
                            .filter(|r| *r != WRef::Scalar(v))
                            .collect();
                        ir.push(IrStmt::update(v, op, extra).with_span(span));
                    }
                    None => {
                        let v = lw.var(name);
                        ir.push(IrStmt::assign(vec![WRef::Scalar(v)], reads).with_span(span));
                    }
                }
            }
            Stmt::AssignElem(arr, sub, rhs) => {
                let mut reads = Vec::new();
                lw.reads_of(sub, &mut reads);
                lw.reads_of(rhs, &mut reads);
                let s = lw.subscript(sub);
                let a = lw.array(arr);
                ir.push(IrStmt::assign(vec![WRef::Element(a, s)], reads).with_span(span));
            }
        }
    }

    if ir.is_empty() {
        return Err(LowerError {
            msg: "the loop lowers to no statements".into(),
            span: p.cond_span,
        });
    }
    Ok(ir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::parse_loop;
    use crate::ir::StmtKind;
    use crate::plan::{plan, StrategyKind};
    use wlp_core::taxonomy::{DispatcherClass, TerminatorClass};

    #[test]
    fn figure1b_source_plans_like_the_builder() {
        let ir = parse_loop(
            "pointer tmp = head(list)\n\
             while (tmp != null) {\n\
                 work[tmp] = f(work[tmp])\n\
                 tmp = next(tmp)\n\
             }",
        )
        .unwrap();
        let p = plan(&ir);
        assert_eq!(p.dispatcher, DispatcherClass::General);
        assert_eq!(p.terminator, TerminatorClass::RemainderInvariant);
        assert_eq!(p.strategy, StrategyKind::General3);
        assert!(!p.needs_undo);
    }

    #[test]
    fn figure1e_source_plans_prefix() {
        let ir = parse_loop(
            "integer r = 1\n\
             while (f(r) < 100) {\n\
                 work[r] = work[r] + 1\n\
                 r = 3 * r + 2\n\
             }",
        )
        .unwrap();
        let p = plan(&ir);
        assert_eq!(p.dispatcher, DispatcherClass::Associative);
        assert_eq!(p.strategy, StrategyKind::PrefixDoall);
    }

    #[test]
    fn do_loop_source_gets_affine_subscripts() {
        let ir = parse_loop(
            "integer i = 0\n\
             while (i < n) {\n\
                 A[i] = 2 * A[i]\n\
                 B[2*i + 3] = A[i]\n\
                 i = i + 1\n\
             }",
        )
        .unwrap();
        // A[i] write: affine coeff 1, offset 0; B write: coeff 2, offset 3
        let a_write = &ir.stmts[1].writes[0];
        assert!(matches!(
            a_write,
            WRef::Element(
                _,
                Subscript::Affine {
                    coeff: 1,
                    offset: 0
                }
            )
        ));
        let b_write = &ir.stmts[2].writes[0];
        assert!(matches!(
            b_write,
            WRef::Element(
                _,
                Subscript::Affine {
                    coeff: 2,
                    offset: 3
                }
            )
        ));
        let p = plan(&ir);
        assert_eq!(p.strategy, StrategyKind::InductionDoall);
        assert!(!p.needs_pd_test, "affine accesses are analyzable");
    }

    #[test]
    fn subscripted_subscript_source_needs_pd() {
        let ir = parse_loop(
            "integer i = 0\n\
             while (i < n) {\n\
                 A[idx[i]] = A[idx[i]] + w[i]\n\
                 i = i + 1\n\
             }",
        )
        .unwrap();
        let p = plan(&ir);
        assert!(p.needs_pd_test, "A[idx[i]] is unanalyzable");
        assert_eq!(p.strategy, StrategyKind::InductionDoall);
    }

    #[test]
    fn rv_exit_is_detected_from_source() {
        let ir = parse_loop(
            "integer i = 0\n\
             while (i < n) {\n\
                 A[i] = g(A[i])\n\
                 exit if (A[i] > limit)\n\
                 i = i + 1\n\
             }",
        )
        .unwrap();
        let p = plan(&ir);
        assert_eq!(p.terminator, TerminatorClass::RemainderVariant);
        assert!(p.needs_undo);
    }

    #[test]
    fn provable_recurrence_from_source_stays_sequential() {
        let ir = parse_loop(
            "integer i = 1\n\
             while (i < n) {\n\
                 A[i] = A[i] + A[i - 1]\n\
                 i = i + 1\n\
             }",
        )
        .unwrap();
        assert_eq!(plan(&ir).strategy, StrategyKind::Sequential);
    }

    #[test]
    fn unknown_induction_base_degrades_to_unknown_subscript() {
        // i's initial value is not a compile-time constant
        let ir = parse_loop(
            "integer i = start()\n\
             while (i < n) {\n\
                 A[i] = 0\n\
                 i = i + 1\n\
             }",
        )
        .unwrap();
        let w = &ir.stmts[1].writes[0];
        assert!(matches!(w, WRef::Element(_, Subscript::Unknown)));
    }

    #[test]
    fn constant_subscript_is_recognized() {
        let ir = parse_loop("integer i = 0\nwhile (i < n) { A[7] = i; i = i + 1 }").unwrap();
        let w = &ir.stmts[1].writes[0];
        assert!(matches!(w, WRef::Element(_, Subscript::Const(7))));
    }

    #[test]
    fn general_self_update_is_other() {
        let ir = parse_loop("while (x < n) { x = f(x) }").unwrap();
        assert!(matches!(
            ir.stmts[1].kind,
            StmtKind::Update(UpdateOp::Other)
        ));
    }

    #[test]
    fn spans_survive_lowering() {
        let src = "integer i = 0\nwhile (i < n) {\n    A[i] = 2 * A[i]\n    i = i + 1\n}";
        let ir = parse_loop(src).unwrap();
        // stmt 0 is the WHILE condition, stmt 1 the array assignment
        let cond = ir.stmts[0].span.unwrap();
        assert_eq!(&src[cond.start..cond.end], "i < n");
        let body = ir.stmts[1].span.unwrap();
        assert_eq!(&src[body.start..body.end], "A[i] = 2 * A[i]");
    }

    #[test]
    fn linear_form_handles_nesting() {
        use super::super::parser::parse_program;
        let p = parse_program("while (q < 1) { y = 2 * (i + 3) - i }").unwrap();
        let Stmt::AssignVar(_, rhs) = &p.body[0] else {
            panic!()
        };
        let (coeffs, k) = linear_form(rhs).unwrap();
        assert_eq!(coeffs.get("i"), Some(&1)); // 2i − i
        assert_eq!(k, 6);
    }

    #[test]
    fn nonlinear_forms_are_rejected() {
        use super::super::parser::parse_program;
        let p = parse_program("while (q < 1) { y = i * i }").unwrap();
        let Stmt::AssignVar(_, rhs) = &p.body[0] else {
            panic!()
        };
        assert!(linear_form(rhs).is_none());
    }
}
