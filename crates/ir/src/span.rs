//! Byte-offset source spans and line:column rendering.
//!
//! The front-end records, for every token, statement and declaration, the
//! half-open byte range `[start, end)` of the source text it came from.
//! Spans flow from the lexer through the parser into the AST, survive
//! lowering onto [`crate::ir::Stmt`], and let every downstream error or
//! diagnostic point at `line:column` instead of a bare byte offset.

/// A half-open byte range `[start, end)` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span {
            start,
            end: end.max(start),
        }
    }

    /// A zero-width span at `pos` (end-of-input markers, synthesized
    /// statements).
    pub fn point(pos: usize) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Whether the span is zero-width.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// 1-based line and column of a byte offset within `src`.
///
/// Columns count bytes from the start of the line (the DSL is ASCII), and
/// offsets past the end of `src` map to one past the last column — the
/// conventional location for "unexpected end of input".
pub fn line_col(src: &str, pos: usize) -> (usize, usize) {
    let pos = pos.min(src.len());
    let before = &src.as_bytes()[..pos];
    let line = 1 + before.iter().filter(|&&b| b == b'\n').count();
    let col = 1 + before
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(pos, |nl| pos - nl - 1);
    (line, col)
}

/// Renders `pos` within `src` as `line:column`.
pub fn render_pos(src: &str, pos: usize) -> String {
    let (l, c) = line_col(src, pos);
    format!("{l}:{c}")
}

/// Extracts the source line containing `pos` together with a caret line
/// underlining `span` (clamped to that line) — the body of a rustc-style
/// diagnostic snippet. Returns `(line_text, caret_line)`.
pub fn snippet(src: &str, span: Span) -> (String, String) {
    let pos = span.start.min(src.len());
    let line_start = src[..pos].rfind('\n').map_or(0, |i| i + 1);
    let line_end = src[pos..].find('\n').map_or(src.len(), |i| pos + i);
    let line = &src[line_start..line_end];
    let col = pos - line_start;
    let width = span
        .end
        .min(line_end)
        .saturating_sub(span.start)
        .clamp(1, line.len().saturating_sub(col).max(1));
    let caret = format!("{}{}", " ".repeat(col), "^".repeat(width));
    (line.to_string(), caret)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_is_one_based() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 1), (1, 2));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 7), (3, 2));
    }

    #[test]
    fn past_the_end_maps_to_final_column() {
        let src = "ab\ncd";
        assert_eq!(line_col(src, 99), (2, 3));
        assert_eq!(render_pos(src, 99), "2:3");
    }

    #[test]
    fn empty_source() {
        assert_eq!(line_col("", 0), (1, 1));
    }

    #[test]
    fn span_union_covers_both() {
        let a = Span::new(3, 5);
        let b = Span::new(10, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }

    #[test]
    fn snippet_underlines_the_span() {
        let src = "x = 1\ny = oops + 2\n";
        let start = src.find("oops").unwrap();
        let (line, caret) = snippet(src, Span::new(start, start + 4));
        assert_eq!(line, "y = oops + 2");
        assert_eq!(caret, "    ^^^^");
    }

    #[test]
    fn snippet_clamps_zero_width_spans() {
        let src = "abc";
        let (line, caret) = snippet(src, Span::point(3));
        assert_eq!(line, "abc");
        assert_eq!(caret, "   ^");
    }
}
