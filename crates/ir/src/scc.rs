//! Strongly-connected components of the dependence graph.
//!
//! SCCs are the unit of loop distribution: statements in one SCC are
//! mutually dependent and must stay in one loop; the condensation's
//! topological order is a legal distribution order (Wolfe \[27\]). An
//! iterative Tarjan keeps deep graphs from overflowing the stack.

use crate::dependence::DepGraph;

/// Computes SCCs of `g`. Returns the components in the
/// **lexicographically smallest topological order** of the condensation:
/// component `k` only depends on components `< k`, and among all legal
/// orders the one closest to original statement order is chosen — so
/// mutually independent statements keep their program order, which is
/// what distribution (and the fission certifier's block/stage order)
/// relies on for loop-independent dependences. Each component lists
/// statement indices in ascending order.
pub fn condense(g: &DepGraph) -> Vec<Vec<usize>> {
    let n = g.n;
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in &g.edges {
        if e.from != e.to {
            adj[e.from].push(e.to);
        }
    }

    // iterative Tarjan
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comps: Vec<Vec<usize>> = Vec::new();

    #[derive(Clone, Copy)]
    struct Frame {
        v: usize,
        child: usize,
    }

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call: Vec<Frame> = vec![Frame { v: start, child: 0 }];
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(frame) = call.last_mut() {
            let v = frame.v;
            if frame.child < adj[v].len() {
                let w = adj[v][frame.child];
                frame.child += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push(Frame { v: w, child: 0 });
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    comps.push(comp);
                }
                let done = *frame;
                call.pop();
                if let Some(parent) = call.last_mut() {
                    low[parent.v] = low[parent.v].min(low[done.v]);
                }
            }
        }
    }

    // Tarjan emits components in reverse topological order, but that
    // order is only *a* topological order: components with no path
    // between them come out in whatever order the DFS roots reached
    // them, which can invert original statement order. Canonicalize by
    // running Kahn's algorithm over the condensation, always taking the
    // ready component whose smallest member statement is lowest — the
    // lexicographically smallest topological order.
    let mut comp_of = vec![usize::MAX; n];
    for (k, comp) in comps.iter().enumerate() {
        for &s in comp {
            comp_of[s] = k;
        }
    }
    let m = comps.len();
    let mut dag: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); m];
    let mut indeg = vec![0usize; m];
    for e in &g.edges {
        let (cf, ct) = (comp_of[e.from], comp_of[e.to]);
        if cf != ct && dag[cf].insert(ct) {
            indeg[ct] += 1;
        }
    }
    let mut ready = std::collections::BinaryHeap::new();
    for (k, comp) in comps.iter().enumerate() {
        if indeg[k] == 0 {
            ready.push(std::cmp::Reverse((comp[0], k)));
        }
    }
    let mut ordered = Vec::with_capacity(m);
    while let Some(std::cmp::Reverse((_, k))) = ready.pop() {
        ordered.push(std::mem::take(&mut comps[k]));
        for &next in &dag[k] {
            indeg[next] -= 1;
            if indeg[next] == 0 {
                ready.push(std::cmp::Reverse((comps[next][0], next)));
            }
        }
    }
    debug_assert_eq!(ordered.len(), m, "condensation must be acyclic");
    ordered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependence::{DepEdge, DepKind};

    fn graph(n: usize, edges: &[(usize, usize)]) -> DepGraph {
        DepGraph {
            n,
            edges: edges
                .iter()
                .map(|&(from, to)| DepEdge {
                    from,
                    to,
                    kind: DepKind::Flow,
                    loop_carried: true,
                })
                .collect(),
        }
    }

    #[test]
    fn chain_gives_singletons_in_order() {
        let g = graph(3, &[(0, 1), (1, 2)]);
        assert_eq!(condense(&g), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn cycle_collapses() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let comps = condense(&g);
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn topological_order_holds() {
        let g = graph(6, &[(0, 1), (1, 2), (2, 1), (2, 3), (4, 5), (5, 4), (3, 4)]);
        let comps = condense(&g);
        // position of each statement's component
        let mut pos = [0usize; 6];
        for (k, comp) in comps.iter().enumerate() {
            for &s in comp {
                pos[s] = k;
            }
        }
        for e in &g.edges {
            assert!(pos[e.from] <= pos[e.to], "edge {} → {}", e.from, e.to);
        }
    }

    #[test]
    fn independent_components_keep_statement_order() {
        // 1 → 2 → 4 is a chain; 0, 3, 5 are isolated. Every legal
        // topological order is acceptable graph-wise, but the canonical
        // one must be plain statement order — a later consumer must
        // never be scheduled ahead of an unrelated earlier producer.
        let g = graph(6, &[(1, 2), (2, 4)]);
        assert_eq!(
            condense(&g),
            vec![vec![0], vec![1], vec![2], vec![3], vec![4], vec![5]]
        );
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let g = graph(3, &[]);
        assert_eq!(condense(&g).len(), 3);
    }

    #[test]
    fn self_edges_do_not_break_tarjan() {
        let g = graph(2, &[(0, 0), (0, 1)]);
        assert_eq!(condense(&g), vec![vec![0], vec![1]]);
    }

    #[test]
    fn empty_graph() {
        let g = graph(0, &[]);
        assert!(condense(&g).is_empty());
    }

    #[test]
    fn large_chain_does_not_overflow_stack() {
        let n = 50_000;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let comps = condense(&graph(n, &edges));
        assert_eq!(comps.len(), n);
    }
}
