//! The loop intermediate representation.
//!
//! A [`LoopIr`] is the body of one WHILE loop, normalized so that every
//! statement's memory effects are explicit. Subscripts are either affine
//! in the (virtual) loop counter, or declared unanalyzable — the paper's
//! "very complex subscript expressions … and, most frequently, subscripted
//! subscripts" for which only the run-time PD test can help.

use crate::span::Span;

/// Identifies an array in the loop's environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

/// Identifies a scalar variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// An array subscript, as far as the front-end could analyze it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subscript {
    /// A loop-invariant constant index.
    Const(i64),
    /// Affine in the loop counter: `coeff·i + offset`.
    Affine {
        /// Multiplier of the loop counter.
        coeff: i64,
        /// Constant offset.
        offset: i64,
    },
    /// Unanalyzable at compile time (subscripted subscript, non-linear
    /// expression, cross-procedure value…).
    Unknown,
}

/// A memory reference: a scalar or an array element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WRef {
    /// A scalar variable.
    Scalar(VarId),
    /// An element of an array.
    Element(ArrayId, Subscript),
}

/// The recurrence-update operator of a statement, as recognized by the
/// front-end (this is the information induction/recurrence recognition
/// passes produce).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// `x = x + c`: an induction.
    AddConst,
    /// `x = a·x + b`: an associative (affine) recurrence.
    MulAddConst,
    /// `p = next(p)`: a pointer chase / general recurrence.
    PointerChase,
    /// Anything else that reads and writes the same variable.
    Other,
}

/// What a statement does, beyond its read/write sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmtKind {
    /// Ordinary computation.
    Assign,
    /// A recurrence update of the scalar it both reads and writes.
    Update(UpdateOp),
    /// A loop exit test; `reads` lists what the condition depends on.
    ExitTest,
}

/// One statement of the loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// Behavioural class.
    pub kind: StmtKind,
    /// Memory locations written.
    pub writes: Vec<WRef>,
    /// Memory locations read.
    pub reads: Vec<WRef>,
    /// Source span of the statement, when lowered from text (`None` for
    /// IR built programmatically). Analysis diagnostics anchor here.
    pub span: Option<Span>,
}

impl Stmt {
    /// An ordinary assignment.
    pub fn assign(writes: Vec<WRef>, reads: Vec<WRef>) -> Self {
        Stmt {
            kind: StmtKind::Assign,
            writes,
            reads,
            span: None,
        }
    }

    /// A recurrence update `var = op(var, …)`.
    pub fn update(var: VarId, op: UpdateOp, extra_reads: Vec<WRef>) -> Self {
        let mut reads = vec![WRef::Scalar(var)];
        reads.extend(extra_reads);
        Stmt {
            kind: StmtKind::Update(op),
            writes: vec![WRef::Scalar(var)],
            reads,
            span: None,
        }
    }

    /// An exit test over `reads`.
    pub fn exit_test(reads: Vec<WRef>) -> Self {
        Stmt {
            kind: StmtKind::ExitTest,
            writes: vec![],
            reads,
            span: None,
        }
    }

    /// Attaches a source span (builder style).
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }
}

/// The body of a WHILE loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoopIr {
    /// Statements in program order.
    pub stmts: Vec<Stmt>,
}

impl LoopIr {
    /// An empty loop body.
    pub fn new() -> Self {
        LoopIr { stmts: Vec::new() }
    }

    /// Appends a statement, returning its index.
    pub fn push(&mut self, s: Stmt) -> usize {
        self.stmts.push(s);
        self.stmts.len() - 1
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Indices of the recurrence-update statements.
    pub fn updates(&self) -> impl Iterator<Item = usize> + '_ {
        self.stmts
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.kind, StmtKind::Update(_)))
            .map(|(i, _)| i)
    }

    /// Indices of the exit-test statements.
    pub fn exit_tests(&self) -> impl Iterator<Item = usize> + '_ {
        self.stmts
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == StmtKind::ExitTest)
            .map(|(i, _)| i)
    }
}

/// Builders for the paper's example loops (used across tests and benches).
pub mod examples {
    use super::*;

    /// Figure 1(b): linked-list traversal — `while (tmp ≠ null) { work(tmp);
    /// tmp = next(tmp) }`. Scalar 0 is `tmp`; array 0 is the worked data.
    pub fn figure1b_list_traversal() -> LoopIr {
        let tmp = VarId(0);
        let data = ArrayId(0);
        let mut l = LoopIr::new();
        l.push(Stmt::exit_test(vec![WRef::Scalar(tmp)]));
        l.push(Stmt::assign(
            vec![WRef::Element(data, Subscript::Unknown)],
            vec![WRef::Scalar(tmp)],
        ));
        l.push(Stmt::update(tmp, UpdateOp::PointerChase, vec![]));
        l
    }

    /// Figure 1(e): `r = 1; while (f(r) < V) { work(r); r = a·r + b }`.
    pub fn figure1e_affine() -> LoopIr {
        let r = VarId(0);
        let data = ArrayId(0);
        let mut l = LoopIr::new();
        l.push(Stmt::exit_test(vec![WRef::Scalar(r)]));
        l.push(Stmt::assign(
            vec![WRef::Element(data, Subscript::Unknown)],
            vec![WRef::Scalar(r)],
        ));
        l.push(Stmt::update(r, UpdateOp::MulAddConst, vec![]));
        l
    }

    /// Figure 5(a): `do i: if f(i) exit; A[i] = 2·A[i]` — independent.
    pub fn figure5a_independent() -> LoopIr {
        let a = ArrayId(0);
        let i_affine = Subscript::Affine {
            coeff: 1,
            offset: 0,
        };
        let mut l = LoopIr::new();
        l.push(Stmt::exit_test(vec![WRef::Element(a, i_affine)]));
        l.push(Stmt::assign(
            vec![WRef::Element(a, i_affine)],
            vec![WRef::Element(a, i_affine)],
        ));
        l
    }

    /// Figure 5(b): `tmp = A[2i]; A[2i] = A[2i−1]; A[2i−1] = tmp` — the
    /// element swap. The scalar `tmp` carries output dependences across
    /// iterations, but it is defined before use in every iteration:
    /// privatizing it leaves only disjoint even/odd affine accesses to
    /// `A`, a valid DOALL. Scalar 0 is `tmp`; array 0 is `A`.
    pub fn figure5b_swap() -> LoopIr {
        let tmp = VarId(0);
        let a = ArrayId(0);
        let even = Subscript::Affine {
            coeff: 2,
            offset: 0,
        };
        let odd = Subscript::Affine {
            coeff: 2,
            offset: -1,
        };
        let mut l = LoopIr::new();
        l.push(Stmt::exit_test(vec![]));
        l.push(Stmt::assign(
            vec![WRef::Scalar(tmp)],
            vec![WRef::Element(a, even)],
        ));
        l.push(Stmt::assign(
            vec![WRef::Element(a, even)],
            vec![WRef::Element(a, odd)],
        ));
        l.push(Stmt::assign(
            vec![WRef::Element(a, odd)],
            vec![WRef::Scalar(tmp)],
        ));
        l
    }

    /// Figure 5(c): `A[i] = A[i] + A[i−1]` — a true recurrence.
    pub fn figure5c_recurrence() -> LoopIr {
        let a = ArrayId(0);
        let mut l = LoopIr::new();
        l.push(Stmt::exit_test(vec![]));
        l.push(Stmt::assign(
            vec![WRef::Element(
                a,
                Subscript::Affine {
                    coeff: 1,
                    offset: 0,
                },
            )],
            vec![
                WRef::Element(
                    a,
                    Subscript::Affine {
                        coeff: 1,
                        offset: 0,
                    },
                ),
                WRef::Element(
                    a,
                    Subscript::Affine {
                        coeff: 1,
                        offset: -1,
                    },
                ),
            ],
        ));
        l
    }

    /// Mixed-certainty gather/scatter: a dense affine write (`B[i] = W[i]`)
    /// feeding an indirect accumulate (`A[idx[i]] += B[i]`). Only the
    /// indirect array needs run-time shadowing; the dense half is
    /// statically certified.
    pub fn gather_scatter_mixed() -> LoopIr {
        let a = ArrayId(0);
        let b = ArrayId(1);
        let w = ArrayId(2);
        let i_affine = Subscript::Affine {
            coeff: 1,
            offset: 0,
        };
        let mut l = LoopIr::new();
        l.push(Stmt::exit_test(vec![]));
        l.push(Stmt::assign(
            vec![WRef::Element(b, i_affine)],
            vec![WRef::Element(w, i_affine)],
        ));
        l.push(Stmt::assign(
            vec![WRef::Element(a, Subscript::Unknown)],
            vec![
                WRef::Element(b, i_affine),
                WRef::Element(a, Subscript::Unknown),
            ],
        ));
        l
    }

    /// TRACK-style loop: subscripted subscripts (unknown) with an exit test
    /// on loop-computed values.
    pub fn track_style_unknown() -> LoopIr {
        let a = ArrayId(0);
        let idx = ArrayId(1);
        let i_affine = Subscript::Affine {
            coeff: 1,
            offset: 0,
        };
        let mut l = LoopIr::new();
        l.push(Stmt::exit_test(vec![WRef::Element(a, Subscript::Unknown)]));
        l.push(Stmt::assign(
            vec![WRef::Element(a, Subscript::Unknown)],
            vec![
                WRef::Element(idx, i_affine),
                WRef::Element(a, Subscript::Unknown),
            ],
        ));
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_shapes() {
        let l = examples::figure1b_list_traversal();
        assert_eq!(l.len(), 3);
        assert_eq!(l.updates().collect::<Vec<_>>(), vec![2]);
        assert_eq!(l.exit_tests().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn update_reads_and_writes_its_variable() {
        let s = Stmt::update(VarId(3), UpdateOp::AddConst, vec![]);
        assert_eq!(s.writes, vec![WRef::Scalar(VarId(3))]);
        assert!(s.reads.contains(&WRef::Scalar(VarId(3))));
    }

    #[test]
    fn empty_loop() {
        let l = LoopIr::new();
        assert!(l.is_empty());
        assert_eq!(l.updates().count(), 0);
    }
}
