//! Data-dependence testing and the dependence graph.
//!
//! Two references to the same memory conflict when they can address the
//! same location in the same or different iterations. For affine
//! subscripts `c₁·i + o₁` vs `c₂·j + o₂` a GCD-style test decides whether
//! `c₁·i − c₂·j = o₂ − o₁` has integer solutions, and whether any solution
//! has `i ≠ j` (a *loop-carried* dependence) or only `i = j`
//! (loop-independent). Unknown subscripts conflict conservatively — those
//! are the references the run-time PD test exists for.

use crate::ir::{LoopIr, Subscript, WRef};

/// Dependence classes (Section 5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Read after write.
    Flow,
    /// Write after read.
    Anti,
    /// Write after write.
    Output,
}

/// A dependence edge between two statements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Source statement (the earlier access in program/iteration order).
    pub from: usize,
    /// Sink statement.
    pub to: usize,
    /// Dependence class.
    pub kind: DepKind,
    /// Whether the dependence can cross iterations.
    pub loop_carried: bool,
}

/// The dependence graph of a loop body.
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    /// Number of statements.
    pub n: usize,
    /// All dependence edges.
    pub edges: Vec<DepEdge>,
}

/// How two subscripts may coincide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Overlap {
    Never,
    SameIterationOnly,
    CrossIteration,
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a.abs()
    } else {
        gcd(b, a % b)
    }
}

fn subscript_overlap(s1: Subscript, s2: Subscript) -> Overlap {
    use Subscript::*;
    match (s1, s2) {
        (Unknown, _) | (_, Unknown) => Overlap::CrossIteration,
        (Const(a), Const(b)) => {
            if a == b {
                // the same fixed cell touched by every iteration
                Overlap::CrossIteration
            } else {
                Overlap::Never
            }
        }
        (Const(k), Affine { coeff, offset }) | (Affine { coeff, offset }, Const(k)) => {
            if coeff == 0 {
                if offset == k {
                    Overlap::CrossIteration
                } else {
                    Overlap::Never
                }
            } else if (k - offset) % coeff == 0 && (k - offset) / coeff >= 0 {
                // one (reachable) iteration touches the constant cell; the
                // constant reference touches it in every iteration
                Overlap::CrossIteration
            } else {
                // no integer solution, or the only solution is a negative
                // iteration the loop (virtual counter from 0) never runs
                Overlap::Never
            }
        }
        (
            Affine {
                coeff: c1,
                offset: o1,
            },
            Affine {
                coeff: c2,
                offset: o2,
            },
        ) => {
            // solve c1·i − c2·j = o2 − o1
            if c1 == 0 && c2 == 0 {
                return if o1 == o2 {
                    Overlap::CrossIteration
                } else {
                    Overlap::Never
                };
            }
            // exactly one zero stride: the strided reference meets the
            // loop-invariant cell at a single iteration, which must be
            // reachable (≥ 0) for any conflict to exist
            if c1 == 0 || c2 == 0 {
                let (c, diff) = if c1 == 0 {
                    (c2, o1 - o2)
                } else {
                    (c1, o2 - o1)
                };
                return if diff % c == 0 && diff / c >= 0 {
                    Overlap::CrossIteration
                } else {
                    Overlap::Never
                };
            }
            let g = gcd(c1, c2);
            if g == 0 || (o2 - o1) % g != 0 {
                return Overlap::Never;
            }
            // same-iteration solution requires (c1 − c2)·i = o2 − o1
            let same_iter = if c1 == c2 {
                o1 == o2
            } else {
                (o2 - o1) % (c1 - c2) == 0
            };
            // a cross-iteration solution exists unless the only solutions
            // force i = j; for c1 = c2 ≠ 0 and o1 = o2 every solution has
            // i = j
            let cross = if c1 == c2 {
                o1 != o2
            } else {
                true // different strides: solutions with i ≠ j exist
            };
            match (same_iter, cross) {
                (_, true) => Overlap::CrossIteration,
                (true, false) => Overlap::SameIterationOnly,
                (false, false) => Overlap::Never,
            }
        }
    }
}

/// Whether two references can ever address the same location, in any pair
/// of iterations — the conservative question downstream analyses (RI/RV
/// dataflow, certificate construction) need. `Unknown` subscripts conflict
/// conservatively.
pub fn refs_may_conflict(r1: &WRef, r2: &WRef) -> bool {
    refs_overlap(r1, r2).is_some_and(|o| o != Overlap::Never)
}

/// Whether two references can address the same location in two *different*
/// iterations (a loop-carried conflict).
pub fn refs_conflict_cross_iteration(r1: &WRef, r2: &WRef) -> bool {
    refs_overlap(r1, r2) == Some(Overlap::CrossIteration)
}

fn refs_overlap(r1: &WRef, r2: &WRef) -> Option<Overlap> {
    match (r1, r2) {
        (WRef::Scalar(a), WRef::Scalar(b)) => (a == b).then_some(Overlap::CrossIteration),
        (WRef::Element(a1, s1), WRef::Element(a2, s2)) => {
            (a1 == a2).then(|| subscript_overlap(*s1, *s2))
        }
        _ => None,
    }
}

/// Builds the dependence graph of `body`.
///
/// For each conflicting pair, a single edge is emitted from the earlier
/// statement to the later one (or a self-edge for a statement whose own
/// accesses conflict across iterations — the recurrence pattern).
pub fn dep_graph(body: &LoopIr) -> DepGraph {
    let n = body.len();
    let mut edges = Vec::new();
    for (si, s1) in body.stmts.iter().enumerate() {
        for (sj, s2) in body.stmts.iter().enumerate() {
            if sj < si {
                continue; // each unordered pair once (si ≤ sj)
            }
            let mut push = |kind: DepKind, carried: bool| {
                edges.push(DepEdge {
                    from: si,
                    to: sj,
                    kind,
                    loop_carried: carried,
                });
            };
            // flow/anti: s1 writes vs s2 reads (and symmetric)
            for w in &s1.writes {
                for r in &s2.reads {
                    if let Some(ov) = refs_overlap(w, r) {
                        if ov != Overlap::Never {
                            push(DepKind::Flow, ov == Overlap::CrossIteration);
                        }
                    }
                }
            }
            if si != sj {
                for r in &s1.reads {
                    for w in &s2.writes {
                        if let Some(ov) = refs_overlap(r, w) {
                            if ov != Overlap::Never {
                                push(DepKind::Anti, ov == Overlap::CrossIteration);
                            }
                        }
                    }
                }
            }
            // output: writes vs writes — a reference compared with itself
            // still matters (a fixed cell written by every iteration)
            for w1 in &s1.writes {
                for w2 in &s2.writes {
                    if let Some(ov) = refs_overlap(w1, w2) {
                        if ov == Overlap::CrossIteration {
                            push(DepKind::Output, true);
                        }
                    }
                }
            }
        }
    }
    edges.sort_by_key(|e| (e.from, e.to, e.kind as u8, e.loop_carried));
    edges.dedup();
    DepGraph { n, edges }
}

impl DepGraph {
    /// Whether any loop-carried dependence exists among `stmts`.
    pub fn has_carried_within(&self, stmts: &[usize]) -> bool {
        self.edges
            .iter()
            .any(|e| e.loop_carried && stmts.contains(&e.from) && stmts.contains(&e.to))
    }

    /// Adjacency (both directions recorded as `from → to`) for SCC
    /// computation.
    pub fn successors(&self, s: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|e| e.from == s)
            .map(|e| e.to)
            .collect()
    }

    /// Renders the graph in Graphviz DOT format (loop-carried edges solid,
    /// loop-independent dashed; flow/anti/output colored) for inspection
    /// with `dot -Tsvg`.
    pub fn to_dot(&self) -> String {
        let mut out = String::from(
            "digraph deps {
  rankdir=TB;
",
        );
        for s in 0..self.n {
            out.push_str(&format!(
                "  s{s} [label=\"S{s}\" shape=box];
"
            ));
        }
        for e in &self.edges {
            let color = match e.kind {
                DepKind::Flow => "black",
                DepKind::Anti => "blue",
                DepKind::Output => "red",
            };
            let style = if e.loop_carried { "solid" } else { "dashed" };
            out.push_str(&format!(
                "  s{} -> s{} [color={color} style={style} label=\"{:?}{}\"];
",
                e.from,
                e.to,
                e.kind,
                if e.loop_carried { "*" } else { "" }
            ));
        }
        out.push_str(
            "}
",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::examples;
    use crate::ir::{ArrayId, Stmt, VarId};
    use Subscript::*;

    #[test]
    fn gcd_works() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-4, 6), 2);
        assert_eq!(gcd(5, 0), 5);
    }

    #[test]
    fn identical_affine_subscripts_are_same_iteration_only() {
        let s = Affine {
            coeff: 1,
            offset: 0,
        };
        assert_eq!(subscript_overlap(s, s), Overlap::SameIterationOnly);
    }

    #[test]
    fn shifted_affine_subscripts_are_cross_iteration() {
        let a = Affine {
            coeff: 1,
            offset: 0,
        };
        let b = Affine {
            coeff: 1,
            offset: -1,
        };
        assert_eq!(subscript_overlap(a, b), Overlap::CrossIteration);
    }

    #[test]
    fn disjoint_strided_subscripts_never_overlap() {
        // 2i vs 2j+1: even vs odd cells
        let even = Affine {
            coeff: 2,
            offset: 0,
        };
        let odd = Affine {
            coeff: 2,
            offset: 1,
        };
        assert_eq!(subscript_overlap(even, odd), Overlap::Never);
    }

    #[test]
    fn unknown_subscripts_conflict_conservatively() {
        assert_eq!(
            subscript_overlap(
                Unknown,
                Affine {
                    coeff: 1,
                    offset: 0
                }
            ),
            Overlap::CrossIteration
        );
    }

    #[test]
    fn constant_cell_behind_the_loop_start_never_overlaps() {
        // A[0] vs A[i+1]: cell 0 is reached only at i = −1, which the
        // virtual counter (starting at 0) never executes
        let next = Affine {
            coeff: 1,
            offset: 1,
        };
        assert_eq!(subscript_overlap(Const(0), next), Overlap::Never);
        assert_eq!(subscript_overlap(next, Const(0)), Overlap::Never);
        // A[4] vs A[2i+6] → i = −1: unreachable
        let stride2 = Affine {
            coeff: 2,
            offset: 6,
        };
        assert_eq!(subscript_overlap(Const(4), stride2), Overlap::Never);
        // A[6] vs A[2i+6] → i = 0: a real conflict
        assert_eq!(
            subscript_overlap(Const(6), stride2),
            Overlap::CrossIteration
        );
    }

    #[test]
    fn zero_stride_affine_needs_a_reachable_iteration() {
        let inv = Affine {
            coeff: 0,
            offset: 3,
        };
        // i + 5 = 3 → i = −2: unreachable
        assert_eq!(
            subscript_overlap(
                inv,
                Affine {
                    coeff: 1,
                    offset: 5
                }
            ),
            Overlap::Never
        );
        // i + 1 = 3 → i = 2: conflict
        assert_eq!(
            subscript_overlap(
                inv,
                Affine {
                    coeff: 1,
                    offset: 1
                }
            ),
            Overlap::CrossIteration
        );
        // −i + 3 = 3 → i = 0: conflict at the first iteration
        assert_eq!(
            subscript_overlap(
                Affine {
                    coeff: -1,
                    offset: 3
                },
                inv
            ),
            Overlap::CrossIteration
        );
    }

    #[test]
    fn figure5a_has_no_carried_array_dependence() {
        let g = dep_graph(&examples::figure5a_independent());
        // the A[i] read/write conflicts only within an iteration
        assert!(
            !g.edges.iter().any(|e| e.loop_carried),
            "edges: {:?}",
            g.edges
        );
    }

    #[test]
    fn figure5c_has_a_carried_flow_dependence() {
        let g = dep_graph(&examples::figure5c_recurrence());
        assert!(g
            .edges
            .iter()
            .any(|e| e.kind == DepKind::Flow && e.loop_carried && e.from == e.to));
    }

    #[test]
    fn pointer_update_is_a_self_recurrence() {
        let g = dep_graph(&examples::figure1b_list_traversal());
        // tmp = next(tmp): carried flow self-edge on statement 2
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == 2 && e.to == 2 && e.loop_carried));
    }

    #[test]
    fn scalar_conflicts_are_detected_across_statements() {
        let mut l = LoopIr::new();
        let x = VarId(0);
        l.push(Stmt::assign(vec![WRef::Scalar(x)], vec![]));
        l.push(Stmt::assign(vec![], vec![WRef::Scalar(x)]));
        let g = dep_graph(&l);
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == 0 && e.to == 1 && e.kind == DepKind::Flow));
    }

    #[test]
    fn distinct_arrays_never_conflict() {
        let mut l = LoopIr::new();
        l.push(Stmt::assign(
            vec![WRef::Element(ArrayId(0), Unknown)],
            vec![],
        ));
        l.push(Stmt::assign(
            vec![],
            vec![WRef::Element(ArrayId(1), Unknown)],
        ));
        let g = dep_graph(&l);
        // the Unknown write gets a conservative self output-dependence,
        // but no edge may connect the two statements
        assert!(g.edges.iter().all(|e| e.from == e.to));
    }

    #[test]
    fn dot_export_lists_every_statement_and_edge() {
        let g = dep_graph(&examples::figure1b_list_traversal());
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        for s in 0..g.n {
            assert!(dot.contains(&format!("s{s} [label")), "node {s}");
        }
        assert_eq!(dot.matches(" -> ").count(), g.edges.len());
    }

    #[test]
    fn constant_cell_written_every_iteration_is_output_dep() {
        let mut l = LoopIr::new();
        l.push(Stmt::assign(
            vec![WRef::Element(ArrayId(0), Const(5))],
            vec![],
        ));
        let g = dep_graph(&l);
        assert!(g
            .edges
            .iter()
            .any(|e| e.kind == DepKind::Output && e.loop_carried));
    }
}
