//! Strategy selection: from IR analysis to an execution plan.
//!
//! Ties the pipeline together: distribute the loop, find the dispatching
//! recurrence (the hierarchically top-level one), classify per Table 1,
//! decide whether the remainder needs run-time dependence testing
//! (unanalyzable accesses), and pick the concrete method from `wlp-core`.

use crate::dependence::dep_graph;
use crate::distribute::{distribute_with, fuse, FusedBlock, LoopNature};
use crate::ir::{LoopIr, StmtKind, Subscript, UpdateOp, WRef};
use wlp_core::taxonomy::{classify, DispatcherClass, TaxonomyCell, TerminatorClass};

/// The concrete execution method the planner recommends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Induction-1/2 DOALL (Section 3.1).
    InductionDoall,
    /// Parallel prefix + DOALL (Section 3.2).
    PrefixDoall,
    /// General-3 dynamic self-scheduling (Section 3.3; the paper's best
    /// general-recurrence method).
    General3,
    /// Execute sequentially (no exploitable parallelism).
    Sequential,
}

/// The complete plan for one WHILE loop.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Dispatcher classification.
    pub dispatcher: DispatcherClass,
    /// Terminator classification.
    pub terminator: TerminatorClass,
    /// The Table 1 cell.
    pub cell: TaxonomyCell,
    /// Chosen method.
    pub strategy: StrategyKind,
    /// The remainder has unanalyzable accesses: speculate with the PD test.
    pub needs_pd_test: bool,
    /// Overshoot is possible: checkpoint + time-stamps + undo required.
    pub needs_undo: bool,
    /// The loop distributes into several blocks with at least one
    /// sequential among them: the sequential blocks can be scheduled in a
    /// DOACROSS fashion against their successors (Section 6).
    pub doacross_opportunity: bool,
    /// The fused loop structure (for multi-recurrence bodies).
    pub blocks: Vec<FusedBlock>,
}

fn dispatcher_class(op: UpdateOp) -> DispatcherClass {
    match op {
        UpdateOp::AddConst => DispatcherClass::MonotonicInduction,
        UpdateOp::MulAddConst => DispatcherClass::Associative,
        UpdateOp::PointerChase | UpdateOp::Other => DispatcherClass::General,
    }
}

/// `body` with every unanalyzable array reference removed. Dependences
/// provable on the censored body hold no matter what the `Unknown`
/// accesses turn out to touch — removing references can only remove
/// conflicts, never create them.
fn censor_unknown(body: &LoopIr) -> LoopIr {
    let unknown = |r: &WRef| matches!(r, WRef::Element(_, Subscript::Unknown));
    let mut out = LoopIr::new();
    for s in &body.stmts {
        let mut c = s.clone();
        c.writes.retain(|r| !unknown(r));
        c.reads.retain(|r| !unknown(r));
        out.push(c);
    }
    out
}

fn has_unknown_access(body: &LoopIr, stmts: &[usize]) -> bool {
    stmts.iter().any(|&s| {
        body.stmts[s]
            .writes
            .iter()
            .chain(body.stmts[s].reads.iter())
            .any(|r| matches!(r, WRef::Element(_, Subscript::Unknown)))
    })
}

/// Plans the parallelization of `body`.
///
/// The terminator is RV iff some exit test reads a location that a
/// non-dispatcher statement writes (directly or through an unanalyzable
/// array); otherwise RI. The dispatcher is the first recurrence update in
/// dependence order — absent one, the loop is treated as a DO loop
/// (monotonic induction over the implicit counter).
pub fn plan(body: &LoopIr) -> Plan {
    let g = dep_graph(body);
    let loops = distribute_with(body, &g);
    let blocks = fuse(loops.clone(), 0);

    // dispatcher: first distributed loop that is exactly a recurrence
    let dispatcher_op = loops.iter().find_map(|l| l.recurrence);
    let dispatcher = dispatcher_op.map_or(DispatcherClass::MonotonicInduction, dispatcher_class);

    // terminator: RV iff an exit test depends on something written by a
    // non-update statement of the loop
    let body_writes: Vec<&WRef> = body
        .stmts
        .iter()
        .filter(|s| !matches!(s.kind, StmtKind::Update(_)))
        .flat_map(|s| s.writes.iter())
        .collect();
    let rv = body.exit_tests().any(|t| {
        body.stmts[t].reads.iter().any(|r| {
            body_writes.iter().any(|w| match (r, w) {
                (WRef::Scalar(a), WRef::Scalar(b)) => a == b,
                (WRef::Element(a, _), WRef::Element(b, _)) => a == b,
                _ => false,
            })
        })
    });
    let terminator = if rv {
        TerminatorClass::RemainderVariant
    } else {
        TerminatorClass::RemainderInvariant
    };
    let cell = classify(dispatcher, terminator);

    // remainder statements: everything that is not a recurrence update
    let remainder: Vec<usize> = (0..body.len())
        .filter(|&s| !matches!(body.stmts[s].kind, StmtKind::Update(_)))
        .collect();
    let needs_pd_test = has_unknown_access(body, &remainder);

    // a remainder with a loop-carried cycle among analyzable accesses is
    // provably sequential — no point speculating on a known dependence.
    // The cycle is just as provable when the offending statements *also*
    // touch Unknown locations: censor those references and re-test, so a
    // guaranteed-to-abort speculation is never planned.
    let remainder_sequential = loops
        .iter()
        .filter(|l| l.recurrence.is_none())
        .any(|l| l.nature == LoopNature::Sequential && !has_unknown_access(body, &l.stmts))
        || {
            let censored = censor_unknown(body);
            let cg = dep_graph(&censored);
            distribute_with(&censored, &cg)
                .iter()
                .any(|l| l.recurrence.is_none() && l.nature == LoopNature::Sequential)
        };

    let strategy = if remainder_sequential {
        StrategyKind::Sequential
    } else {
        match dispatcher {
            DispatcherClass::MonotonicInduction | DispatcherClass::Induction => {
                StrategyKind::InductionDoall
            }
            DispatcherClass::Associative => StrategyKind::PrefixDoall,
            DispatcherClass::General => StrategyKind::General3,
        }
    };

    let doacross_opportunity =
        blocks.len() > 1 && blocks.iter().any(|b| b.nature == LoopNature::Sequential);

    Plan {
        dispatcher,
        terminator,
        cell,
        strategy,
        needs_pd_test,
        needs_undo: cell.can_overshoot,
        doacross_opportunity,
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::examples;

    #[test]
    fn list_traversal_plans_general3_no_undo() {
        let p = plan(&examples::figure1b_list_traversal());
        assert_eq!(p.dispatcher, DispatcherClass::General);
        assert_eq!(p.terminator, TerminatorClass::RemainderInvariant);
        assert_eq!(p.strategy, StrategyKind::General3);
        assert!(
            !p.needs_undo,
            "RI null terminator: no backups (Table 2 SPICE row)"
        );
        assert!(p.needs_pd_test, "the worked array is unanalyzable");
    }

    #[test]
    fn affine_loop_plans_prefix() {
        let p = plan(&examples::figure1e_affine());
        assert_eq!(p.dispatcher, DispatcherClass::Associative);
        assert_eq!(p.strategy, StrategyKind::PrefixDoall);
    }

    #[test]
    fn independent_do_loop_plans_induction() {
        let p = plan(&examples::figure5a_independent());
        assert_eq!(p.dispatcher, DispatcherClass::MonotonicInduction);
        assert_eq!(p.strategy, StrategyKind::InductionDoall);
    }

    #[test]
    fn known_recurrence_plans_sequential() {
        let p = plan(&examples::figure5c_recurrence());
        assert_eq!(
            p.strategy,
            StrategyKind::Sequential,
            "a provable flow recurrence must not be speculated on"
        );
    }

    #[test]
    fn provable_cycle_with_unknown_access_plans_sequential() {
        // B[i+1] = B[i] + A[idx[i]]: the carried flow dependence on B is
        // provable from the affine subscripts alone; the Unknown read of A
        // must not launder it into a speculation that always aborts
        use crate::ir::{ArrayId, Stmt, Subscript, WRef};
        let a = ArrayId(0);
        let b = ArrayId(1);
        let mut l = crate::ir::LoopIr::new();
        l.push(Stmt::assign(
            vec![WRef::Element(
                b,
                Subscript::Affine {
                    coeff: 1,
                    offset: 1,
                },
            )],
            vec![
                WRef::Element(
                    b,
                    Subscript::Affine {
                        coeff: 1,
                        offset: 0,
                    },
                ),
                WRef::Element(a, Subscript::Unknown),
            ],
        ));
        let p = plan(&l);
        assert_eq!(
            p.strategy,
            StrategyKind::Sequential,
            "a provable carried cycle must win over the Unknown access: {p:?}"
        );
    }

    #[test]
    fn track_style_loop_needs_pd_and_undo() {
        let p = plan(&examples::track_style_unknown());
        assert_eq!(p.strategy, StrategyKind::InductionDoall);
        assert!(p.needs_pd_test, "subscripted subscripts need the PD test");
        assert_eq!(p.terminator, TerminatorClass::RemainderVariant);
        assert!(
            p.needs_undo,
            "RV: backups and time-stamps (Table 2 TRACK row)"
        );
    }

    #[test]
    fn multi_block_loops_expose_a_doacross_opportunity() {
        let p = plan(&examples::figure1b_list_traversal());
        assert!(
            p.doacross_opportunity,
            "dispatcher block + work block ⇒ DOACROSS schedulable"
        );
        let q = plan(&examples::figure5a_independent());
        assert!(
            !q.doacross_opportunity,
            "a single parallel block has nothing to pipeline"
        );
    }

    #[test]
    fn plan_blocks_cover_all_statements() {
        let body = examples::figure1b_list_traversal();
        let p = plan(&body);
        let covered: usize = p.blocks.iter().map(|b| b.stmts().len()).sum();
        assert_eq!(covered, body.len());
    }
}
