//! An interpreter for parsed WHILE loops: the executable end of the
//! pipeline.
//!
//! [`run_sequential`] gives the reference semantics of a [`Program`];
//! [`run_parallel`] consults the [`plan`](crate::plan::plan) and — when the
//! strategy allows — executes the loop as a speculative DOALL with every
//! array routed through the PD test, falling back to sequential
//! interpretation exactly like the paper's generated code would. The two
//! entry points are guaranteed to produce identical final machines.
//!
//! Two canonicalizations keep the parallel semantics honest:
//!
//! * `exit if` conditions are evaluated at the **head** of each iteration
//!   (test-then-work, the paper's canonical WHILE form);
//! * only loops whose scalar updates are recurrences of a single known
//!   induction variable run in parallel — anything else (pointer chases,
//!   extra scalar state) is interpreted sequentially, mirroring the
//!   planner's conservatism.

use crate::frontend::{BinOp, Decl, Expr, Program, Stmt};
use crate::ir::UpdateOp;
use std::collections::HashMap;
use std::sync::Arc;
use wlp_core::speculate::{speculative_while_group, GroupAccess, SpeculativeArray};
use wlp_core::taxonomy::DispatcherClass;
use wlp_runtime::Pool;

/// A callable the loop may invoke (uninterpreted functions like `f(…)`).
pub type HostFn = Arc<dyn Fn(&[i64]) -> i64 + Send + Sync>;

/// The state a loop runs against: named arrays, named scalars, and host
/// functions.
#[derive(Clone, Default)]
pub struct Machine {
    /// Named integer arrays.
    pub arrays: HashMap<String, Vec<i64>>,
    /// Named scalars (loop-invariant inputs and declared variables).
    pub scalars: HashMap<String, i64>,
    /// Host functions callable from expressions.
    pub funcs: HashMap<String, HostFn>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("arrays", &self.arrays.keys().collect::<Vec<_>>())
            .field("scalars", &self.scalars)
            .field("funcs", &self.funcs.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Machine {
    /// Registers a host function.
    pub fn define_fn(&mut self, name: &str, f: impl Fn(&[i64]) -> i64 + Send + Sync + 'static) {
        self.funcs.insert(name.to_string(), Arc::new(f));
    }
}

/// An interpretation failure (unbound name, out-of-bounds access, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, ExecError> {
    Err(ExecError { msg: msg.into() })
}

/// How a loop finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Bodies executed.
    pub iterations: usize,
    /// `Some(i)` if an exit fired at iteration `i` (while-condition failing
    /// or `exit if`); `None` if the `max_iters` bound stopped the run.
    pub exited_at: Option<usize>,
    /// Whether the parallel path was actually taken (and committed).
    pub ran_parallel: bool,
}

/// Array view used by expression evaluation.
trait ArrayView {
    fn read(&mut self, name: &str, idx: i64) -> Result<i64, ExecError>;
    fn write(&mut self, name: &str, idx: i64, v: i64) -> Result<(), ExecError>;
}

struct DirectView<'a> {
    arrays: &'a mut HashMap<String, Vec<i64>>,
}

impl ArrayView for DirectView<'_> {
    fn read(&mut self, name: &str, idx: i64) -> Result<i64, ExecError> {
        let arr = self.arrays.get(name).ok_or_else(|| ExecError {
            msg: format!("unknown array `{name}`"),
        })?;
        usize::try_from(idx)
            .ok()
            .and_then(|i| arr.get(i).copied())
            .ok_or_else(|| ExecError {
                msg: format!("`{name}[{idx}]` out of bounds"),
            })
    }

    fn write(&mut self, name: &str, idx: i64, v: i64) -> Result<(), ExecError> {
        let arr = self.arrays.get_mut(name).ok_or_else(|| ExecError {
            msg: format!("unknown array `{name}`"),
        })?;
        let i = usize::try_from(idx)
            .ok()
            .filter(|&i| i < arr.len())
            .ok_or_else(|| ExecError {
                msg: format!("`{name}[{idx}]` out of bounds"),
            })?;
        arr[i] = v;
        Ok(())
    }
}

struct SpecView<'a, 'b> {
    access: &'a mut GroupAccess<'b, i64>,
    index_of: &'a HashMap<String, usize>,
    lens: &'a HashMap<String, usize>,
}

impl ArrayView for SpecView<'_, '_> {
    fn read(&mut self, name: &str, idx: i64) -> Result<i64, ExecError> {
        let a = *self.index_of.get(name).ok_or_else(|| ExecError {
            msg: format!("unknown array `{name}`"),
        })?;
        let i = usize::try_from(idx)
            .ok()
            .filter(|&i| i < self.lens[name])
            .ok_or_else(|| ExecError {
                msg: format!("`{name}[{idx}]` out of bounds"),
            })?;
        Ok(self.access.read(a, i))
    }

    fn write(&mut self, name: &str, idx: i64, v: i64) -> Result<(), ExecError> {
        let a = *self.index_of.get(name).ok_or_else(|| ExecError {
            msg: format!("unknown array `{name}`"),
        })?;
        let i = usize::try_from(idx)
            .ok()
            .filter(|&i| i < self.lens[name])
            .ok_or_else(|| ExecError {
                msg: format!("`{name}[{idx}]` out of bounds"),
            })?;
        self.access.write(a, i, v);
        Ok(())
    }
}

fn eval(
    e: &Expr,
    scalars: &HashMap<String, i64>,
    funcs: &HashMap<String, HostFn>,
    view: &mut dyn ArrayView,
) -> Result<i64, ExecError> {
    use crate::frontend::lexer::CmpOp;
    Ok(match e {
        Expr::Int(v) => *v,
        Expr::Null => 0,
        Expr::Var(v) => match scalars.get(v) {
            Some(x) => *x,
            None => return err(format!("unbound scalar `{v}`")),
        },
        Expr::Index(arr, sub) => {
            let i = eval(sub, scalars, funcs, view)?;
            view.read(arr, i)?
        }
        Expr::Call(f, args) => {
            let func = funcs
                .get(f)
                .ok_or_else(|| ExecError {
                    msg: format!("unknown function `{f}`"),
                })?
                .clone();
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, scalars, funcs, view)?);
            }
            func(&vals)
        }
        Expr::Neg(inner) => -eval(inner, scalars, funcs, view)?,
        Expr::Bin(op, a, b) => {
            let (x, y) = (
                eval(a, scalars, funcs, view)?,
                eval(b, scalars, funcs, view)?,
            );
            match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Div => {
                    if y == 0 {
                        return err("division by zero");
                    }
                    x.wrapping_div(y)
                }
            }
        }
        Expr::Cmp(op, a, b) => {
            let (x, y) = (
                eval(a, scalars, funcs, view)?,
                eval(b, scalars, funcs, view)?,
            );
            i64::from(match op {
                CmpOp::Lt => x < y,
                CmpOp::Gt => x > y,
                CmpOp::Le => x <= y,
                CmpOp::Ge => x >= y,
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
            })
        }
    })
}

fn apply_decls(p: &Program, m: &mut Machine) -> Result<(), ExecError> {
    for Decl { name, init, .. } in &p.decls {
        let v = match init {
            Some(e) => {
                let mut view = DirectView {
                    arrays: &mut m.arrays,
                };
                eval(e, &m.scalars, &m.funcs, &mut view)?
            }
            None => 0,
        };
        m.scalars.insert(name.clone(), v);
    }
    Ok(())
}

/// Interprets the loop sequentially against `machine` (which is updated in
/// place). `max_iters` bounds runaway loops.
pub fn run_sequential(
    p: &Program,
    machine: &mut Machine,
    max_iters: usize,
) -> Result<ExecOutcome, ExecError> {
    apply_decls(p, machine)?;
    let mut iterations = 0usize;
    for i in 0..max_iters {
        let cont = {
            let mut view = DirectView {
                arrays: &mut machine.arrays,
            };
            eval(&p.cond, &machine.scalars, &machine.funcs, &mut view)?
        };
        if cont == 0 {
            return Ok(ExecOutcome {
                iterations,
                exited_at: Some(i),
                ran_parallel: false,
            });
        }
        // canonical test-then-work: all exit tests at the iteration head
        for st in &p.body {
            if let Stmt::ExitIf(c) = st {
                let mut view = DirectView {
                    arrays: &mut machine.arrays,
                };
                if eval(c, &machine.scalars, &machine.funcs, &mut view)? != 0 {
                    return Ok(ExecOutcome {
                        iterations,
                        exited_at: Some(i),
                        ran_parallel: false,
                    });
                }
            }
        }
        for st in &p.body {
            match st {
                Stmt::ExitIf(_) => {}
                Stmt::AssignVar(name, rhs) => {
                    let v = {
                        let mut view = DirectView {
                            arrays: &mut machine.arrays,
                        };
                        eval(rhs, &machine.scalars, &machine.funcs, &mut view)?
                    };
                    machine.scalars.insert(name.clone(), v);
                }
                Stmt::AssignElem(arr, sub, rhs) => {
                    let mut view = DirectView {
                        arrays: &mut machine.arrays,
                    };
                    let i = eval(sub, &machine.scalars, &machine.funcs, &mut view)?;
                    let v = eval(rhs, &machine.scalars, &machine.funcs, &mut view)?;
                    view.write(arr, i, v)?;
                }
            }
        }
        iterations += 1;
    }
    Ok(ExecOutcome {
        iterations,
        exited_at: None,
        ran_parallel: false,
    })
}

/// The single induction variable a parallel interpretation needs:
/// `(name, stride, init)`. `None` when the loop does not qualify.
fn parallel_induction(p: &Program) -> Option<(String, i64, i64)> {
    let ir = crate::frontend::lower(p).ok()?;
    let plan = crate::plan::plan(&ir);
    if plan.dispatcher != DispatcherClass::MonotonicInduction {
        return None;
    }
    // every scalar assignment must be the induction update itself
    let mut found: Option<(String, i64)> = None;
    for st in &p.body {
        if let Stmt::AssignVar(name, rhs) = st {
            let shape = {
                // reuse the recurrence matcher by lowering the single
                // statement in isolation
                let tmp = Program {
                    decls: vec![],
                    cond: Expr::Int(1),
                    cond_span: crate::span::Span::default(),
                    body: vec![Stmt::AssignVar(name.clone(), rhs.clone())],
                    stmt_spans: vec![],
                };
                let ir = crate::frontend::lower(&tmp).ok()?;
                match ir.stmts.last()?.kind {
                    crate::ir::StmtKind::Update(op) => Some(op),
                    _ => None,
                }
            };
            match shape {
                Some(UpdateOp::AddConst) if found.is_none() => {
                    // stride from the linear form: rhs = name + stride
                    let stride = stride_of(name, rhs)?;
                    found = Some((name.clone(), stride));
                }
                _ => return None, // extra scalar state: not a DOALL candidate
            }
        }
    }
    let (name, stride) = found?;
    let init = p.decls.iter().find(|d| d.name == name)?.init.as_ref()?;
    let init = const_eval(init)?;
    Some((name, stride, init))
}

fn stride_of(name: &str, rhs: &Expr) -> Option<i64> {
    // rhs is known AddConst: evaluate rhs with name := 0 and no other vars
    fn go(e: &Expr, name: &str) -> Option<i64> {
        match e {
            Expr::Int(v) => Some(*v),
            Expr::Var(v) if v == name => Some(0),
            Expr::Neg(i) => Some(-go(i, name)?),
            Expr::Bin(BinOp::Add, a, b) => Some(go(a, name)? + go(b, name)?),
            Expr::Bin(BinOp::Sub, a, b) => Some(go(a, name)? - go(b, name)?),
            Expr::Bin(BinOp::Mul, a, b) => Some(go(a, name)? * go(b, name)?),
            _ => None,
        }
    }
    go(rhs, name)
}

fn const_eval(e: &Expr) -> Option<i64> {
    match e {
        Expr::Int(v) => Some(*v),
        Expr::Neg(i) => Some(-const_eval(i)?),
        Expr::Bin(op, a, b) => {
            let (x, y) = (const_eval(a)?, const_eval(b)?);
            Some(match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x.checked_div(y)?,
            })
        }
        _ => None,
    }
}

/// Interprets the loop through the planned parallel strategy: a
/// speculative DOALL with every array under the PD test. Loops the plan
/// cannot parallelize (general dispatchers, provable recurrences, extra
/// scalar state) fall back to [`run_sequential`] — either way, the final
/// machine equals the sequential semantics.
pub fn run_parallel(
    p: &Program,
    machine: &mut Machine,
    pool: &Pool,
    max_iters: usize,
) -> Result<ExecOutcome, ExecError> {
    let Some((ivar, stride, init)) = parallel_induction(p) else {
        return run_sequential(p, machine, max_iters);
    };
    apply_decls(p, machine)?;

    // order arrays and wrap them for speculation
    let names: Vec<String> = {
        let mut v: Vec<String> = machine.arrays.keys().cloned().collect();
        v.sort();
        v
    };
    let index_of: HashMap<String, usize> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), i))
        .collect();
    let lens: HashMap<String, usize> = names
        .iter()
        .map(|n| (n.clone(), machine.arrays[n].len()))
        .collect();
    let spec: Vec<SpeculativeArray<i64>> = names
        .iter()
        .map(|n| SpeculativeArray::new(machine.arrays[n].clone()))
        .collect();

    let base_scalars = machine.scalars.clone();
    let funcs = machine.funcs.clone();
    let fail: parking_lot::Mutex<Option<ExecError>> = parking_lot::Mutex::new(None);

    let bind = |i: usize| {
        let mut s = base_scalars.clone();
        s.insert(ivar.clone(), init + stride * i as i64);
        s
    };

    let out = speculative_while_group(
        pool,
        max_iters,
        &spec,
        |i, g| {
            let scalars = bind(i);
            let mut view = SpecView {
                access: g,
                index_of: &index_of,
                lens: &lens,
            };
            // while-condition failing, or any (head-hoisted) exit-if firing
            match eval(&p.cond, &scalars, &funcs, &mut view) {
                Ok(0) => return true,
                Ok(_) => {}
                Err(e) => {
                    fail.lock().get_or_insert(e);
                    return true;
                }
            }
            for st in &p.body {
                if let Stmt::ExitIf(c) = st {
                    match eval(c, &scalars, &funcs, &mut view) {
                        Ok(v) if v != 0 => return true,
                        Ok(_) => {}
                        Err(e) => {
                            fail.lock().get_or_insert(e);
                            return true;
                        }
                    }
                }
            }
            false
        },
        |i, g| {
            let scalars = bind(i);
            let mut view = SpecView {
                access: g,
                index_of: &index_of,
                lens: &lens,
            };
            for st in &p.body {
                if let Stmt::AssignElem(arr, sub, rhs) = st {
                    let r = eval(sub, &scalars, &funcs, &mut view).and_then(|idx| {
                        let v = eval(rhs, &scalars, &funcs, &mut view)?;
                        view.write(arr, idx, v)
                    });
                    if let Err(e) = r {
                        fail.lock().get_or_insert(e);
                        return;
                    }
                }
            }
        },
    );

    if let Some(e) = fail.into_inner() {
        return Err(e);
    }

    // copy arrays back and advance the induction variable to its final value
    for (n, arr) in names.iter().zip(&spec) {
        machine.arrays.insert(n.clone(), arr.snapshot());
    }
    let end = out.last_valid.unwrap_or(max_iters);
    machine.scalars.insert(ivar, init + stride * end as i64);

    Ok(ExecOutcome {
        iterations: end,
        exited_at: out.last_valid,
        ran_parallel: out.committed_parallel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::parse_program;

    fn pool() -> Pool {
        Pool::new(4)
    }

    fn machine_with(arrays: &[(&str, Vec<i64>)]) -> Machine {
        let mut m = Machine::default();
        for (n, v) in arrays {
            m.arrays.insert(n.to_string(), v.clone());
        }
        m
    }

    const DOUBLING: &str = "integer i = 0\n\
                            while (i < 50) {\n\
                                A[i] = 2 * A[i]\n\
                                i = i + 1\n\
                            }";

    #[test]
    fn sequential_interpretation_runs_the_loop() {
        let p = parse_program(DOUBLING).unwrap();
        let mut m = machine_with(&[("A", (0..100).collect())]);
        let out = run_sequential(&p, &mut m, 1000).unwrap();
        assert_eq!(out.iterations, 50);
        assert_eq!(out.exited_at, Some(50));
        assert_eq!(m.arrays["A"][10], 20);
        assert_eq!(m.arrays["A"][60], 60, "untouched past the bound");
        assert_eq!(m.scalars["i"], 50);
    }

    #[test]
    fn parallel_interpretation_matches_sequential() {
        let p = parse_program(DOUBLING).unwrap();
        let mut seq = machine_with(&[("A", (0..100).collect())]);
        run_sequential(&p, &mut seq, 1000).unwrap();
        let mut par = machine_with(&[("A", (0..100).collect())]);
        let out = run_parallel(&p, &mut par, &pool(), 1000).unwrap();
        assert!(
            out.ran_parallel,
            "an independent DO loop must commit in parallel"
        );
        assert_eq!(par.arrays, seq.arrays);
        assert_eq!(par.scalars["i"], seq.scalars["i"]);
    }

    #[test]
    fn indirect_subscripts_speculate_and_match() {
        let src = "integer i = 0\n\
                   while (i < 64) {\n\
                       A[idx[i]] = A[idx[i]] + 100\n\
                       i = i + 1\n\
                   }";
        let p = parse_program(src).unwrap();
        let idx: Vec<i64> = (0..64).map(|i| (i * 29) % 64).collect(); // permutation
        let build = || machine_with(&[("A", (0..64).collect()), ("idx", idx.clone())]);
        let mut seq = build();
        run_sequential(&p, &mut seq, 1000).unwrap();
        let mut par = build();
        let out = run_parallel(&p, &mut par, &pool(), 64).unwrap();
        assert!(
            out.ran_parallel,
            "a permutation subscript passes the PD test"
        );
        assert_eq!(par.arrays["A"], seq.arrays["A"]);
    }

    #[test]
    fn colliding_subscripts_fall_back_and_still_match() {
        let src = "integer i = 0\n\
                   while (i < 32) {\n\
                       A[idx[i]] = A[idx[i]] + 1\n\
                       i = i + 1\n\
                   }";
        let p = parse_program(src).unwrap();
        let idx = vec![0i64; 32]; // every iteration hits A[0]
        let build = || machine_with(&[("A", vec![0; 4]), ("idx", idx.clone())]);
        let mut seq = build();
        run_sequential(&p, &mut seq, 1000).unwrap();
        let mut par = build();
        let out = run_parallel(&p, &mut par, &pool(), 32).unwrap();
        assert!(!out.ran_parallel, "a shared cell must fail the PD test");
        assert_eq!(par.arrays["A"], seq.arrays["A"]);
        assert_eq!(par.arrays["A"][0], 32);
    }

    #[test]
    fn exit_if_is_honoured_in_both_modes() {
        let src = "integer i = 0\n\
                   while (i < 1000) {\n\
                       exit if (stop[i] == 1)\n\
                       A[i] = 7\n\
                       i = i + 1\n\
                   }";
        let p = parse_program(src).unwrap();
        let mut stop = vec![0i64; 1000];
        stop[123] = 1;
        let build = || machine_with(&[("A", vec![0; 1000]), ("stop", stop.clone())]);
        let mut seq = build();
        let so = run_sequential(&p, &mut seq, 2000).unwrap();
        assert_eq!(so.exited_at, Some(123));
        let mut par = build();
        let po = run_parallel(&p, &mut par, &pool(), 2000).unwrap();
        assert_eq!(po.exited_at, Some(123));
        assert_eq!(par.arrays["A"], seq.arrays["A"]);
        assert_eq!(seq.arrays["A"].iter().filter(|&&v| v == 7).count(), 123);
    }

    #[test]
    fn host_functions_are_callable() {
        let src = "integer i = 0\n\
                   while (i < 10) {\n\
                       A[i] = square(i) + 1\n\
                       i = i + 1\n\
                   }";
        let p = parse_program(src).unwrap();
        let mut m = machine_with(&[("A", vec![0; 10])]);
        m.define_fn("square", |args| args[0] * args[0]);
        run_sequential(&p, &mut m, 100).unwrap();
        assert_eq!(m.arrays["A"][3], 10);
    }

    #[test]
    fn pointer_loops_fall_back_to_sequential() {
        // interpret the list as next[] pointers: the planner says General,
        // so the interpreter conservatively runs sequentially
        let src = "integer p = 0\n\
                   while (p != -1) {\n\
                       A[p] = A[p] + 1\n\
                       p = step(p)\n\
                   }";
        let prog = parse_program(src).unwrap();
        let mut m = machine_with(&[("A", vec![0; 8])]);
        m.define_fn("step", |args| if args[0] >= 7 { -1 } else { args[0] + 1 });
        let out = run_parallel(&prog, &mut m, &pool(), 100).unwrap();
        assert!(!out.ran_parallel);
        assert!(m.arrays["A"].iter().all(|&v| v == 1));
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let src = "integer i = 0\nwhile (i < 10) { A[i] = 1; i = i + 1 }";
        let p = parse_program(src).unwrap();
        let mut m = machine_with(&[("A", vec![0; 3])]);
        let e = run_sequential(&p, &mut m, 100).unwrap_err();
        assert!(e.msg.contains("out of bounds"), "{e}");
    }

    #[test]
    fn runaway_loops_hit_the_bound() {
        let src = "while (1 == 1) { A[0] = A[0] + 1 }";
        let p = parse_program(src).unwrap();
        let mut m = machine_with(&[("A", vec![0; 1])]);
        let out = run_sequential(&p, &mut m, 50).unwrap();
        assert_eq!(out.exited_at, None);
        assert_eq!(m.arrays["A"][0], 50);
    }
}
