//! Loop IR and the compiler-side analyses of the paper.
//!
//! The paper's transformations are driven by static analysis: detect the
//! recurrences, build the data-dependence graph, distribute the loop into
//! a dispatcher loop and a remainder (Section 3), recursively extract
//! top-level recurrences when there are several (Section 6), fuse the
//! resulting loops bottom-up, and pick a strategy per the taxonomy and the
//! cost model. This crate implements that pipeline over an explicit loop
//! IR (the "Fortran front-end" is out of scope; the IR is what a front-end
//! would produce):
//!
//! * [`ir`] — statements with explicit read/write sets, affine or
//!   unanalyzable subscripts, recurrence updates and exit tests;
//! * [`dependence`] — pairwise dependence testing (GCD-style on affine
//!   subscripts, conservative on unknowns) and the dependence graph;
//! * [`scc`] — Tarjan's strongly-connected components, the unit of loop
//!   distribution;
//! * [`distribute`](mod@distribute) — topological distribution into sequential/parallel
//!   loops and the Section 6 bottom-up fusion;
//! * [`plan`](mod@plan) — taxonomy classification and strategy selection, bridging
//!   to `wlp-core`'s executors and cost model;
//! * [`frontend`] — a small Fortran-flavored source front-end that parses
//!   WHILE-loop text into the IR;
//! * [`interp`] — an interpreter executing parsed loops sequentially or
//!   through the planned speculative parallel strategy, completing the
//!   source → analysis → plan → parallel-execution pipeline.

pub mod dependence;
pub mod distribute;
pub mod frontend;
pub mod interp;
pub mod ir;
pub mod plan;
pub mod scc;
pub mod span;

pub use dependence::{
    refs_conflict_cross_iteration, refs_may_conflict, DepEdge, DepGraph, DepKind,
};
pub use distribute::{distribute, fuse, DistributedLoop, FusedBlock, LoopNature};
pub use frontend::parse_loop;
pub use interp::{run_parallel, run_sequential, ExecOutcome, Machine};
pub use ir::{ArrayId, LoopIr, Stmt, StmtKind, Subscript, UpdateOp, VarId, WRef};
pub use plan::{plan, Plan, StrategyKind};
pub use scc::condense;
pub use span::{line_col, Span};
