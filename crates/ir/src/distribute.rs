//! Loop distribution and the bottom-up fusion of Section 6.
//!
//! Distribution splits a multi-statement WHILE loop along its dependence
//! SCCs (recurrences stay whole); each distributed loop is *sequential*
//! (contains a loop-carried cycle or an unanalyzable conflict) or
//! *parallel*. Fusion then re-merges contiguous loops of equal nature —
//! "if the first loop is sequential, we fuse it with all following
//! contiguous sequential loops. When the first parallelizable loop is
//! found, we generate a distinct, new loop to which all next contiguous
//! parallel loops are fused" — maximizing granularity while keeping the
//! parallel code parallel.

use crate::dependence::{dep_graph, DepGraph};
use crate::ir::{LoopIr, StmtKind, UpdateOp};
use crate::scc::condense;

/// Whether a distributed loop can run in parallel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopNature {
    /// No loop-carried dependences inside: a DOALL candidate.
    Parallel,
    /// Contains a loop-carried cycle: runs sequentially (possibly
    /// pipelined/DOACROSS against its successors).
    Sequential,
}

/// One loop produced by distribution: a set of statements plus its nature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistributedLoop {
    /// Statement indices (ascending).
    pub stmts: Vec<usize>,
    /// Parallel or sequential.
    pub nature: LoopNature,
    /// The recurrence operator, when this loop is exactly one recurrence
    /// update (a dispatcher candidate).
    pub recurrence: Option<UpdateOp>,
}

/// Distributes `body` along its dependence SCCs, in topological order.
pub fn distribute(body: &LoopIr) -> Vec<DistributedLoop> {
    let g = dep_graph(body);
    distribute_with(body, &g)
}

/// Distribution against a pre-computed dependence graph (Section 6 reuses
/// the graph across the recursion).
pub fn distribute_with(body: &LoopIr, g: &DepGraph) -> Vec<DistributedLoop> {
    condense(g)
        .into_iter()
        .map(|stmts| {
            let carried = g.has_carried_within(&stmts);
            let recurrence = if stmts.len() == 1 {
                match body.stmts[stmts[0]].kind {
                    StmtKind::Update(op) => Some(op),
                    _ => None,
                }
            } else {
                None
            };
            DistributedLoop {
                nature: if carried {
                    LoopNature::Sequential
                } else {
                    LoopNature::Parallel
                },
                stmts,
                recurrence,
            }
        })
        .collect()
}

/// A fused block: contiguous distributed loops of the same nature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedBlock {
    /// The member loops, in order.
    pub loops: Vec<DistributedLoop>,
    /// Nature of the whole block.
    pub nature: LoopNature,
}

impl FusedBlock {
    /// All statement indices of the block.
    pub fn stmts(&self) -> Vec<usize> {
        self.loops
            .iter()
            .flat_map(|l| l.stmts.iter().copied())
            .collect()
    }
}

/// Bottom-up fusion per Section 6: contiguous loops of equal nature merge.
/// If `min_parallel_stmts > 0`, parallel blocks smaller than that are
/// demoted and fused into the adjacent sequential block — the paper's
/// "if the overhead of parallelization is not offset by the parallel
/// execution, then sequential code should be generated and fused to the
/// immediately preceding sequential block".
pub fn fuse(loops: Vec<DistributedLoop>, min_parallel_stmts: usize) -> Vec<FusedBlock> {
    let mut blocks: Vec<FusedBlock> = Vec::new();
    for l in loops {
        let mut nature = l.nature;
        if nature == LoopNature::Parallel && l.stmts.len() < min_parallel_stmts {
            nature = LoopNature::Sequential; // not worth parallelizing
        }
        match blocks.last_mut() {
            Some(b) if b.nature == nature => b.loops.push(l),
            _ => blocks.push(FusedBlock {
                loops: vec![l],
                nature,
            }),
        }
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::examples;
    use crate::ir::{ArrayId, Stmt, Subscript, VarId, WRef};

    #[test]
    fn list_traversal_distributes_into_dispatcher_and_work() {
        let loops = distribute(&examples::figure1b_list_traversal());
        // the pointer update is its own sequential recurrence loop
        let recs: Vec<_> = loops.iter().filter(|l| l.recurrence.is_some()).collect();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].recurrence, Some(UpdateOp::PointerChase));
        assert_eq!(recs[0].nature, LoopNature::Sequential);
        // the WORK(tmp) statement is conservatively sequential too (its
        // array access is unanalyzable) — the case the PD test targets
        let work = loops.iter().find(|l| l.stmts == vec![1]).unwrap();
        assert_eq!(work.nature, LoopNature::Sequential);
    }

    #[test]
    fn affine_loop_dispatcher_is_detected() {
        let loops = distribute(&examples::figure1e_affine());
        let rec: Vec<_> = loops.iter().filter_map(|l| l.recurrence).collect();
        assert_eq!(rec, vec![UpdateOp::MulAddConst]);
    }

    #[test]
    fn independent_loop_is_all_parallel() {
        let loops = distribute(&examples::figure5a_independent());
        assert!(loops.iter().all(|l| l.nature == LoopNature::Parallel));
    }

    #[test]
    fn recurrence_body_is_sequential() {
        let loops = distribute(&examples::figure5c_recurrence());
        assert!(loops
            .iter()
            .any(|l| l.nature == LoopNature::Sequential && l.stmts.contains(&1)));
    }

    /// A loop with two recurrences and parallel work between them.
    fn two_recurrences() -> LoopIr {
        let x = VarId(0);
        let y = VarId(1);
        let a = ArrayId(0);
        let i = Subscript::Affine {
            coeff: 1,
            offset: 0,
        };
        let mut l = LoopIr::new();
        l.push(Stmt::update(x, UpdateOp::AddConst, vec![]));
        l.push(Stmt::assign(
            vec![WRef::Element(a, i)],
            vec![WRef::Scalar(x)],
        ));
        l.push(Stmt::update(y, UpdateOp::PointerChase, vec![]));
        l.push(Stmt::assign(
            vec![WRef::Element(ArrayId(1), i)],
            vec![WRef::Scalar(y), WRef::Element(a, i)],
        ));
        l
    }

    #[test]
    fn multiple_recurrences_extract_recursively() {
        let loops = distribute(&two_recurrences());
        let recs: Vec<_> = loops.iter().filter_map(|l| l.recurrence).collect();
        assert_eq!(recs.len(), 2, "both dispatchers extracted: {loops:?}");
        // distribution order respects dependences: each recurrence comes
        // before the work consuming it
        let pos = |stmt: usize| loops.iter().position(|l| l.stmts.contains(&stmt)).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(2) < pos(3));
        assert!(pos(1) < pos(3), "work chain order");
    }

    #[test]
    fn fusion_merges_contiguous_equal_nature() {
        let loops = distribute(&two_recurrences());
        let blocks = fuse(loops, 0);
        // natures alternate seq/par at most; contiguous equals are merged
        for w in blocks.windows(2) {
            assert_ne!(w[0].nature, w[1].nature, "adjacent blocks must differ");
        }
        let total: usize = blocks.iter().map(|b| b.stmts().len()).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn tiny_parallel_blocks_are_demoted() {
        let loops = distribute(&two_recurrences());
        let blocks = fuse(loops, 10); // nothing is big enough to parallelize
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].nature, LoopNature::Sequential);
    }

    #[test]
    fn empty_body() {
        assert!(distribute(&LoopIr::new()).is_empty());
        assert!(fuse(vec![], 0).is_empty());
    }
}
