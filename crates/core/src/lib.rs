//! WHILE-loop parallelization: the paper's primary contribution.
//!
//! A WHILE loop is a loop with one or more *recurrences* (the dominating
//! one is the **dispatcher**), a *remainder* (the per-iteration work), and
//! one or more *termination conditions* (the **terminator**). This crate
//! implements the full transformation framework of Rauchwerger & Padua:
//!
//! * [`taxonomy`] — Table 1: the dispatcher/terminator classification that
//!   decides which method applies and whether overshooting is possible.
//! * [`dispatch`] — dispatcher abstractions: inductions (closed form),
//!   affine/associative recurrences (parallel-prefix evaluable), and
//!   general recurrences (linked-list cursors).
//! * [`induction`] — Induction-1 and Induction-2 (Section 3.1): DOALL
//!   execution with in-body termination tests and the last-valid-iteration
//!   minimum reduction; Induction-2 uses the software QUIT.
//! * [`assoc`] — the associative-dispatcher method (Section 3.2): loop
//!   distribution plus a parallel prefix, then a DOALL over the terms.
//! * [`general`] — General-1/2/3 (Section 3.3) for inherently sequential
//!   dispatchers, plus the Wu & Lewis loop-distribution baseline.
//! * [`undo`] — Section 4: checkpointed, write-time-stamped arrays and the
//!   restoration of iterations that overshot the termination condition.
//! * [`speculate`] — Section 5: speculative parallel execution with the PD
//!   test, exception capture, and automatic sequential re-execution.
//! * [`recover`] — the Section 5 exception rule as a reusable combinator:
//!   on a contained worker panic, restore the [`VersionedArray`]
//!   checkpoint, emit the abort events, re-execute sequentially.
//! * [`cost`] — Section 7: the `Sp_id`/`Sp_at` model, worst-case bounds and
//!   the should-we-parallelize decision procedure.
//! * [`strategy`] — Section 8: statistics-enhanced stamping thresholds and
//!   the 1-processor/(p−1)-processor hedge. (Strip-mining and the sliding
//!   window live in `wlp-runtime`, which this crate re-uses.)
//! * [`constructs`] — the proposed parallel-language constructs
//!   WHILE-DOALL / WHILE-DOACROSS / WHILE-DOANY, plus the Section 4
//!   run-twice scheme that avoids time-stamping altogether.

pub mod assoc;
pub mod constructs;
pub mod cost;
pub mod dispatch;
pub mod general;
pub mod induction;
pub mod recover;
pub mod speculate;
pub mod strategy;
pub mod taxonomy;
pub mod undo;

pub use constructs::{run_twice_while, while_doacross, while_doall, while_doany};
pub use cost::{CostModel, Decision};
pub use dispatch::{AffineRecurrence, InductionDispatcher, ListDispatcher};
pub use general::{
    general1, general1_until_rec, general2, general3, general3_recovering, general3_recovering_rec,
    general3_until_rec, wu_lewis_distribution, GeneralConfig, GeneralOutcome,
};
pub use induction::{induction1, induction1_rec, induction2, induction2_rec, InductionOutcome};
pub use recover::{run_with_recovery, ParallelAttempt, RecoveryOutcome};
pub use speculate::{
    run_twice_speculative, speculative_while, speculative_while_chunked,
    speculative_while_chunked_rec, speculative_while_group, speculative_while_privatized,
    speculative_while_rec, speculative_while_strips, speculative_while_windowed, GroupAccess,
    SpecOutcome, SpeculativeArray, StripSpecOutcome,
};
pub use strategy::{
    governed_while, governed_while_rec, hedged_execute, CancelToken, GovernedOutcome, HedgeWinner,
    StatsStamping,
};
pub use taxonomy::{classify, DispatcherClass, Parallelism, TaxonomyCell, TerminatorClass};
pub use undo::VersionedArray;
