//! Induction-dispatcher methods (Section 3.1).
//!
//! When the dispatcher is an induction `d(i) = c·i + b`, every processor
//! evaluates it from the closed form, so the WHILE loop runs as a DOALL
//! with the termination test inlined:
//!
//! * **Induction-1** — no early exit support assumed from the machine: each
//!   processor keeps the lowest iteration *it* executed that met the
//!   termination condition (`L[vpn]`) and skips work for iterations above
//!   it; afterwards `LI = min(L)` is found by a parallel reduction.
//! * **Induction-2** — the optimized variant using the `QUIT` operation:
//!   the quitting iteration stops issue of larger iterations outright.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;
use wlp_obs::{Event, NoopRecorder, Recorder};
use wlp_runtime::{doall_dynamic, doall_static_cyclic, parallel_min, Pool, Step, WorkerPanic};

/// Result of an induction-method execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InductionOutcome {
    /// The first iteration at which the terminator held (the paper's `LI`);
    /// `None` if the loop ran its full range.
    pub last_valid: Option<usize>,
    /// Bodies executed (valid + overshot).
    pub executed: u64,
    /// One past the highest iteration begun.
    pub max_started: usize,
    /// First contained worker panic, if any — the underlying DOALL caught
    /// it at an iteration boundary and cancelled the run; `last_valid` is
    /// then unreliable and the caller must recover (see
    /// [`crate::recover::run_with_recovery`]).
    pub panic: Option<WorkerPanic>,
}

/// Induction-1: full-range DOALL with per-processor termination minima.
///
/// `term(i)` evaluates the termination condition for iteration `i` (for an
/// RV loop it may read state the bodies produce — that is precisely the
/// speculation this method supports); `body(i, vpn)` is the remainder.
/// Iterations above a processor's local minimum are skipped, but
/// processors do not learn each other's minima until the final reduction —
/// the overshoot cost of not having `QUIT`.
pub fn induction1<TF, BF>(pool: &Pool, upper: usize, term: TF, body: BF) -> InductionOutcome
where
    TF: Fn(usize) -> bool + Sync,
    BF: Fn(usize, usize) + Sync,
{
    induction1_rec(pool, upper, &NoopRecorder, term, body)
}

/// [`induction1`] with observability: each claim, terminator-only
/// evaluation (`TermTest`), executed body and the closing join are
/// reported to `rec`. Terminator evaluations fused with a body are folded
/// into the body's `IterExecuted` cost, mirroring the simulator's
/// convention. With [`NoopRecorder`] — which is what [`induction1`]
/// passes — every probe compiles away.
pub fn induction1_rec<TF, BF, R>(
    pool: &Pool,
    upper: usize,
    rec: &R,
    term: TF,
    body: BF,
) -> InductionOutcome
where
    TF: Fn(usize) -> bool + Sync,
    BF: Fn(usize, usize) + Sync,
    R: Recorder,
{
    let l: Vec<AtomicUsize> = (0..pool.size())
        .map(|_| AtomicUsize::new(usize::MAX))
        .collect();
    let executed = AtomicU64::new(0);
    let out = doall_dynamic(pool, upper, |i, vpn| {
        if R::ENABLED {
            rec.record(
                vpn,
                Event::IterClaimed {
                    iter: i as u64,
                    cost: 0,
                },
            );
        }
        if l[vpn].load(Ordering::Relaxed) > i {
            let t0 = R::ENABLED.then(Instant::now);
            if term(i) {
                l[vpn].store(i, Ordering::Relaxed);
                if R::ENABLED {
                    let cost = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    rec.record(
                        vpn,
                        Event::TermTest {
                            iter: i as u64,
                            cost,
                        },
                    );
                }
            } else {
                body(i, vpn);
                executed.fetch_add(1, Ordering::Relaxed);
                if R::ENABLED {
                    let cost = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    rec.record(
                        vpn,
                        Event::IterExecuted {
                            iter: i as u64,
                            cost,
                        },
                    );
                }
            }
        }
        Step::Continue
    });
    if R::ENABLED {
        for proc in 0..pool.size() {
            rec.record(proc, Event::Barrier { cost: 0 });
        }
    }
    let minima: Vec<usize> = l.iter().map(|a| a.load(Ordering::Relaxed)).collect();
    let li = parallel_min(pool, &minima).filter(|&m| m != usize::MAX);
    InductionOutcome {
        last_valid: li,
        executed: executed.load(Ordering::Relaxed),
        max_started: out.max_started,
        panic: out.panic,
    }
}

/// Induction-2: DOALL with the software `QUIT` — iterations larger than the
/// smallest quitting one are not begun. Ordered (dynamic) issue.
///
/// ```
/// use wlp_core::induction::induction2;
/// use wlp_runtime::Pool;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// // while !(i*i > 1000) { work(i) } — an RI threshold terminator
/// let sum = AtomicU64::new(0);
/// let out = induction2(&Pool::new(4), 1_000_000, |i| i * i > 1000,
///     |i, _vpn| { sum.fetch_add(i as u64, Ordering::Relaxed); });
/// assert_eq!(out.last_valid, Some(32));          // 32² = 1024
/// assert_eq!(sum.load(Ordering::Relaxed), (0..32).sum::<u64>());
/// ```
pub fn induction2<TF, BF>(pool: &Pool, upper: usize, term: TF, body: BF) -> InductionOutcome
where
    TF: Fn(usize) -> bool + Sync,
    BF: Fn(usize, usize) + Sync,
{
    induction2_rec(pool, upper, &NoopRecorder, term, body)
}

/// [`induction2`] with observability: each claim, terminator-only
/// evaluation, executed body, QUIT broadcast and the closing join are
/// reported to `rec`. With [`NoopRecorder`] — which is what
/// [`induction2`] passes — every probe compiles away.
pub fn induction2_rec<TF, BF, R>(
    pool: &Pool,
    upper: usize,
    rec: &R,
    term: TF,
    body: BF,
) -> InductionOutcome
where
    TF: Fn(usize) -> bool + Sync,
    BF: Fn(usize, usize) + Sync,
    R: Recorder,
{
    let executed = AtomicU64::new(0);
    let out = doall_dynamic(pool, upper, |i, vpn| {
        if R::ENABLED {
            rec.record(
                vpn,
                Event::IterClaimed {
                    iter: i as u64,
                    cost: 0,
                },
            );
        }
        let t0 = R::ENABLED.then(Instant::now);
        if term(i) {
            if R::ENABLED {
                let cost = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
                rec.record(
                    vpn,
                    Event::TermTest {
                        iter: i as u64,
                        cost,
                    },
                );
                rec.record(vpn, Event::Quit { iter: i as u64 });
            }
            Step::Quit
        } else {
            body(i, vpn);
            executed.fetch_add(1, Ordering::Relaxed);
            if R::ENABLED {
                let cost = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
                rec.record(
                    vpn,
                    Event::IterExecuted {
                        iter: i as u64,
                        cost,
                    },
                );
            }
            Step::Continue
        }
    });
    if R::ENABLED {
        for proc in 0..pool.size() {
            rec.record(proc, Event::Barrier { cost: 0 });
        }
    }
    InductionOutcome {
        last_valid: out.quit,
        executed: executed.load(Ordering::Relaxed),
        max_started: out.max_started,
        panic: out.panic,
    }
}

/// Induction-2 with a static cyclic schedule (iteration `i` on processor
/// `i mod p`): the assignment the paper contrasts against dynamic issue —
/// same semantics, potentially larger spans of overshot iterations.
pub fn induction2_static<TF, BF>(pool: &Pool, upper: usize, term: TF, body: BF) -> InductionOutcome
where
    TF: Fn(usize) -> bool + Sync,
    BF: Fn(usize, usize) + Sync,
{
    let executed = AtomicU64::new(0);
    let out = doall_static_cyclic(pool, upper, |i, vpn| {
        if term(i) {
            Step::Quit
        } else {
            body(i, vpn);
            executed.fetch_add(1, Ordering::Relaxed);
            Step::Continue
        }
    });
    InductionOutcome {
        last_valid: out.quit,
        executed: executed.load(Ordering::Relaxed),
        max_started: out.max_started,
        panic: out.panic,
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // indexing by iteration number is the semantics under test
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn pool() -> Pool {
        Pool::new(4)
    }

    #[test]
    fn induction1_finds_last_valid_iteration() {
        let out = induction1(&pool(), 10_000, |i| i >= 137, |_, _| {});
        assert_eq!(out.last_valid, Some(137));
    }

    #[test]
    fn induction1_executes_every_valid_iteration() {
        let hits: Vec<AtomicU32> = (0..1000).map(|_| AtomicU32::new(0)).collect();
        let out = induction1(
            &pool(),
            1000,
            |i| i >= 600,
            |i, _| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(out.last_valid, Some(600));
        for i in 0..600 {
            assert_eq!(hits[i].load(Ordering::Relaxed), 1, "iteration {i}");
        }
        // terminator-satisfying iterations never run the body
        for i in 600..1000 {
            assert_eq!(hits[i].load(Ordering::Relaxed), 0, "iteration {i}");
        }
    }

    #[test]
    fn induction1_no_termination_runs_full_range() {
        let out = induction1(&pool(), 500, |_| false, |_, _| {});
        assert_eq!(out.last_valid, None);
        assert_eq!(out.executed, 500);
    }

    #[test]
    fn induction2_quits_early() {
        let out = induction2(&pool(), 1_000_000, |i| i >= 50, |_, _| {});
        assert_eq!(out.last_valid, Some(50));
        assert_eq!(out.executed, 50, "exactly the valid bodies ran");
        // QUIT bounds issue tightly compared to the 1M range
        assert!(out.max_started < 50 + 64);
    }

    #[test]
    fn induction2_static_matches_semantics() {
        let hits: Vec<AtomicU32> = (0..1000).map(|_| AtomicU32::new(0)).collect();
        let out = induction2_static(
            &pool(),
            1000,
            |i| i >= 300,
            |i, _| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            },
        );
        let li = out.last_valid.unwrap();
        assert!((300..304).contains(&li));
        for i in 0..300 {
            assert_eq!(hits[i].load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn induction_body_panic_is_contained_and_reported() {
        let out = induction2(
            &pool(),
            1000,
            |_| false,
            |i, _| {
                if i == 77 {
                    panic!("induction fault");
                }
            },
        );
        let wp = out.panic.expect("panic must surface in the outcome");
        assert_eq!(wp.iter, Some(77));
        assert_eq!(wp.message, "induction fault");
        assert!(out.executed < 1000, "cancellation curbs execution");

        let out = induction1(
            &pool(),
            1000,
            |_| false,
            |i, _| {
                if i == 77 {
                    panic!("induction fault");
                }
            },
        );
        assert!(out.panic.is_some(), "Induction-1 reports faults too");
    }

    #[test]
    fn induction_methods_agree_on_last_valid() {
        for exit in [0usize, 1, 7, 99] {
            let a = induction1(&pool(), 200, move |i| i >= exit, |_, _| {});
            let b = induction2(&pool(), 200, move |i| i >= exit, |_, _| {});
            assert_eq!(a.last_valid, Some(exit));
            assert_eq!(b.last_valid, Some(exit));
        }
    }

    #[test]
    fn rv_style_termination_reading_shared_state() {
        // terminator depends on values the bodies compute (RV): here the
        // bodies fill `flag` and the terminator reads it — races are fine
        // because Induction-1 only needs *some* valid minimum, refined by
        // the final reduction
        let flag: Vec<AtomicU32> = (0..1000).map(|_| AtomicU32::new(0)).collect();
        let out = induction1(
            &pool(),
            1000,
            |i| flag[i].load(Ordering::Relaxed) == 1 && i >= 400,
            |i, _| {
                flag[i].store(1, Ordering::Relaxed);
            },
        );
        // the terminator may or may not have fired depending on timing; if
        // it did, it fired at an iteration ≥ 400
        if let Some(li) = out.last_valid {
            assert!(li >= 400);
        }
    }
}
