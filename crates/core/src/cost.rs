//! The cost/performance model (Section 7).
//!
//! With `T_seq = T_rem + T_rec`, the ideal parallel time is
//!
//! * `T_ipar = (T_rem + T_rec)/p` for an induction dispatcher,
//! * `(T_rem + T_rec)/p + log p` for an associative dispatcher, and
//! * `T_rem/p + T_rec` for a general recurrence (dispatcher sequential).
//!
//! The run-time methods reduce the attainable speedup by overheads
//! incurred before (`T_b`, checkpointing), during (`T_d`, time-stamping and
//! shadow marking) and after (`T_a`, undo + PD analysis) the parallel
//! execution. With `a` accesses: `T_b ≈ T_a ≈ O(a/p)` (fully parallel),
//! `T_d = O(a / Sp_id)` (parallelizable only as far as the loop itself).
//! In the worst case (`Sp_id ≈ p`, access-dominated loop) the model yields
//! the paper's bounds `Sp_at = Sp_id/4` without the PD test and `Sp_id/5`
//! with it; a failed PD test costs an extra `≈ T_seq·5/p` on top of the
//! sequential re-execution — a slowdown proportional to `T_seq/p`.

use crate::taxonomy::Parallelism;
use wlp_obs::StrategyChoice;

/// Inputs to the Section 7 model, in consistent (arbitrary) time units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Time of the loop remainder over the whole iteration space.
    pub t_rem: f64,
    /// Time to evaluate the entire dispatching recurrence.
    pub t_rec: f64,
    /// Processor count.
    pub p: usize,
    /// Dispatcher parallelism class (from the taxonomy).
    pub parallelism: Parallelism,
    /// Number of shared-array accesses in the loop (`a`); drives the
    /// overhead terms. Measured in the same time units (one access ≈ one
    /// unit of overhead work per method applied).
    pub accesses: f64,
    /// Whether the PD test is applied.
    pub uses_pd: bool,
}

/// The parallelize-or-not recommendation.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Parallelize; the expected (attainable) speedup.
    Parallelize {
        /// Predicted `Sp_at`.
        expected_speedup: f64,
    },
    /// Execute sequentially.
    Sequential {
        /// Why parallelization is not worthwhile.
        reason: String,
    },
}

impl CostModel {
    /// `T_seq = T_rem + T_rec`.
    pub fn t_seq(&self) -> f64 {
        self.t_rem + self.t_rec
    }

    /// Ideal parallel time `T_ipar` per the dispatcher class.
    pub fn t_ipar(&self) -> f64 {
        let p = self.p as f64;
        match self.parallelism {
            Parallelism::Full => (self.t_rem + self.t_rec) / p,
            Parallelism::ParallelPrefix => (self.t_rem + self.t_rec) / p + p.log2().max(0.0),
            Parallelism::Sequential => self.t_rem / p + self.t_rec,
        }
    }

    /// Ideal speedup `Sp_id = T_seq / T_ipar`.
    pub fn ideal_speedup(&self) -> f64 {
        self.t_seq() / self.t_ipar()
    }

    /// Overhead before the loop (`T_b`): checkpointing, fully parallel.
    pub fn t_before(&self) -> f64 {
        self.accesses / self.p as f64
    }

    /// Overhead during the loop (`T_d`): time-stamps/shadow marks, only as
    /// parallel as the loop itself.
    pub fn t_during(&self) -> f64 {
        self.accesses / self.ideal_speedup()
    }

    /// Overhead after the loop (`T_a`): undo, plus the PD post-execution
    /// analysis when applicable — both fully parallel.
    pub fn t_after(&self) -> f64 {
        let terms = if self.uses_pd { 2.0 } else { 1.0 };
        terms * self.accesses / self.p as f64
    }

    /// Attainable speedup `Sp_at = T_seq / (T_ipar + T_b + T_d + T_a)`.
    pub fn attainable_speedup(&self) -> f64 {
        self.t_seq() / (self.t_ipar() + self.t_before() + self.t_during() + self.t_after())
    }

    /// The paper's worst-case fraction of the ideal speedup: 1/4 without
    /// the PD test, 1/5 with it.
    pub fn worst_case_fraction(uses_pd: bool) -> f64 {
        if uses_pd {
            0.2
        } else {
            0.25
        }
    }

    /// Extra time (beyond `T_seq`) paid when the PD test fails and the loop
    /// re-runs sequentially: `≈ 5·T_seq/p` in the worst case — a slowdown
    /// proportional to `T_seq/p`.
    pub fn failure_penalty(&self) -> f64 {
        5.0 * self.t_seq() / self.p as f64
    }

    /// Maps the Section 7 decision onto the governor's strategy ladder —
    /// the static starting rung for [`Governor::starting_at`]: rejected
    /// loops start [`Sequential`]; accepted loops with a sequential
    /// dispatcher start at [`Distribution`] (dispatcher evaluated
    /// sequentially, remainder distributed); everything else starts at
    /// full [`Speculative`]. The governor demotes from there at run time.
    ///
    /// [`Governor::starting_at`]: wlp_runtime::Governor::starting_at
    /// [`Sequential`]: StrategyChoice::Sequential
    /// [`Distribution`]: StrategyChoice::Distribution
    /// [`Speculative`]: StrategyChoice::Speculative
    pub fn recommended_strategy(&self, min_speedup: f64) -> StrategyChoice {
        match self.decide(min_speedup) {
            Decision::Sequential { .. } => StrategyChoice::Sequential,
            Decision::Parallelize { .. } => match self.parallelism {
                Parallelism::Sequential => StrategyChoice::Distribution,
                Parallelism::Full | Parallelism::ParallelPrefix => StrategyChoice::Speculative,
            },
        }
    }

    /// The Section 7 decision: parallelize unless there is not enough
    /// parallelism available. The two disqualifying cases the paper names:
    /// a general dispatcher whose evaluation dominates (`T_rem < T_rec`),
    /// and an expected speedup below `min_speedup`.
    pub fn decide(&self, min_speedup: f64) -> Decision {
        if self.parallelism == Parallelism::Sequential && self.t_rem < self.t_rec {
            return Decision::Sequential {
                reason: format!(
                    "loop is essentially the sequential dispatcher (T_rem {} < T_rec {})",
                    self.t_rem, self.t_rec
                ),
            };
        }
        let expected = self.attainable_speedup();
        if expected < min_speedup {
            return Decision::Sequential {
                reason: format!("expected speedup {expected:.2} below threshold {min_speedup:.2}"),
            };
        }
        Decision::Parallelize {
            expected_speedup: expected,
        }
    }
}

/// Predicts the iteration count of a WHILE loop from branch statistics:
/// if the back-edge (continue) probability is `p_continue`, the expected
/// trip count is `1 / (1 − p_continue)` — the paper's suggestion to reuse
/// superscalar branch-speculation data.
pub fn iterations_from_branch_stats(p_continue: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&p_continue),
        "continue probability must be in [0, 1)"
    );
    1.0 / (1.0 - p_continue)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access_dominated(p: usize, uses_pd: bool) -> CostModel {
        // the worst case: every cycle of the loop is a shared access
        CostModel {
            t_rem: 1000.0,
            t_rec: 0.0,
            p,
            parallelism: Parallelism::Full,
            accesses: 1000.0,
            uses_pd,
        }
    }

    #[test]
    fn worst_case_quarter_without_pd() {
        let m = access_dominated(8, false);
        let ratio = m.attainable_speedup() / m.ideal_speedup();
        assert!((ratio - 0.25).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn worst_case_fifth_with_pd() {
        let m = access_dominated(8, true);
        let ratio = m.attainable_speedup() / m.ideal_speedup();
        assert!((ratio - 0.20).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn light_access_loops_lose_little() {
        // bodies dominate: overhead is a sliver
        let m = CostModel {
            t_rem: 100_000.0,
            t_rec: 0.0,
            p: 8,
            parallelism: Parallelism::Full,
            accesses: 100.0,
            uses_pd: false,
        };
        let ratio = m.attainable_speedup() / m.ideal_speedup();
        assert!(ratio > 0.98, "ratio {ratio}");
    }

    #[test]
    fn general_dispatcher_caps_ideal_speedup() {
        let m = CostModel {
            t_rem: 800.0,
            t_rec: 200.0,
            p: 8,
            parallelism: Parallelism::Sequential,
            accesses: 0.0,
            uses_pd: false,
        };
        // Sp_id = 1000 / (800/8 + 200) = 3.33…
        assert!((m.ideal_speedup() - 1000.0 / 300.0).abs() < 1e-9);
    }

    #[test]
    fn dispatcher_dominated_loop_is_rejected() {
        let m = CostModel {
            t_rem: 100.0,
            t_rec: 900.0,
            p: 8,
            parallelism: Parallelism::Sequential,
            accesses: 0.0,
            uses_pd: false,
        };
        assert!(matches!(m.decide(1.5), Decision::Sequential { .. }));
    }

    #[test]
    fn work_rich_loop_is_accepted() {
        let m = CostModel {
            t_rem: 10_000.0,
            t_rec: 10.0,
            p: 8,
            parallelism: Parallelism::Full,
            accesses: 100.0,
            uses_pd: true,
        };
        match m.decide(1.5) {
            Decision::Parallelize { expected_speedup } => {
                assert!(expected_speedup > 6.0, "got {expected_speedup}")
            }
            d => panic!("expected Parallelize, got {d:?}"),
        }
    }

    #[test]
    fn failure_penalty_shrinks_with_p() {
        let m8 = access_dominated(8, true);
        let m2 = access_dominated(2, true);
        assert!(m8.failure_penalty() < m2.failure_penalty());
        // the slowdown is small relative to Tseq for large p
        assert!(m8.failure_penalty() < m8.t_seq());
    }

    #[test]
    fn prefix_parallelism_pays_log_term() {
        let mk = |par| CostModel {
            t_rem: 1000.0,
            t_rec: 1000.0,
            p: 8,
            parallelism: par,
            accesses: 0.0,
            uses_pd: false,
        };
        assert!(
            mk(Parallelism::ParallelPrefix).ideal_speedup() < mk(Parallelism::Full).ideal_speedup()
        );
    }

    #[test]
    fn recommended_strategy_spans_the_ladder() {
        let rich = CostModel {
            t_rem: 10_000.0,
            t_rec: 10.0,
            p: 8,
            parallelism: Parallelism::Full,
            accesses: 100.0,
            uses_pd: true,
        };
        assert_eq!(rich.recommended_strategy(1.5), StrategyChoice::Speculative);
        let seq_dispatcher = CostModel {
            t_rem: 10_000.0,
            t_rec: 100.0,
            p: 8,
            parallelism: Parallelism::Sequential,
            accesses: 100.0,
            uses_pd: false,
        };
        assert_eq!(
            seq_dispatcher.recommended_strategy(1.5),
            StrategyChoice::Distribution
        );
        let dominated = CostModel {
            t_rem: 100.0,
            t_rec: 900.0,
            p: 8,
            parallelism: Parallelism::Sequential,
            accesses: 0.0,
            uses_pd: false,
        };
        assert_eq!(
            dominated.recommended_strategy(1.5),
            StrategyChoice::Sequential
        );
    }

    #[test]
    fn branch_stats_trip_count() {
        assert!((iterations_from_branch_stats(0.0) - 1.0).abs() < 1e-12);
        assert!((iterations_from_branch_stats(0.99) - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "continue probability")]
    fn branch_stats_rejects_certain_loop() {
        let _ = iterations_from_branch_stats(1.0);
    }
}
