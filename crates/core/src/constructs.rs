//! The parallel WHILE constructs the paper proposes for manual
//! parallelization: **WHILE-DOALL**, **WHILE-DOACROSS** and
//! **WHILE-DOANY** — "WHILE loop counterparts for the existing constructs
//! for parallel execution of DO loops".
//!
//! Also home to the Section 4 **run-twice** scheme: time-stamping can be
//! avoided completely by running the parallel loop twice — once to find
//! the iteration count, then as a plain DOALL over the now-known range.

use crate::induction::InductionOutcome;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use wlp_runtime::{doacross, doall_dynamic, Pool, Step};

/// WHILE-DOALL: a WHILE loop with an induction dispatcher and independent
/// iterations, run as a DOALL with the terminator inlined and QUIT
/// semantics. (An alias with the paper's construct name; identical to
/// [`crate::induction::induction2`].)
pub fn while_doall<TF, BF>(pool: &Pool, upper: usize, term: TF, body: BF) -> InductionOutcome
where
    TF: Fn(usize) -> bool + Sync,
    BF: Fn(usize, usize) + Sync,
{
    crate::induction::induction2(pool, upper, term, body)
}

/// WHILE-DOACROSS: a WHILE loop whose remainder carries cross-iteration
/// dependences, pipelined over `stages` with the terminator evaluated as
/// stage 0. Iterations past the first terminating one are not started
/// once it is known (their stage-0 wavefront is cancelled). Returns the
/// first terminating iteration.
pub fn while_doacross<TF, BF>(
    pool: &Pool,
    upper: usize,
    stages: usize,
    term: TF,
    body: BF,
) -> Option<usize>
where
    TF: Fn(usize) -> bool + Sync,
    BF: Fn(usize, usize) + Sync,
{
    let quit = AtomicUsize::new(usize::MAX);
    let out = doacross(pool, upper, stages + 1, |i, s| {
        // Stage 0 (the terminator) runs in strict iteration order along the
        // wavefront, so by the time iteration i tests, every earlier exit
        // is already registered — the quit bound below is exact, and
        // test-then-work semantics need no undo.
        if s == 0 {
            if i < quit.load(Ordering::Acquire) && term(i) {
                quit.fetch_min(i, Ordering::AcqRel);
            }
        } else if i < quit.load(Ordering::Acquire) {
            body(i, s - 1);
        }
    });
    // this construct's return type cannot carry a contained fault, so a
    // worker panic resumes on the caller — not silently swallowed
    if let Some(wp) = out.panic {
        wp.resume();
    }
    let q = quit.load(Ordering::Acquire);
    (q != usize::MAX).then_some(q)
}

/// WHILE-DOANY: searches `0..upper` for *any* iteration whose body yields
/// `Some`; the loop is order-insensitive, so the first completing success
/// wins, needs no undo, and overshoot is harmless (the MCSPARSE pivot
/// search). Returns the winning value and its iteration.
///
/// ```
/// use wlp_core::constructs::while_doany;
/// use wlp_runtime::Pool;
///
/// let hit = while_doany(&Pool::new(4), 10_000, |i| (i % 37 == 5).then_some(i));
/// let (i, v) = hit.unwrap();
/// assert_eq!(i % 37, 5);
/// assert_eq!(i, v);
/// ```
pub fn while_doany<T, F>(pool: &Pool, upper: usize, body: F) -> Option<(usize, T)>
where
    T: Send,
    F: Fn(usize) -> Option<T> + Sync,
{
    let found: parking_lot::Mutex<Option<(usize, T)>> = parking_lot::Mutex::new(None);
    let out = doall_dynamic(pool, upper, |i, _| match body(i) {
        Some(v) => {
            let mut f = found.lock();
            if f.is_none() {
                *f = Some((i, v));
            }
            Step::Quit
        }
        None => Step::Continue,
    });
    if let Some(wp) = out.panic {
        wp.resume();
    }
    found.into_inner()
}

/// The Section 4 run-twice scheme for RI terminators: "time-stamping can
/// be avoided completely if one is willing to execute the parallel version
/// of the WHILE loop twice. First, the loop is run in parallel to
/// determine the number of iterations … Then, since the number of
/// iterations is known, the second time the loop can simply be run as a
/// DOALL."
///
/// Pass 1 evaluates only the terminator (cheap for RI conditions); pass 2
/// executes exactly the valid bodies with no stamps, no backups, no undo.
/// Returns the outcome; `executed` counts pass-2 bodies.
pub fn run_twice_while<TF, BF>(pool: &Pool, upper: usize, term: TF, body: BF) -> InductionOutcome
where
    TF: Fn(usize) -> bool + Sync,
    BF: Fn(usize, usize) + Sync,
{
    // pass 1: find LI with a terminator-only DOALL (QUIT bounds the scan)
    let pass1 = doall_dynamic(pool, upper, |i, _| {
        if term(i) {
            Step::Quit
        } else {
            Step::Continue
        }
    });
    let end = pass1.quit.unwrap_or(upper);

    // pass 2: a plain DOALL over the known range — no speculation state
    let executed = AtomicU64::new(0);
    let pass2 = doall_dynamic(pool, end, |i, vpn| {
        body(i, vpn);
        executed.fetch_add(1, Ordering::Relaxed);
        Step::Continue
    });
    InductionOutcome {
        last_valid: pass1.quit,
        executed: executed.load(Ordering::Relaxed),
        max_started: pass2.max_started,
        panic: pass1.panic.or(pass2.panic),
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // indexing by iteration number is the semantics under test
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn pool() -> Pool {
        Pool::new(4)
    }

    #[test]
    fn while_doall_behaves_like_induction2() {
        let out = while_doall(&pool(), 10_000, |i| i >= 42, |_, _| {});
        assert_eq!(out.last_valid, Some(42));
        assert_eq!(out.executed, 42);
    }

    #[test]
    fn while_doany_finds_a_satisfying_iterate() {
        let hit = while_doany(&pool(), 100_000, |i| (i % 977 == 421).then_some(i * 2));
        let (i, v) = hit.expect("a satisfying iterate exists");
        assert_eq!(i % 977, 421);
        assert_eq!(v, i * 2);
    }

    #[test]
    fn while_doany_without_successes_returns_none() {
        assert_eq!(while_doany(&pool(), 1000, |_| None::<u8>), None);
    }

    #[test]
    fn while_doacross_computes_a_recurrence_with_exit() {
        // x[i] = x[i-1] + 1 with exit when i == 50
        let n = 200usize;
        let xs: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let exit = while_doacross(
            &pool(),
            n,
            1,
            |i| i == 50,
            |i, _| {
                let prev = if i == 0 {
                    0
                } else {
                    xs[i - 1].load(Ordering::Acquire)
                };
                xs[i].store(prev + 1, Ordering::Release);
            },
        );
        assert_eq!(exit, Some(50));
        for i in 0..50 {
            assert_eq!(xs[i].load(Ordering::Relaxed), i as u32 + 1, "iteration {i}");
        }
        for i in 51..n {
            assert_eq!(
                xs[i].load(Ordering::Relaxed),
                0,
                "iteration {i} must not run"
            );
        }
    }

    #[test]
    fn while_doacross_without_exit_runs_everything() {
        let n = 64usize;
        let count = AtomicU32::new(0);
        let exit = while_doacross(
            &pool(),
            n,
            2,
            |_| false,
            |_, _| {
                count.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(exit, None);
        assert_eq!(count.load(Ordering::Relaxed), (n * 2) as u32);
    }

    #[test]
    fn run_twice_executes_exactly_the_valid_bodies() {
        let hits: Vec<AtomicU32> = (0..1000).map(|_| AtomicU32::new(0)).collect();
        let out = run_twice_while(
            &pool(),
            1000,
            |i| i >= 314,
            |i, _| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(out.last_valid, Some(314));
        assert_eq!(out.executed, 314);
        for (i, h) in hits.iter().enumerate() {
            let expect = u32::from(i < 314);
            assert_eq!(h.load(Ordering::Relaxed), expect, "iteration {i}");
        }
    }

    #[test]
    fn run_twice_without_exit() {
        let out = run_twice_while(&pool(), 500, |_| false, |_, _| {});
        assert_eq!(out.last_valid, None);
        assert_eq!(out.executed, 500);
    }
}
