//! Strategies for applying the techniques (Section 8).
//!
//! * [`StatsStamping`] — statistics-enhanced stamping (Section 8.1): when a
//!   compiler-supplied estimate `n̂` of the trip count exists, values
//!   written by iterations below `x%·n̂` (where `x%` is the confidence in
//!   the estimate) are very unlikely to need undoing, so their time-stamps
//!   can be skipped.
//! * [`hedged_execute`] — the 1-processor/(p−1)-processor solution
//!   (Section 8.3): one processor runs the loop sequentially while the rest
//!   run it in parallel on separate output copies; whichever finishes first
//!   wins and cancels the other.
//! * [`governed_while`] — adaptive governance: one WHILE-loop instance
//!   executed on whatever rung of the strategy ladder the
//!   [`Governor`] currently recommends, with the policy's watchdog
//!   deadline and undo-log budget applied, and the attempt's outcome fed
//!   back so abort storms demote the ladder and success streaks earn
//!   re-promotion probes.
//!
//! (Strip-mining and the sliding window — Sections 8.1/8.2 — are the
//! [`wlp_runtime::strip_mined`] and [`wlp_runtime::doall_windowed`]
//! schedulers, which the methods in this crate compose with.)

use crate::speculate::{
    run_twice_speculative, speculative_while_rec, speculative_while_windowed, SpecAccess,
    SpeculativeArray,
};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use wlp_obs::{AbortReason, Event, NoopRecorder, Recorder, StrategyChoice};
use wlp_runtime::{Governor, Pool, Transition};

/// How a governed attempt went: which rung ran, whether the governor
/// moved, and the usual speculation outcome facts.
#[derive(Debug, Clone)]
pub struct GovernedOutcome {
    /// The ladder rung this attempt executed on.
    pub strategy: StrategyChoice,
    /// The demotion/re-promotion this attempt's outcome triggered, if any
    /// (already applied to the governor; the *next* attempt runs on
    /// `transition.to`).
    pub transition: Option<Transition>,
    /// The parallel result was kept (always `false` on the sequential
    /// rung — there is nothing speculative to keep).
    pub committed_parallel: bool,
    /// Why the parallel attempt was thrown away, if it was.
    pub abort: Option<AbortReason>,
    /// The first iteration satisfying the terminator, if reached.
    pub last_valid: Option<usize>,
    /// Bodies executed by the attempt that produced the final state.
    pub executed: u64,
}

/// [`governed_while_rec`] without tracing.
pub fn governed_while<T, TF, BF>(
    pool: &Pool,
    upper: usize,
    init: Vec<T>,
    governor: &mut Governor,
    term: TF,
    body: BF,
) -> (GovernedOutcome, Vec<T>)
where
    T: Copy + Send + Sync,
    TF: Fn(usize) -> bool + Sync,
    BF: Fn(usize, &mut SpecAccess<'_, T>) + Sync,
{
    governed_while_rec(pool, upper, init, governor, &NoopRecorder, term, body)
}

/// Executes one instance of `while !term(i) { body(i, A) }` on the rung
/// the [`Governor`] currently recommends:
///
/// * [`StrategyChoice::Speculative`] — full speculation with the PD test
///   ([`speculative_while_rec`]);
/// * [`StrategyChoice::Windowed`] — the same, but through the Section 8.2
///   sliding window at the governor's [`degraded_window`] (half the
///   configured span), bounding in-flight state;
/// * [`StrategyChoice::Distribution`] — the Section 4 run-twice scheme
///   ([`run_twice_speculative`]): terminator pass first, then a
///   known-range DOALL that cannot overshoot;
/// * [`StrategyChoice::Sequential`] — plain sequential execution on the
///   caller's thread; never fails.
///
/// The policy's watchdog [`Deadline`] is armed on the pool handle and its
/// undo-log budget is applied to the speculative array, so a wedged lane
/// or a write storm aborts the attempt instead of hanging or OOMing. The
/// attempt's outcome is fed back into the governor; a resulting
/// [`Transition`] is emitted as [`Event::Demote`]/[`Event::Repromote`]
/// and returned in the outcome.
///
/// The terminator is index-only (the paper's RI condition) — required by
/// the distribution rung, whose first pass evaluates it without the
/// array. Every rung produces the sequential-equivalent final state; the
/// returned vector is the array after the attempt (including any
/// sequential fallback).
///
/// [`degraded_window`]: Governor::degraded_window
/// [`Deadline`]: wlp_runtime::Deadline
pub fn governed_while_rec<T, TF, BF, R>(
    pool: &Pool,
    upper: usize,
    init: Vec<T>,
    governor: &mut Governor,
    rec: &R,
    term: TF,
    body: BF,
) -> (GovernedOutcome, Vec<T>)
where
    T: Copy + Send + Sync,
    TF: Fn(usize) -> bool + Sync,
    BF: Fn(usize, &mut SpecAccess<'_, T>) + Sync,
    R: Recorder,
{
    let policy = *governor.policy();
    let gpool = match policy.deadline {
        Some(d) => pool.with_deadline(d),
        None => pool.clone(),
    };
    let arr = {
        let a = SpeculativeArray::new(init);
        match policy.budget_writes {
            Some(w) => a.with_budget(w),
            None => a,
        }
    };
    let rung = governor.current();
    let (abort, committed_parallel, last_valid, executed) = match rung {
        StrategyChoice::Speculative => {
            let out = speculative_while_rec(&gpool, upper, &arr, rec, |i, _| term(i), &body);
            (
                out.abort,
                out.committed_parallel,
                out.last_valid,
                out.executed_parallel,
            )
        }
        StrategyChoice::Windowed => {
            let (out, _span) = speculative_while_windowed(
                &gpool,
                upper,
                governor.degraded_window(),
                &arr,
                |i, _| term(i),
                &body,
            );
            (
                out.abort,
                out.committed_parallel,
                out.last_valid,
                out.executed_parallel,
            )
        }
        StrategyChoice::Distribution => {
            let out = run_twice_speculative(&gpool, upper, &arr, &term, &body);
            (
                out.abort,
                out.committed_parallel,
                out.last_valid,
                out.executed_parallel,
            )
        }
        StrategyChoice::Sequential => {
            let mut last_valid = None;
            let mut executed = 0u64;
            for i in 0..upper {
                if term(i) {
                    last_valid = Some(i);
                    break;
                }
                let mut acc = arr.direct();
                body(i, &mut acc);
                executed += 1;
            }
            (None, false, last_valid, executed)
        }
    };

    let transition = match abort {
        Some(reason) => governor.record_failure(reason),
        None => governor.record_success(),
    };
    if R::ENABLED {
        if let Some(t) = transition {
            let ev = if t.is_demotion() {
                Event::Demote {
                    from: t.from,
                    to: t.to,
                }
            } else {
                Event::Repromote {
                    from: t.from,
                    to: t.to,
                }
            };
            rec.record(0, ev);
        }
    }
    let snapshot = arr.snapshot();
    (
        GovernedOutcome {
            strategy: rung,
            transition,
            committed_parallel,
            abort,
            last_valid,
            executed,
        },
        snapshot,
    )
}

/// The Section 8.1 stamping policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsStamping {
    /// Compiler/profile estimate of the trip count (`n̂`).
    pub estimated_iterations: f64,
    /// Confidence in the estimate, in `[0, 1]` (the paper's `x%`).
    pub confidence: f64,
}

impl StatsStamping {
    /// The first iteration whose writes must be time-stamped:
    /// `n′ = confidence · n̂` (iterations below it are presumed valid).
    pub fn start_stamping_at(&self) -> usize {
        assert!(
            (0.0..=1.0).contains(&self.confidence),
            "confidence must be in [0, 1]"
        );
        (self.confidence * self.estimated_iterations)
            .floor()
            .max(0.0) as usize
    }

    /// Whether iteration `i`'s writes need a time-stamp.
    pub fn should_stamp(&self, i: usize) -> bool {
        i >= self.start_stamping_at()
    }

    /// Expected fraction of stamped writes for a loop of `n` uniform-write
    /// iterations (the memory saving the policy buys).
    pub fn stamped_fraction(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let start = self.start_stamping_at().min(n);
        (n - start) as f64 / n as f64
    }
}

/// Who finished first in a hedged execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HedgeWinner {
    /// The sequential copy completed first.
    Sequential,
    /// The parallel copy completed first.
    Parallel,
}

/// Cooperative cancellation token polled by hedged executions.
#[derive(Debug, Default)]
pub struct CancelToken(AtomicBool);

impl CancelToken {
    /// Whether the other side already won.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }

    fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }
}

/// Runs `seq` and `par` concurrently on separate threads, each against its
/// own output copy; the first to finish cancels the other (which must poll
/// its [`CancelToken`] to stop early). Returns the winner — the caller
/// keeps that side's output. Both closures always return before this
/// function does, so partial loser state can be discarded safely.
pub fn hedged_execute<SF, PF>(seq: SF, par: PF) -> HedgeWinner
where
    SF: FnOnce(&CancelToken) + Send,
    PF: FnOnce(&CancelToken) + Send,
{
    const NONE: u8 = 0;
    const SEQ: u8 = 1;
    const PAR: u8 = 2;
    let winner = AtomicU8::new(NONE);
    let seq_token = CancelToken::default();
    let par_token = CancelToken::default();

    std::thread::scope(|s| {
        let w = &winner;
        let st = &seq_token;
        let pt = &par_token;
        s.spawn(move || {
            par(pt);
            if w.compare_exchange(NONE, PAR, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                st.cancel();
            }
        });
        seq(st);
        if winner
            .compare_exchange(NONE, SEQ, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            par_token.cancel();
        }
    });

    match winner.load(Ordering::Acquire) {
        SEQ => HedgeWinner::Sequential,
        PAR => HedgeWinner::Parallel,
        _ => unreachable!("someone must win"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamping_threshold_scales_with_confidence() {
        let s = StatsStamping {
            estimated_iterations: 1000.0,
            confidence: 0.9,
        };
        assert_eq!(s.start_stamping_at(), 900);
        assert!(!s.should_stamp(899));
        assert!(s.should_stamp(900));
        assert!((s.stamped_fraction(1000) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_confidence_stamps_everything() {
        let s = StatsStamping {
            estimated_iterations: 1000.0,
            confidence: 0.0,
        };
        assert_eq!(s.start_stamping_at(), 0);
        assert!((s.stamped_fraction(500) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loop_shorter_than_threshold_stamps_nothing() {
        let s = StatsStamping {
            estimated_iterations: 1000.0,
            confidence: 0.9,
        };
        assert_eq!(s.stamped_fraction(800), 0.0);
        assert_eq!(s.stamped_fraction(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn confidence_out_of_range_panics() {
        let s = StatsStamping {
            estimated_iterations: 10.0,
            confidence: 1.5,
        };
        let _ = s.start_stamping_at();
    }

    #[test]
    fn hedge_fast_parallel_wins() {
        let winner = hedged_execute(
            |t| {
                // slow sequential, polls cancellation
                for _ in 0..1000 {
                    if t.is_cancelled() {
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            },
            |_| {
                // instant parallel
            },
        );
        assert_eq!(winner, HedgeWinner::Parallel);
    }

    #[test]
    fn hedge_fast_sequential_wins() {
        let winner = hedged_execute(
            |_| {},
            |t| {
                for _ in 0..1000 {
                    if t.is_cancelled() {
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            },
        );
        assert_eq!(winner, HedgeWinner::Sequential);
    }

    #[test]
    fn hedge_always_produces_a_winner() {
        for _ in 0..10 {
            let w = hedged_execute(|_| {}, |_| {});
            assert!(matches!(w, HedgeWinner::Sequential | HedgeWinner::Parallel));
        }
    }

    use wlp_runtime::GovernorPolicy;

    /// The sequential truth for the governed-test loop: `v[i] = i + 1`
    /// for iterations below the exit.
    fn governed_truth(n: usize, exit: usize) -> Vec<i64> {
        (0..n as i64)
            .map(|i| if (i as usize) < exit { i + 1 } else { 0 })
            .collect()
    }

    #[test]
    fn clean_governed_loop_commits_on_the_top_rung() {
        let pool = Pool::new(4);
        let mut gov = Governor::new(GovernorPolicy::default());
        let (out, snap) = governed_while(
            &pool,
            256,
            vec![0i64; 256],
            &mut gov,
            |i| i == 200,
            |i, a| a.write(i, i as i64 + 1),
        );
        assert_eq!(out.strategy, StrategyChoice::Speculative);
        assert!(out.committed_parallel);
        assert_eq!(out.abort, None);
        assert_eq!(out.last_valid, Some(200));
        assert_eq!(snap, governed_truth(256, 200));
        assert_eq!(gov.current(), StrategyChoice::Speculative);
    }

    #[test]
    fn budget_storm_walks_the_ladder_to_a_terminal_sequential_rung() {
        let pool = Pool::new(4);
        // every parallel rung stamps one write per iteration, so a budget
        // of 4 writes trips on every attempt; the sequential rung writes
        // directly and never charges the budget
        let policy = GovernorPolicy {
            demote_threshold: 2,
            initial_backoff: 2,
            max_backoff: 8,
            budget_writes: Some(4),
            ..GovernorPolicy::default()
        };
        let mut gov = Governor::new(policy);
        let mut rungs_seen = std::collections::BTreeSet::new();
        for _ in 0..120 {
            let (out, snap) = governed_while(
                &pool,
                64,
                vec![0i64; 64],
                &mut gov,
                |i| i == 40,
                |i, a| a.write(i, i as i64 + 1),
            );
            rungs_seen.insert(out.strategy.name());
            assert_eq!(
                snap,
                governed_truth(64, 40),
                "rung {:?} must stay sequential-equivalent",
                out.strategy
            );
            if out.strategy != StrategyChoice::Sequential {
                assert_eq!(out.abort, Some(AbortReason::Budget));
            }
        }
        assert_eq!(gov.current(), StrategyChoice::Sequential);
        assert!(
            gov.is_terminal(),
            "backoff cap must stop re-promotion probes"
        );
        assert!(gov.failures().budget > 0);
        assert!(gov.demotions() > gov.repromotions());
        for rung in ["speculative", "windowed", "distribution", "sequential"] {
            assert!(rungs_seen.contains(rung), "never ran on {rung}");
        }
    }

    #[test]
    fn governed_transitions_are_traced_as_demote_and_repromote_events() {
        let pool = Pool::new(2);
        let policy = GovernorPolicy {
            demote_threshold: 1,
            initial_backoff: 1,
            max_backoff: 64,
            budget_writes: Some(2),
            ..GovernorPolicy::default()
        };
        let mut gov = Governor::new(policy);
        let rec = wlp_obs::BufferRecorder::new(pool.size());
        for _ in 0..12 {
            let (_, snap) = governed_while_rec(
                &pool,
                16,
                vec![0i64; 16],
                &mut gov,
                &rec,
                |i| i == 10,
                |i, a| a.write(i, i as i64 + 1),
            );
            assert_eq!(snap, governed_truth(16, 10));
        }
        let report = wlp_obs::ProfileReport::from_trace(&rec.finish());
        assert_eq!(report.demotions, gov.demotions());
        assert_eq!(report.repromotions, gov.repromotions());
        assert!(report.demotions >= 1, "budget storm must demote");
        assert!(
            report.repromotions >= 1,
            "sequential successes must earn a probe before the backoff cap"
        );
    }
}
