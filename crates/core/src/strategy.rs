//! Strategies for applying the techniques (Section 8).
//!
//! * [`StatsStamping`] — statistics-enhanced stamping (Section 8.1): when a
//!   compiler-supplied estimate `n̂` of the trip count exists, values
//!   written by iterations below `x%·n̂` (where `x%` is the confidence in
//!   the estimate) are very unlikely to need undoing, so their time-stamps
//!   can be skipped.
//! * [`hedged_execute`] — the 1-processor/(p−1)-processor solution
//!   (Section 8.3): one processor runs the loop sequentially while the rest
//!   run it in parallel on separate output copies; whichever finishes first
//!   wins and cancels the other.
//!
//! (Strip-mining and the sliding window — Sections 8.1/8.2 — are the
//! [`wlp_runtime::strip_mined`] and [`wlp_runtime::doall_windowed`]
//! schedulers, which the methods in this crate compose with.)

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

/// The Section 8.1 stamping policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsStamping {
    /// Compiler/profile estimate of the trip count (`n̂`).
    pub estimated_iterations: f64,
    /// Confidence in the estimate, in `[0, 1]` (the paper's `x%`).
    pub confidence: f64,
}

impl StatsStamping {
    /// The first iteration whose writes must be time-stamped:
    /// `n′ = confidence · n̂` (iterations below it are presumed valid).
    pub fn start_stamping_at(&self) -> usize {
        assert!(
            (0.0..=1.0).contains(&self.confidence),
            "confidence must be in [0, 1]"
        );
        (self.confidence * self.estimated_iterations)
            .floor()
            .max(0.0) as usize
    }

    /// Whether iteration `i`'s writes need a time-stamp.
    pub fn should_stamp(&self, i: usize) -> bool {
        i >= self.start_stamping_at()
    }

    /// Expected fraction of stamped writes for a loop of `n` uniform-write
    /// iterations (the memory saving the policy buys).
    pub fn stamped_fraction(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let start = self.start_stamping_at().min(n);
        (n - start) as f64 / n as f64
    }
}

/// Who finished first in a hedged execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HedgeWinner {
    /// The sequential copy completed first.
    Sequential,
    /// The parallel copy completed first.
    Parallel,
}

/// Cooperative cancellation token polled by hedged executions.
#[derive(Debug, Default)]
pub struct CancelToken(AtomicBool);

impl CancelToken {
    /// Whether the other side already won.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }

    fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }
}

/// Runs `seq` and `par` concurrently on separate threads, each against its
/// own output copy; the first to finish cancels the other (which must poll
/// its [`CancelToken`] to stop early). Returns the winner — the caller
/// keeps that side's output. Both closures always return before this
/// function does, so partial loser state can be discarded safely.
pub fn hedged_execute<SF, PF>(seq: SF, par: PF) -> HedgeWinner
where
    SF: FnOnce(&CancelToken) + Send,
    PF: FnOnce(&CancelToken) + Send,
{
    const NONE: u8 = 0;
    const SEQ: u8 = 1;
    const PAR: u8 = 2;
    let winner = AtomicU8::new(NONE);
    let seq_token = CancelToken::default();
    let par_token = CancelToken::default();

    std::thread::scope(|s| {
        let w = &winner;
        let st = &seq_token;
        let pt = &par_token;
        s.spawn(move || {
            par(pt);
            if w.compare_exchange(NONE, PAR, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                st.cancel();
            }
        });
        seq(st);
        if winner
            .compare_exchange(NONE, SEQ, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            par_token.cancel();
        }
    });

    match winner.load(Ordering::Acquire) {
        SEQ => HedgeWinner::Sequential,
        PAR => HedgeWinner::Parallel,
        _ => unreachable!("someone must win"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamping_threshold_scales_with_confidence() {
        let s = StatsStamping {
            estimated_iterations: 1000.0,
            confidence: 0.9,
        };
        assert_eq!(s.start_stamping_at(), 900);
        assert!(!s.should_stamp(899));
        assert!(s.should_stamp(900));
        assert!((s.stamped_fraction(1000) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_confidence_stamps_everything() {
        let s = StatsStamping {
            estimated_iterations: 1000.0,
            confidence: 0.0,
        };
        assert_eq!(s.start_stamping_at(), 0);
        assert!((s.stamped_fraction(500) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loop_shorter_than_threshold_stamps_nothing() {
        let s = StatsStamping {
            estimated_iterations: 1000.0,
            confidence: 0.9,
        };
        assert_eq!(s.stamped_fraction(800), 0.0);
        assert_eq!(s.stamped_fraction(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn confidence_out_of_range_panics() {
        let s = StatsStamping {
            estimated_iterations: 10.0,
            confidence: 1.5,
        };
        let _ = s.start_stamping_at();
    }

    #[test]
    fn hedge_fast_parallel_wins() {
        let winner = hedged_execute(
            |t| {
                // slow sequential, polls cancellation
                for _ in 0..1000 {
                    if t.is_cancelled() {
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            },
            |_| {
                // instant parallel
            },
        );
        assert_eq!(winner, HedgeWinner::Parallel);
    }

    #[test]
    fn hedge_fast_sequential_wins() {
        let winner = hedged_execute(
            |_| {},
            |t| {
                for _ in 0..1000 {
                    if t.is_cancelled() {
                        return;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            },
        );
        assert_eq!(winner, HedgeWinner::Sequential);
    }

    #[test]
    fn hedge_always_produces_a_winner() {
        for _ in 0..10 {
            let w = hedged_execute(|_| {}, |_| {});
            assert!(matches!(w, HedgeWinner::Sequential | HedgeWinner::Parallel));
        }
    }
}
