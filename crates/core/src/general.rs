//! General-recurrence methods (Section 3.3): parallelizing loops whose
//! dispatcher is an inherently sequential chain — the linked-list traversal
//! of Figure 1(b).
//!
//! None of these parallelize the dispatcher; they overlap the remainder:
//!
//! * [`general1`] — the `next()` operation in a critical section: the list
//!   is traversed once, cooperatively, at the cost of lock serialization.
//! * [`general2`] — static assignment: every processor privately traverses
//!   the whole list and executes iterations `≡ vpn (mod p)`.
//! * [`general3`] — dynamic self-scheduling without locks: a processor
//!   catches its private cursor up from its previous iteration to the one
//!   it just claimed.
//! * [`wu_lewis_distribution`] — the related-work baseline \[29\]: evaluate
//!   the dispatcher sequentially into an array, then DOALL the remainder.
//!
//! Each method comes in two flavours: the plain one for loops whose only
//! exit is dispatcher exhaustion (the RI null-pointer terminator — "no
//! backups or time-stamps", Table 2), and an `_until` flavour whose body
//! returns [`Step`] to model additional (possibly RV) exits with QUIT
//! semantics.

use crate::dispatch::Dispatcher;
use crate::recover::FirstFault;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;
use wlp_list::{DispatcherDiverged, ListArena, NodeId};
use wlp_obs::{AbortReason, Event, NoopRecorder, Recorder};
use wlp_runtime::{doall_dynamic, CancelFlag, Pool, Step, WorkerPanic};

/// Options for the General methods.
#[derive(Debug, Clone, Copy, Default)]
pub struct GeneralConfig {
    /// Cap on the number of iterations (the paper's `u`); `None` = run to
    /// the end of the list.
    pub upper: Option<usize>,
}

/// Result of a General-method execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneralOutcome {
    /// Bodies executed.
    pub iterations: usize,
    /// Smallest iteration that requested termination, if any.
    pub quit: Option<usize>,
    /// Total dispatcher increments across all processors (the traversal
    /// cost the three methods trade differently).
    pub hops: u64,
    /// First body panic contained during the run, if any.
    pub panic: Option<WorkerPanic>,
    /// The dispatcher guard tripped: the list is corrupted (cyclic) and
    /// the traversal was stopped within the step budget instead of
    /// hanging.
    pub diverged: Option<DispatcherDiverged>,
    /// Whether a sequential fallback re-execution produced this result
    /// (only set by [`general3_recovering_rec`]).
    pub recovered: bool,
}

impl GeneralOutcome {
    fn new(iterations: usize, quit: usize, hops: u64) -> Self {
        GeneralOutcome {
            iterations,
            quit: (quit != NO_QUIT).then_some(quit),
            hops,
            panic: None,
            diverged: None,
            recovered: false,
        }
    }
}

/// Shared first-divergence slot (smallest report wins is irrelevant — any
/// one proves corruption).
#[derive(Debug, Default)]
struct DivergedCell(parking_lot::Mutex<Option<DispatcherDiverged>>);

impl DivergedCell {
    fn new() -> Self {
        Self::default()
    }
    fn record(&self, d: DispatcherDiverged) {
        let mut slot = self.0.lock();
        if slot.is_none() {
            *slot = Some(d);
        }
    }
    fn take(&self) -> Option<DispatcherDiverged> {
        self.0.lock().take()
    }
}

const NO_QUIT: usize = usize::MAX;

/// General-1 with an explicit termination step. See [`general1`].
pub fn general1_until<T, B>(
    pool: &Pool,
    list: &ListArena<T>,
    cfg: GeneralConfig,
    body: B,
) -> GeneralOutcome
where
    T: Sync,
    B: Fn(usize, NodeId) -> Step + Sync,
{
    general1_until_rec(pool, list, cfg, &NoopRecorder, body)
}

/// [`general1_until`] with observability: the time blocked on the
/// dispatcher lock, the critical-section hold, the single `next()` hop per
/// claim, each body execution, QUIT broadcast and end-of-loop join are
/// reported to `rec`. With [`NoopRecorder`] — which is what
/// [`general1_until`] passes — every probe compiles away.
pub fn general1_until_rec<T, B, R>(
    pool: &Pool,
    list: &ListArena<T>,
    cfg: GeneralConfig,
    rec: &R,
    body: B,
) -> GeneralOutcome
where
    T: Sync,
    B: Fn(usize, NodeId) -> Step + Sync,
    R: Recorder,
{
    let upper = cfg.upper.unwrap_or(usize::MAX);
    let len = list.len();
    let cursor = parking_lot::Mutex::new((list.head(), 0usize));
    let quit = AtomicUsize::new(NO_QUIT);
    let iterations = AtomicU64::new(0);
    let hops = AtomicU64::new(0);
    let cancel = CancelFlag::new();
    let fault = FirstFault::new();
    let diverged = DivergedCell::new();

    let pool_out = pool.run_with(&cancel, |vpn| {
        loop {
            if cancel.is_cancelled() {
                break;
            }
            // lock(list); pt = tmp; tmp = next(tmp); unlock(list)
            let t0 = R::ENABLED.then(Instant::now);
            let mut c = cursor.lock();
            let t1 = R::ENABLED.then(Instant::now);
            let claimed = match c.0 {
                None => None,
                Some(node) => {
                    let i = c.1;
                    if i >= upper || i > quit.load(Ordering::Acquire) {
                        None
                    } else if i >= len {
                        // an acyclic list yields at most `len` live nodes;
                        // a live one at index `len` is a revisit — the
                        // chain is corrupted, stop every claimer
                        diverged.record(DispatcherDiverged {
                            steps: i as u64,
                            budget: len as u64,
                            cycle: true,
                        });
                        c.0 = None;
                        None
                    } else {
                        c.0 = list.next(node);
                        c.1 = i + 1;
                        hops.fetch_add(1, Ordering::Relaxed);
                        Some((i, node))
                    }
                }
            };
            drop(c);
            if R::ENABLED {
                let wait = match (t0, t1) {
                    (Some(a), Some(b)) => b.duration_since(a).as_nanos() as u64,
                    _ => 0,
                };
                let hold = t1.map_or(0, |t| t.elapsed().as_nanos() as u64);
                rec.record(vpn, Event::LockWait { dur: wait });
                rec.record(vpn, Event::LockAcquire { hold });
                if let Some((i, _)) = claimed {
                    // the hop happened inside the hold, so it costs 0 extra
                    rec.record(vpn, Event::NextHop { hops: 1, cost: 0 });
                    rec.record(
                        vpn,
                        Event::IterClaimed {
                            iter: i as u64,
                            cost: 0,
                        },
                    );
                }
            }
            let Some((i, node)) = claimed else { break };
            let b0 = R::ENABLED.then(Instant::now);
            let step = match catch_unwind(AssertUnwindSafe(|| body(i, node))) {
                Ok(s) => s,
                Err(p) => {
                    fault.record(vpn, i, p.as_ref());
                    cancel.cancel();
                    break;
                }
            };
            iterations.fetch_add(1, Ordering::Relaxed);
            if R::ENABLED {
                let cost = b0.map_or(0, |t| t.elapsed().as_nanos() as u64);
                rec.record(
                    vpn,
                    Event::IterExecuted {
                        iter: i as u64,
                        cost,
                    },
                );
            }
            if let Step::Quit = step {
                quit.fetch_min(i, Ordering::AcqRel);
                if R::ENABLED {
                    rec.record(vpn, Event::Quit { iter: i as u64 });
                }
            }
        }
        if R::ENABLED {
            rec.record(vpn, Event::Barrier { cost: 0 });
        }
    });

    let mut out = GeneralOutcome::new(
        iterations.load(Ordering::Relaxed) as usize,
        quit.load(Ordering::Acquire),
        hops.load(Ordering::Relaxed),
    );
    out.panic = fault.take().or_else(|| pool_out.into_first_panic());
    out.diverged = diverged.take();
    out
}

/// General-1: serialize accesses to `next()` with a lock; the remainder
/// runs outside the critical section. Iterations issue in lock order.
pub fn general1<T, B>(
    pool: &Pool,
    list: &ListArena<T>,
    cfg: GeneralConfig,
    body: B,
) -> GeneralOutcome
where
    T: Sync,
    B: Fn(usize, NodeId) + Sync,
{
    general1_until(pool, list, cfg, |i, n| {
        body(i, n);
        Step::Continue
    })
}

/// General-2 with an explicit termination step. See [`general2`].
pub fn general2_until<T, B>(
    pool: &Pool,
    list: &ListArena<T>,
    cfg: GeneralConfig,
    body: B,
) -> GeneralOutcome
where
    T: Sync,
    B: Fn(usize, NodeId) -> Step + Sync,
{
    let upper = cfg.upper.unwrap_or(usize::MAX);
    let p = pool.size();
    let quit = AtomicUsize::new(NO_QUIT);
    let iterations = AtomicU64::new(0);
    let hops = AtomicU64::new(0);
    let cancel = CancelFlag::new();
    let fault = FirstFault::new();
    let diverged = DivergedCell::new();

    let pool_out = pool.run_with(&cancel, |vpn| {
        // a private traversal of an acyclic list takes at most `len` hops,
        // so the guarded cursor's default budget has no false positives
        let mut cur = list.guarded_cursor();
        // `do j = 1, vpn: pt = next(pt)` — private catch-up to iteration vpn
        if vpn > 0 {
            if let Err(d) = cur.advance_by(vpn) {
                diverged.record(d);
                cancel.cancel();
                return;
            }
        }
        let mut i = vpn;
        while let Some(node) = cur.get() {
            if i >= upper || i > quit.load(Ordering::Acquire) || cancel.is_cancelled() {
                break;
            }
            match catch_unwind(AssertUnwindSafe(|| body(i, node))) {
                Ok(step) => {
                    iterations.fetch_add(1, Ordering::Relaxed);
                    if let Step::Quit = step {
                        quit.fetch_min(i, Ordering::AcqRel);
                    }
                }
                Err(pl) => {
                    fault.record(vpn, i, pl.as_ref());
                    cancel.cancel();
                    break;
                }
            }
            // `do j = 1, nproc: pt = next(pt)` — stride to the next assigned
            if let Err(d) = cur.advance_by(p) {
                diverged.record(d);
                cancel.cancel();
                break;
            }
            i += p;
        }
        hops.fetch_add(cur.hops(), Ordering::Relaxed);
    });

    let mut out = GeneralOutcome::new(
        iterations.load(Ordering::Relaxed) as usize,
        quit.load(Ordering::Acquire),
        hops.load(Ordering::Relaxed),
    );
    out.panic = fault.take().or_else(|| pool_out.into_first_panic());
    out.diverged = diverged.take();
    out
}

/// General-2: static cyclic assignment — processor `vpn` privately
/// traverses the entire list and executes iterations `vpn, vpn+p, …`. No
/// locks, no shared dispatch; `p × n` total hops.
pub fn general2<T, B>(
    pool: &Pool,
    list: &ListArena<T>,
    cfg: GeneralConfig,
    body: B,
) -> GeneralOutcome
where
    T: Sync,
    B: Fn(usize, NodeId) + Sync,
{
    general2_until(pool, list, cfg, |i, n| {
        body(i, n);
        Step::Continue
    })
}

/// General-3 with an explicit termination step. See [`general3`].
pub fn general3_until<T, B>(
    pool: &Pool,
    list: &ListArena<T>,
    cfg: GeneralConfig,
    body: B,
) -> GeneralOutcome
where
    T: Sync,
    B: Fn(usize, NodeId) -> Step + Sync,
{
    general3_until_rec(pool, list, cfg, &NoopRecorder, body)
}

/// [`general3_until`] with observability: each lock-free claim, private
/// cursor catch-up (the `next()` hops with their measured cost), body
/// execution, QUIT broadcast and end-of-loop join are reported to `rec`.
/// With [`NoopRecorder`] — which is what [`general3_until`] passes — every
/// probe compiles away.
pub fn general3_until_rec<T, B, R>(
    pool: &Pool,
    list: &ListArena<T>,
    cfg: GeneralConfig,
    rec: &R,
    body: B,
) -> GeneralOutcome
where
    T: Sync,
    B: Fn(usize, NodeId) -> Step + Sync,
    R: Recorder,
{
    let upper = cfg.upper.unwrap_or(usize::MAX);
    let len = list.len();
    let claim = AtomicUsize::new(0);
    let quit = AtomicUsize::new(NO_QUIT);
    let iterations = AtomicU64::new(0);
    let hops = AtomicU64::new(0);
    let cancel = CancelFlag::new();
    let fault = FirstFault::new();
    let diverged = DivergedCell::new();

    let pool_out = pool.run_with(&cancel, |vpn| {
        let mut cur = list.guarded_cursor();
        let mut prev = 0usize; // the iteration the cursor points at
        loop {
            if cancel.is_cancelled() {
                break;
            }
            let i = claim.fetch_add(1, Ordering::Relaxed);
            if i >= upper || i > quit.load(Ordering::Acquire) {
                break;
            }
            if R::ENABLED {
                rec.record(
                    vpn,
                    Event::IterClaimed {
                        iter: i as u64,
                        cost: 0,
                    },
                );
            }
            // `do j = 1, i − prev: pt = next(pt)` — private catch-up
            let h0 = R::ENABLED.then(Instant::now);
            if let Err(d) = cur.advance_by(i - prev) {
                diverged.record(d);
                cancel.cancel();
                break;
            }
            if R::ENABLED && i > prev {
                let cost = h0.map_or(0, |t| t.elapsed().as_nanos() as u64);
                rec.record(
                    vpn,
                    Event::NextHop {
                        hops: (i - prev) as u64,
                        cost,
                    },
                );
            }
            prev = i;
            let Some(node) = cur.get() else { break };
            if i >= len {
                // a live node at logical position ≥ len is a revisit: the
                // chain is corrupted even if Brent has not looped yet
                diverged.record(DispatcherDiverged {
                    steps: cur.hops(),
                    budget: len as u64 + 1,
                    cycle: true,
                });
                cancel.cancel();
                break;
            }
            let b0 = R::ENABLED.then(Instant::now);
            let step = match catch_unwind(AssertUnwindSafe(|| body(i, node))) {
                Ok(s) => s,
                Err(pl) => {
                    fault.record(vpn, i, pl.as_ref());
                    cancel.cancel();
                    break;
                }
            };
            iterations.fetch_add(1, Ordering::Relaxed);
            if R::ENABLED {
                let cost = b0.map_or(0, |t| t.elapsed().as_nanos() as u64);
                rec.record(
                    vpn,
                    Event::IterExecuted {
                        iter: i as u64,
                        cost,
                    },
                );
            }
            if let Step::Quit = step {
                quit.fetch_min(i, Ordering::AcqRel);
                if R::ENABLED {
                    rec.record(vpn, Event::Quit { iter: i as u64 });
                }
            }
        }
        hops.fetch_add(cur.hops(), Ordering::Relaxed);
        if R::ENABLED {
            rec.record(vpn, Event::Barrier { cost: 0 });
        }
    });

    let mut out = GeneralOutcome::new(
        iterations.load(Ordering::Relaxed) as usize,
        quit.load(Ordering::Acquire),
        hops.load(Ordering::Relaxed),
    );
    out.panic = fault.take().or_else(|| pool_out.into_first_panic());
    out.diverged = diverged.take();
    out
}

/// General-3: dynamic self-scheduling without locks — the paper's best
/// general-recurrence method (Table 2's SPICE row: 4.9× vs General-1's
/// 2.9× at p = 8).
pub fn general3<T, B>(
    pool: &Pool,
    list: &ListArena<T>,
    cfg: GeneralConfig,
    body: B,
) -> GeneralOutcome
where
    T: Sync,
    B: Fn(usize, NodeId) + Sync,
{
    general3_until(pool, list, cfg, |i, n| {
        body(i, n);
        Step::Continue
    })
}

/// The Wu & Lewis loop-distribution baseline \[29\]: the dispatcher is
/// evaluated sequentially into an array, then the remainder runs as a
/// DOALL over the stored values. Works for any [`Dispatcher`]; `max`
/// bounds the precomputation (strip length).
pub fn wu_lewis_distribution<D, B>(pool: &Pool, d: &D, max: usize, body: B) -> GeneralOutcome
where
    D: Dispatcher,
    B: Fn(usize, &D::Value) + Sync,
{
    let values = crate::dispatch::evaluate_sequential(d, max);
    let n = values.len();
    let iterations = AtomicU64::new(0);
    let out = doall_dynamic(pool, n, |i, _| {
        body(i, &values[i]);
        iterations.fetch_add(1, Ordering::Relaxed);
        Step::Continue
    });
    GeneralOutcome {
        iterations: iterations.load(Ordering::Relaxed) as usize,
        quit: None,
        hops: n as u64,
        panic: out.panic,
        diverged: None,
        recovered: false,
    }
}

/// Fault-tolerant General-3 (the Section 5 exception rule applied to the
/// list strategies): runs [`general3_until_rec`]; on a contained worker
/// panic, emits [`Event::SpecAbort`] with [`AbortReason::Exception`] and
/// re-executes the surviving loop *sequentially* on the caller's thread
/// over a guarded cursor. List bodies write each node's private output
/// slot, so re-running every iteration is idempotent — the "no backups or
/// time-stamps" rows of Table 2 need no checkpoint to restore.
///
/// A corrupted (cyclic) list is **not** recoverable by re-execution: the
/// divergence is reported as-is and the sequential pass is skipped.
pub fn general3_recovering_rec<T, B, R>(
    pool: &Pool,
    list: &ListArena<T>,
    cfg: GeneralConfig,
    rec: &R,
    body: B,
) -> GeneralOutcome
where
    T: Sync,
    B: Fn(usize, NodeId) -> Step + Sync,
    R: Recorder,
{
    let out = general3_until_rec(pool, list, cfg, rec, &body);
    let Some(panic) = out.panic else {
        return out;
    };
    if R::ENABLED {
        rec.record(
            panic.vpn,
            Event::SpecAbort {
                reason: AbortReason::Exception,
                discarded: out.iterations as u64,
            },
        );
    }
    // sequential fallback — guarded, so a concurrently observed corruption
    // still surfaces as `diverged` rather than a hang
    let upper = cfg.upper.unwrap_or(usize::MAX);
    let mut cur = list.guarded_cursor();
    let mut iterations = 0usize;
    let mut quit = None;
    let mut diverged = None;
    let mut i = 0usize;
    while let Some(node) = cur.get() {
        if i >= upper {
            break;
        }
        iterations += 1;
        if let Step::Quit = body(i, node) {
            quit = Some(i);
            break;
        }
        if let Err(d) = cur.advance() {
            diverged = Some(d);
            break;
        }
        i += 1;
    }
    GeneralOutcome {
        iterations,
        quit,
        hops: cur.hops(),
        panic: Some(panic),
        diverged,
        recovered: true,
    }
}

/// [`general3_recovering_rec`] without observability.
pub fn general3_recovering<T, B>(
    pool: &Pool,
    list: &ListArena<T>,
    cfg: GeneralConfig,
    body: B,
) -> GeneralOutcome
where
    T: Sync,
    B: Fn(usize, NodeId) -> Step + Sync,
{
    general3_recovering_rec(pool, list, cfg, &NoopRecorder, body)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // indexing by iteration number is the semantics under test
mod tests {
    use super::*;
    use crate::dispatch::ListDispatcher;
    use std::sync::atomic::AtomicU32;

    fn pool() -> Pool {
        Pool::new(4)
    }

    fn run_and_collect<F>(n: usize, f: F) -> (Vec<u32>, GeneralOutcome)
    where
        F: Fn(&Pool, &ListArena<usize>, &(dyn Fn(usize, NodeId) + Sync)) -> GeneralOutcome,
    {
        let list = ListArena::from_values_shuffled(0..n, 17);
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let out = f(&pool(), &list, &|_i, node| {
            hits[list[node]].fetch_add(1, Ordering::Relaxed);
        });
        (
            hits.iter().map(|h| h.load(Ordering::Relaxed)).collect(),
            out,
        )
    }

    #[test]
    fn general1_visits_every_node_once() {
        let (hits, out) =
            run_and_collect(500, |p, l, b| general1(p, l, GeneralConfig::default(), b));
        assert!(hits.iter().all(|&h| h == 1));
        assert_eq!(out.iterations, 500);
        assert_eq!(out.hops, 500, "cooperative traversal: list walked once");
    }

    #[test]
    fn general2_visits_every_node_once() {
        let (hits, out) =
            run_and_collect(500, |p, l, b| general2(p, l, GeneralConfig::default(), b));
        assert!(hits.iter().all(|&h| h == 1));
        assert_eq!(out.iterations, 500);
        // every processor traverses (almost) the whole list privately
        assert!(out.hops >= 500, "hops = {}", out.hops);
    }

    #[test]
    fn general3_visits_every_node_once() {
        let (hits, out) =
            run_and_collect(500, |p, l, b| general3(p, l, GeneralConfig::default(), b));
        assert!(hits.iter().all(|&h| h == 1));
        assert_eq!(out.iterations, 500);
        assert!(
            out.hops >= 500 && out.hops <= 4 * 500,
            "hops = {}",
            out.hops
        );
    }

    #[test]
    fn iteration_indices_follow_logical_order() {
        let list = ListArena::from_values_shuffled(0..100usize, 3);
        let seen: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(usize::MAX)).collect();
        general3(&pool(), &list, GeneralConfig::default(), |i, node| {
            seen[i].store(list[node], Ordering::Relaxed);
        });
        // iteration i must process the i-th node in LOGICAL order, which
        // holds value i (the list was built from 0..100 in order)
        for i in 0..100 {
            assert_eq!(seen[i].load(Ordering::Relaxed), i, "iteration {i}");
        }
    }

    #[test]
    fn upper_bound_caps_iterations() {
        let list = ListArena::from_values(0..100usize);
        let cfg = GeneralConfig { upper: Some(30) };
        for out in [
            general1(&pool(), &list, cfg, |_, _| {}),
            general2(&pool(), &list, cfg, |_, _| {}),
            general3(&pool(), &list, cfg, |_, _| {}),
        ] {
            assert_eq!(out.iterations, 30);
        }
    }

    #[test]
    fn until_variants_quit_early() {
        let list = ListArena::from_values(0..10_000usize);
        for out in [
            general1_until(&pool(), &list, GeneralConfig::default(), |i, _| {
                if i >= 100 {
                    Step::Quit
                } else {
                    Step::Continue
                }
            }),
            general2_until(&pool(), &list, GeneralConfig::default(), |i, _| {
                if i >= 100 {
                    Step::Quit
                } else {
                    Step::Continue
                }
            }),
            general3_until(&pool(), &list, GeneralConfig::default(), |i, _| {
                if i >= 100 {
                    Step::Quit
                } else {
                    Step::Continue
                }
            }),
        ] {
            let q = out.quit.expect("must quit");
            assert!((100..104 + 100).contains(&q), "quit at {q}");
            assert!(out.iterations < 10_000, "quit must curb execution");
        }
    }

    #[test]
    fn empty_list_is_a_no_op() {
        let list: ListArena<usize> = ListArena::new();
        for out in [
            general1(&pool(), &list, GeneralConfig::default(), |_, _| {}),
            general2(&pool(), &list, GeneralConfig::default(), |_, _| {}),
            general3(&pool(), &list, GeneralConfig::default(), |_, _| {}),
        ] {
            assert_eq!(out.iterations, 0);
            assert_eq!(out.quit, None);
        }
    }

    #[test]
    fn wu_lewis_baseline_matches() {
        let list = ListArena::from_values_shuffled(0..200usize, 5);
        let d = ListDispatcher::new(&list);
        let hits: Vec<AtomicU32> = (0..200).map(|_| AtomicU32::new(0)).collect();
        let out = wu_lewis_distribution(&pool(), &d, usize::MAX, |_i, node| {
            hits[list[*node]].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(out.iterations, 200);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(out.hops, 200);
    }

    #[test]
    fn recorded_general_runs_report_dispatcher_traffic() {
        use wlp_obs::{BufferRecorder, ProfileReport};
        let list = ListArena::from_values(0..200usize);

        let rec = BufferRecorder::new(4);
        let out = general3_until_rec(&pool(), &list, GeneralConfig::default(), &rec, |_, _| {
            Step::Continue
        });
        let report = ProfileReport::from_trace(&rec.finish());
        assert_eq!(report.executed, 200);
        assert_eq!(out.iterations, 200);
        assert!(report.claimed >= 200, "every body was claimed first");
        assert!(
            report.hops >= 199,
            "catch-up hops recorded: {}",
            report.hops
        );
        assert_eq!(report.barriers, 4, "one join event per worker");
        report.check_conservation().expect("laws hold");

        let rec = BufferRecorder::new(4);
        general1_until_rec(&pool(), &list, GeneralConfig::default(), &rec, |_, _| {
            Step::Continue
        });
        let report = ProfileReport::from_trace(&rec.finish());
        assert_eq!(report.executed, 200);
        assert_eq!(
            report.hops, 200,
            "cooperative traversal walks the list once"
        );
        report.check_conservation().expect("laws hold");
    }

    #[test]
    fn body_panic_is_contained_in_every_method() {
        let list = ListArena::from_values(0..500usize);
        let faulty = |i: usize, _n: NodeId| -> Step {
            if i == 123 {
                panic!("injected list fault");
            }
            Step::Continue
        };
        for out in [
            general1_until(&pool(), &list, GeneralConfig::default(), faulty),
            general2_until(&pool(), &list, GeneralConfig::default(), faulty),
            general3_until(&pool(), &list, GeneralConfig::default(), faulty),
        ] {
            let wp = out.panic.as_ref().expect("panic must be reported");
            assert_eq!(wp.iter, Some(123));
            assert_eq!(wp.message, "injected list fault");
            assert!(out.iterations < 500, "cancellation curbs execution");
            assert!(out.diverged.is_none());
        }
    }

    #[test]
    fn cyclic_list_diverges_instead_of_hanging() {
        let mut list = ListArena::from_values(0..200usize);
        let tail = list.tail().unwrap();
        let target = list.nth_from(list.head().unwrap(), 50).unwrap();
        list.corrupt_link(tail, target);
        for out in [
            general1(&pool(), &list, GeneralConfig::default(), |_, _| {}),
            general2(&pool(), &list, GeneralConfig::default(), |_, _| {}),
            general3(&pool(), &list, GeneralConfig::default(), |_, _| {}),
        ] {
            let d = out.diverged.expect("corruption must be detected");
            assert!(d.steps <= 4 * 201, "bounded traversal: {} hops", d.steps);
            assert!(out.panic.is_none());
        }
    }

    #[test]
    fn upper_bound_masks_a_cycle_beyond_it() {
        // the guard must not fire when the iteration cap stops the loop
        // before the corrupted region is ever reached
        let mut list = ListArena::from_values(0..200usize);
        let tail = list.tail().unwrap();
        list.corrupt_link(tail, list.head().unwrap());
        let cfg = GeneralConfig { upper: Some(100) };
        for out in [
            general1(&pool(), &list, cfg, |_, _| {}),
            general3(&pool(), &list, cfg, |_, _| {}),
        ] {
            assert_eq!(out.iterations, 100);
            assert!(out.diverged.is_none(), "cap reached first");
        }
    }

    #[test]
    fn general3_recovers_by_sequential_reexecution() {
        use std::sync::atomic::AtomicBool;
        use wlp_obs::{BufferRecorder, ProfileReport};
        let n = 300usize;
        let list = ListArena::from_values_shuffled(0..n, 11);
        let slots: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(usize::MAX)).collect();
        let armed = AtomicBool::new(true);
        let rec = BufferRecorder::new(4);
        let out =
            general3_recovering_rec(&pool(), &list, GeneralConfig::default(), &rec, |i, node| {
                if i == 150 && armed.swap(false, Ordering::SeqCst) {
                    panic!("transient fault");
                }
                slots[i].store(list[node], Ordering::Relaxed);
                Step::Continue
            });
        assert!(out.recovered);
        assert_eq!(out.panic.as_ref().unwrap().message, "transient fault");
        assert_eq!(out.iterations, n, "fallback covers the whole list");
        for i in 0..n {
            assert_eq!(slots[i].load(Ordering::Relaxed), i, "iteration {i}");
        }
        let report = ProfileReport::from_trace(&rec.finish());
        assert_eq!(report.spec_aborts, 1, "the recovery shows in the trace");
    }

    #[test]
    fn general3_recovering_passes_clean_runs_through() {
        let list = ListArena::from_values(0..100usize);
        let out = general3_recovering(&pool(), &list, GeneralConfig::default(), |_, _| {
            Step::Continue
        });
        assert!(!out.recovered);
        assert_eq!(out.iterations, 100);
    }

    #[test]
    fn methods_agree_with_sequential_sum() {
        // a reduction computed through each method must equal the
        // sequential traversal's
        let list = ListArena::from_values_shuffled((0..777u64).map(|x| x * x), 23);
        let expect: u64 = list.iter().map(|(_, &v)| v).sum();
        type Body<'a> = &'a (dyn Fn(usize, NodeId) + Sync);
        let sum_with = |f: &dyn Fn(Body<'_>) -> GeneralOutcome| {
            let total = AtomicU64::new(0);
            f(&|_i, node| {
                total.fetch_add(list[node], Ordering::Relaxed);
            });
            total.load(Ordering::Relaxed)
        };
        let cfg = GeneralConfig::default();
        assert_eq!(sum_with(&|b| general1(&pool(), &list, cfg, b)), expect);
        assert_eq!(sum_with(&|b| general2(&pool(), &list, cfg, b)), expect);
        assert_eq!(sum_with(&|b| general3(&pool(), &list, cfg, b)), expect);
    }
}
