//! Dispatcher abstractions.
//!
//! The dispatcher is the dominating recurrence of a WHILE loop (Figure 1 of
//! the paper): a pointer traversing a list, a loop counter, an associative
//! recurrence. Three concrete dispatchers cover the taxonomy's columns;
//! all of them also implement [`Dispatcher`], the sequential-evaluation
//! interface the Wu & Lewis distribution baseline consumes.

use wlp_list::{ListArena, NodeId};

/// Sequential dispatcher evaluation: the least common denominator every
/// dispatcher supports (and the only interface a *general* recurrence
/// offers).
pub trait Dispatcher {
    /// The dispatcher's value domain.
    type Value: Clone + Send + Sync;

    /// Value for iteration 0, or `None` if the loop runs zero iterations.
    fn initial(&self) -> Option<Self::Value>;

    /// Value for the iteration after the one holding `v`, or `None` when
    /// the recurrence is exhausted (e.g. a null pointer).
    fn next(&self, v: &Self::Value) -> Option<Self::Value>;
}

/// An induction `d(i) = c·i + b`: closed-form evaluable, the best case of
/// the taxonomy (Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InductionDispatcher {
    /// Stride.
    pub c: i64,
    /// Offset.
    pub b: i64,
}

impl InductionDispatcher {
    /// The closed form: the dispatcher value of iteration `i`, computable
    /// by every processor independently.
    #[inline]
    pub fn closed_form(&self, i: usize) -> i64 {
        self.c * i as i64 + self.b
    }

    /// Whether the value sequence is monotone (nonzero stride).
    pub fn is_monotonic(&self) -> bool {
        self.c != 0
    }
}

impl Dispatcher for InductionDispatcher {
    type Value = i64;

    fn initial(&self) -> Option<i64> {
        Some(self.b)
    }

    fn next(&self, v: &i64) -> Option<i64> {
        Some(v + self.c)
    }
}

/// An affine (associative) recurrence `x(i+1) = a·x(i) + b`: evaluable by
/// parallel prefix (Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineRecurrence {
    /// Multiplier.
    pub a: f64,
    /// Offset.
    pub b: f64,
    /// Seed `x(0)`.
    pub x0: f64,
}

impl AffineRecurrence {
    /// Evaluates terms `x(1..=n)` in parallel via prefix computation.
    pub fn terms_parallel(&self, pool: &wlp_runtime::Pool, n: usize) -> Vec<f64> {
        wlp_runtime::linear_recurrence_terms(pool, self.x0, self.a, self.b, n)
    }

    /// Evaluates terms `x(1..=n)` sequentially (the reference).
    pub fn terms_sequential(&self, n: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        let mut x = self.x0;
        for _ in 0..n {
            x = self.a * x + self.b;
            out.push(x);
        }
        out
    }
}

impl Dispatcher for AffineRecurrence {
    type Value = f64;

    fn initial(&self) -> Option<f64> {
        Some(self.x0)
    }

    fn next(&self, v: &f64) -> Option<f64> {
        Some(self.a * v + self.b)
    }
}

/// A general recurrence: a pointer traversing a linked list. Evaluation is
/// inherently sequential; General-1/2/3 (Section 3.3) overlap remainders
/// instead.
#[derive(Debug, Clone, Copy)]
pub struct ListDispatcher<'a, T> {
    list: &'a ListArena<T>,
}

impl<'a, T> ListDispatcher<'a, T> {
    /// Wraps a list as a dispatcher.
    pub fn new(list: &'a ListArena<T>) -> Self {
        ListDispatcher { list }
    }

    /// The underlying list.
    pub fn list(&self) -> &'a ListArena<T> {
        self.list
    }
}

impl<T: Sync> Dispatcher for ListDispatcher<'_, T> {
    type Value = NodeId;

    fn initial(&self) -> Option<NodeId> {
        self.list.head()
    }

    fn next(&self, v: &NodeId) -> Option<NodeId> {
        self.list.next(*v)
    }
}

/// Evaluates any dispatcher sequentially into a vector of at most `max`
/// terms — the first (sequential) loop of the Wu & Lewis distribution
/// scheme, and the reference against which closed forms are validated.
pub fn evaluate_sequential<D: Dispatcher>(d: &D, max: usize) -> Vec<D::Value> {
    let mut out = Vec::new();
    let mut cur = d.initial();
    while let Some(v) = cur {
        if out.len() >= max {
            break;
        }
        cur = d.next(&v);
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn induction_closed_form_matches_iteration() {
        let d = InductionDispatcher { c: 3, b: -2 };
        let seq = evaluate_sequential(&d, 10);
        for (i, v) in seq.iter().enumerate() {
            assert_eq!(*v, d.closed_form(i));
        }
        assert!(d.is_monotonic());
        assert!(!InductionDispatcher { c: 0, b: 5 }.is_monotonic());
    }

    #[test]
    fn affine_parallel_terms_match_sequential() {
        let r = AffineRecurrence {
            a: 0.99,
            b: 2.0,
            x0: 1.0,
        };
        let pool = wlp_runtime::Pool::new(4);
        let par = r.terms_parallel(&pool, 200);
        let seq = r.terms_sequential(200);
        for (i, (p, s)) in par.iter().zip(&seq).enumerate() {
            assert!((p - s).abs() < 1e-9, "term {i}: {p} vs {s}");
        }
    }

    #[test]
    fn list_dispatcher_walks_the_list() {
        let list = ListArena::from_values_shuffled(0..50, 9);
        let d = ListDispatcher::new(&list);
        let ids = evaluate_sequential(&d, usize::MAX);
        assert_eq!(ids.len(), 50);
        let vals: Vec<i32> = ids.iter().map(|&id| list[id]).collect();
        assert_eq!(vals, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn evaluate_sequential_respects_max() {
        let d = InductionDispatcher { c: 1, b: 0 };
        assert_eq!(evaluate_sequential(&d, 3), vec![0, 1, 2]);
    }

    #[test]
    fn empty_list_dispatcher() {
        let list: ListArena<u8> = ListArena::new();
        let d = ListDispatcher::new(&list);
        assert!(d.initial().is_none());
        assert!(evaluate_sequential(&d, 10).is_empty());
    }
}
