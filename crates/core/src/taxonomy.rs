//! The WHILE-loop taxonomy (Table 1 of the paper).
//!
//! The method to apply — and whether undo machinery is needed — depends
//! only on the *class* of the dispatcher and of the terminator:
//!
//! ```text
//!                         Dispatcher
//! Terminator   Monotonic     Not-monotonic   Associative     General
//!              induction     induction       recurrence      recurrence
//!              Ov.  Par.     Ov.  Par.       Ov.  Par.       Ov.  Par.
//!   RI         NO   YES      YES  YES        NO   YES-PP     NO   NO
//!   RV         YES  YES      YES  YES        YES  YES-PP     YES  NO
//! ```
//!
//! ("Par." refers to the *dispatcher's* potential for parallel evaluation;
//! a general recurrence's remainder can still be overlapped with
//! General-1/2/3, but the dispatcher itself is evaluated sequentially.)

/// The class of a WHILE loop's dominating recurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DispatcherClass {
    /// An induction (`d(i) = c·i + b`) whose value sequence is monotone and
    /// whose RI terminator is a threshold on it (e.g. a DO loop bound), so
    /// iterations past the exit can recognize themselves.
    MonotonicInduction,
    /// An induction with no monotonicity guarantee relative to the
    /// terminator (e.g. the test is on `f(i)` for arbitrary `f`).
    Induction,
    /// An associative recurrence (`x(i) = a·x(i−k) + b` and friends),
    /// evaluable by parallel prefix.
    Associative,
    /// A general recurrence (pointer chase, arbitrary update): inherently
    /// sequential evaluation.
    General,
}

/// The class of a WHILE loop's termination condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TerminatorClass {
    /// Remainder-invariant: depends only on the dispatcher and values
    /// computed before the loop.
    RemainderInvariant,
    /// Remainder-variant: depends on values the loop body computes.
    RemainderVariant,
}

/// How the dispatcher itself can be evaluated in parallel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Parallelism {
    /// Fully parallel via the closed form (all iterations start at once).
    Full,
    /// Parallel up to a prefix computation: `O(n/p + log p)`.
    ParallelPrefix,
    /// Sequential: the loop is sped up only by overlapping remainders
    /// (General-1/2/3).
    Sequential,
}

/// One cell of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaxonomyCell {
    /// Can a parallel execution run iterations the sequential loop would
    /// not have (requiring undo machinery)?
    pub can_overshoot: bool,
    /// Dispatcher evaluation parallelism.
    pub parallelism: Parallelism,
}

/// Classifies a WHILE loop per Table 1.
pub fn classify(d: DispatcherClass, t: TerminatorClass) -> TaxonomyCell {
    use DispatcherClass::*;
    use TerminatorClass::*;
    let parallelism = match d {
        MonotonicInduction | Induction => Parallelism::Full,
        Associative => Parallelism::ParallelPrefix,
        General => Parallelism::Sequential,
    };
    let can_overshoot = match (d, t) {
        // a monotone dispatcher with a threshold RI terminator: iterations
        // past the exit see the condition themselves
        (MonotonicInduction, RemainderInvariant) => false,
        (Induction, RemainderInvariant) => true,
        // RI on an associative/general dispatcher: the exit is strongly
        // connected to the recurrence, evaluated in order
        (Associative, RemainderInvariant) => false,
        (General, RemainderInvariant) => false,
        // RV always overshoots under parallel execution
        (_, RemainderVariant) => true,
    };
    TaxonomyCell {
        can_overshoot,
        parallelism,
    }
}

/// All eight cells of Table 1, row-major (RI row then RV row), for the
/// bench harness to print.
pub fn table1() -> Vec<(DispatcherClass, TerminatorClass, TaxonomyCell)> {
    use DispatcherClass::*;
    use TerminatorClass::*;
    let mut out = Vec::with_capacity(8);
    for t in [RemainderInvariant, RemainderVariant] {
        for d in [MonotonicInduction, Induction, Associative, General] {
            out.push((d, t, classify(d, t)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use DispatcherClass::*;
    use TerminatorClass::*;

    #[test]
    fn matches_paper_table1_ri_row() {
        assert_eq!(
            classify(MonotonicInduction, RemainderInvariant),
            TaxonomyCell {
                can_overshoot: false,
                parallelism: Parallelism::Full
            }
        );
        assert_eq!(
            classify(Induction, RemainderInvariant),
            TaxonomyCell {
                can_overshoot: true,
                parallelism: Parallelism::Full
            }
        );
        assert_eq!(
            classify(Associative, RemainderInvariant),
            TaxonomyCell {
                can_overshoot: false,
                parallelism: Parallelism::ParallelPrefix
            }
        );
        assert_eq!(
            classify(General, RemainderInvariant),
            TaxonomyCell {
                can_overshoot: false,
                parallelism: Parallelism::Sequential
            }
        );
    }

    #[test]
    fn matches_paper_table1_rv_row() {
        for d in [MonotonicInduction, Induction, Associative, General] {
            assert!(
                classify(d, RemainderVariant).can_overshoot,
                "every RV cell overshoots ({d:?})"
            );
        }
        assert_eq!(
            classify(Associative, RemainderVariant).parallelism,
            Parallelism::ParallelPrefix
        );
        assert_eq!(
            classify(General, RemainderVariant).parallelism,
            Parallelism::Sequential
        );
    }

    #[test]
    fn table1_has_eight_cells() {
        let t = table1();
        assert_eq!(t.len(), 8);
        assert_eq!(t.iter().filter(|(_, _, c)| c.can_overshoot).count(), 5);
    }
}
