//! The associative-dispatcher method (Section 3.2).
//!
//! The loop is distributed into (1) a loop evaluating the dispatcher terms
//! — transformed into a parallel prefix computation — and (2) the remainder
//! as a DOALL over the precomputed terms (Figure 3 of the paper).

use crate::dispatch::AffineRecurrence;
use crate::induction::InductionOutcome;
use std::sync::atomic::{AtomicU64, Ordering};
use wlp_runtime::{doall_dynamic, Pool, Step};

/// Parallelizes `while (term) { body; x = a·x + b }` where the dispatcher
/// `x` is the affine recurrence `rec`: terms `x(0..upper)` are evaluated by
/// parallel prefix, then the remainder runs as a DOALL with the terminator
/// test (`term(i, x_i)`) inlined; the smallest quitting iteration is `LI`.
///
/// `upper` is the strip/upper bound on precomputed terms — the paper notes
/// that with an RV terminator the first loop may compute superfluous terms,
/// and recommends strip-mining to bound that; callers can wrap this
/// function per strip.
pub fn prefix_while<TF, BF>(
    pool: &Pool,
    rec: AffineRecurrence,
    upper: usize,
    term: TF,
    body: BF,
) -> InductionOutcome
where
    TF: Fn(usize, f64) -> bool + Sync,
    BF: Fn(usize, f64) + Sync,
{
    // terms[i] is the dispatcher value of iteration i: x(0) = x0 for i = 0.
    let mut terms = Vec::with_capacity(upper);
    if upper > 0 {
        terms.push(rec.x0);
        terms.extend(rec.terms_parallel(pool, upper - 1));
    }
    let executed = AtomicU64::new(0);
    let out = doall_dynamic(pool, upper, |i, _| {
        let x = terms[i];
        if term(i, x) {
            Step::Quit
        } else {
            body(i, x);
            executed.fetch_add(1, Ordering::Relaxed);
            Step::Continue
        }
    });
    InductionOutcome {
        last_valid: out.quit,
        executed: executed.load(Ordering::Relaxed),
        max_started: out.max_started,
        panic: out.panic,
    }
}

/// Sequential reference for [`prefix_while`]: returns `(last_valid,
/// executed, dispatcher values consumed)`.
pub fn prefix_while_sequential<TF, BF>(
    rec: AffineRecurrence,
    upper: usize,
    term: TF,
    mut body: BF,
) -> (Option<usize>, u64)
where
    TF: Fn(usize, f64) -> bool,
    BF: FnMut(usize, f64),
{
    let mut x = rec.x0;
    for i in 0..upper {
        if term(i, x) {
            return (Some(i), i as u64);
        }
        body(i, x);
        x = rec.a * x + rec.b;
    }
    (None, upper as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::atomic::AtomicCell;

    fn rec() -> AffineRecurrence {
        // slowly growing: x(i+1) = 1.01·x(i) + 0.5, x0 = 1
        AffineRecurrence {
            a: 1.01,
            b: 0.5,
            x0: 1.0,
        }
    }

    #[test]
    fn matches_sequential_exit_point() {
        // RI terminator: a threshold on the (monotone) dispatcher value
        let pool = Pool::new(4);
        let threshold = 50.0;
        let (seq_li, _) = prefix_while_sequential(rec(), 10_000, |_, x| x >= threshold, |_, _| {});
        let par = prefix_while(&pool, rec(), 10_000, |_, x| x >= threshold, |_, _| {});
        assert_eq!(par.last_valid, seq_li);
        assert!(seq_li.is_some(), "test must actually exit");
    }

    #[test]
    fn bodies_receive_correct_dispatcher_values() {
        let pool = Pool::new(4);
        let n = 500;
        let got: Vec<AtomicCell<f64>> = (0..n).map(|_| AtomicCell::new(f64::NAN)).collect();
        prefix_while(&pool, rec(), n, |_, _| false, |i, x| got[i].store(x));
        let seq = {
            let mut v = vec![rec().x0];
            v.extend(rec().terms_sequential(n - 1));
            v
        };
        for i in 0..n {
            let g = got[i].load();
            assert!(
                (g - seq[i]).abs() < 1e-9 * seq[i].abs().max(1.0),
                "iter {i}: {g} vs {}",
                seq[i]
            );
        }
    }

    #[test]
    fn executes_exactly_the_valid_iterations() {
        let pool = Pool::new(4);
        let par = prefix_while(&pool, rec(), 10_000, |i, _| i >= 250, |_, _| {});
        assert_eq!(par.last_valid, Some(250));
        assert_eq!(par.executed, 250);
    }

    #[test]
    fn empty_range() {
        let pool = Pool::new(2);
        let par = prefix_while(&pool, rec(), 0, |_, _| false, |_, _| {});
        assert_eq!(par.executed, 0);
        assert_eq!(par.last_valid, None);
    }

    #[test]
    fn no_exit_runs_full_range() {
        let pool = Pool::new(4);
        let par = prefix_while(&pool, rec(), 300, |_, _| false, |_, _| {});
        assert_eq!(par.executed, 300);
        assert_eq!(par.last_valid, None);
    }
}
