//! Fault recovery: the paper's Section 5 exception rule as a reusable
//! combinator.
//!
//! "If an exception occurs during the speculative parallel execution …
//! the loop is treated like an invalid parallel execution: the values of
//! the altered variables are restored and the loop is re-executed
//! sequentially." In this codebase a worker "exception" is a contained
//! panic ([`WorkerPanic`], caught at an iteration boundary by the
//! `wlp-runtime` constructs and broadcast via their `CancelFlag`), the
//! "altered variables" live in a [`VersionedArray`] checkpoint, and the
//! recovery is observable: a restore emits [`Event::UndoRestore`] and
//! [`Event::SpecAbort`] carrying the *actual cause* — a contained panic
//! ([`AbortReason::Exception`]), a watchdog deadline expiry
//! ([`AbortReason::Timeout`], additionally announced by
//! [`Event::TimeoutAbort`]), or a caller-supplied reason such as an
//! exhausted undo-log budget — so profile reports attribute fallbacks
//! correctly instead of lumping everything under "exception".

use crate::undo::VersionedArray;
use std::time::Instant;
use wlp_obs::{AbortReason, Event, Recorder};
use wlp_runtime::{
    payload_message, DoacrossOutcome, DoallOutcome, StripOutcome, WorkerPanic, WorkerTimeout,
};

/// Shared first-panic slot for constructs that catch per-iteration (the
/// pool-level catch only sees panics that escape iteration bodies, which
/// carry no iteration number).
#[derive(Debug, Default)]
pub(crate) struct FirstFault(parking_lot::Mutex<Option<WorkerPanic>>);

impl FirstFault {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record(&self, vpn: usize, iter: usize, payload: &(dyn std::any::Any + Send)) {
        let mut slot = self.0.lock();
        if slot.is_none() {
            *slot = Some(WorkerPanic {
                vpn,
                iter: Some(iter),
                message: payload_message(payload),
            });
        }
    }

    pub(crate) fn take(&self) -> Option<WorkerPanic> {
        self.0.lock().take()
    }
}

/// What a parallel attempt reports into [`run_with_recovery`]: the fault
/// (if any) and how many bodies the attempt ran (the volume a recovery
/// discards).
#[derive(Debug, Clone)]
pub struct ParallelAttempt {
    /// First contained worker panic, if any.
    pub panic: Option<WorkerPanic>,
    /// Watchdog verdict, if the attempt overran a region deadline.
    pub timeout: Option<WorkerTimeout>,
    /// Caller-attributed abort cause, when the layer above already knows
    /// *why* the attempt is invalid (e.g. [`AbortReason::Budget`] from an
    /// exhausted undo-log budget). Takes precedence over the inference
    /// from `timeout`/`panic`.
    pub abort: Option<AbortReason>,
    /// Bodies executed during the attempt.
    pub executed: u64,
    /// The attempt's QUIT bound, if one was set.
    pub quit: Option<usize>,
}

impl From<DoallOutcome> for ParallelAttempt {
    fn from(out: DoallOutcome) -> Self {
        ParallelAttempt {
            panic: out.panic,
            timeout: out.timeout,
            abort: None,
            executed: out.executed,
            quit: out.quit,
        }
    }
}

impl From<DoacrossOutcome> for ParallelAttempt {
    fn from(out: DoacrossOutcome) -> Self {
        ParallelAttempt {
            panic: out.panic,
            timeout: out.timeout,
            abort: None,
            executed: out.executed,
            quit: None,
        }
    }
}

impl From<StripOutcome> for ParallelAttempt {
    fn from(out: StripOutcome) -> Self {
        ParallelAttempt {
            executed: out.outcome.executed,
            quit: out.outcome.quit,
            panic: out.outcome.panic,
            timeout: out.outcome.timeout,
            abort: None,
        }
    }
}

impl ParallelAttempt {
    /// Why this attempt must be thrown away, if it must: the explicit
    /// caller attribution first, then a watchdog expiry, then a contained
    /// panic. `None` means the attempt is keepable.
    pub fn failure_reason(&self) -> Option<AbortReason> {
        self.abort.or(if self.timeout.is_some() {
            Some(AbortReason::Timeout)
        } else if self.panic.is_some() {
            Some(AbortReason::Exception)
        } else {
            None
        })
    }
}

/// How a recoverable execution ended.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// The parallel attempt was invalid, the checkpoint was restored and
    /// the sequential fallback produced the final state.
    pub recovered: bool,
    /// *Why* the sequential fallback ran (`None` when it didn't): panic,
    /// watchdog timeout, budget trip, or dependence — whatever the
    /// attempt reported.
    pub reason: Option<AbortReason>,
    /// The contained panic that triggered recovery, if any.
    pub panic: Option<WorkerPanic>,
    /// The watchdog verdict that triggered recovery, if any.
    pub timeout: Option<WorkerTimeout>,
    /// Elements restored from the checkpoint before re-execution.
    pub restored_elems: usize,
    /// The attempt's QUIT bound (parallel if clean, else whatever the
    /// sequential fallback reports through shared state).
    pub quit: Option<usize>,
    /// Bodies executed by the *kept* execution.
    pub executed: u64,
}

/// Runs `parallel` against the checkpointed array; if the attempt is
/// invalid — contained worker panic, watchdog deadline expiry, or an
/// explicit caller-attributed cause such as a budget trip — restores the
/// checkpoint, emits the `UndoRestore` + `SpecAbort` event pair carrying
/// the *actual* [`AbortReason`] (plus [`Event::TimeoutAbort`] for
/// expiries), and runs `sequential` — the Section 5 exception rule.
/// Clean (or merely cancelled) attempts are kept as-is.
///
/// `sequential` re-executes the loop from the restored checkpoint on the
/// caller's thread and returns the number of bodies it ran. A panic
/// *there* is a real exception and propagates.
pub fn run_with_recovery<T, R, P, S>(
    arr: &VersionedArray<T>,
    rec: &R,
    parallel: P,
    sequential: S,
) -> RecoveryOutcome
where
    T: Copy,
    R: Recorder,
    P: FnOnce() -> ParallelAttempt,
    S: FnOnce() -> u64,
{
    let attempt = parallel();
    let Some(reason) = attempt.failure_reason() else {
        return RecoveryOutcome {
            recovered: false,
            reason: None,
            panic: None,
            timeout: None,
            restored_elems: 0,
            quit: attempt.quit,
            executed: attempt.executed,
        };
    };

    // attribute events to the lane that caused the fallback
    let vpn = attempt
        .timeout
        .as_ref()
        .map(|t| t.vpn)
        .or(attempt.panic.as_ref().map(|p| p.vpn))
        .unwrap_or(0);
    if R::ENABLED {
        if let Some(to) = &attempt.timeout {
            rec.record(
                vpn,
                Event::TimeoutAbort {
                    vpn: to.vpn as u64,
                    elapsed: to.elapsed.as_nanos() as u64,
                },
            );
        }
    }
    let u0 = R::ENABLED.then(Instant::now);
    let restored = arr.restore_all();
    if R::ENABLED {
        let cost = u0.map_or(0, |t| t.elapsed().as_nanos() as u64);
        rec.record(
            vpn,
            Event::UndoRestore {
                elems: restored as u64,
                cost,
            },
        );
        rec.record(
            vpn,
            Event::SpecAbort {
                reason,
                discarded: attempt.executed,
            },
        );
    }
    let executed = sequential();
    RecoveryOutcome {
        recovered: true,
        reason: Some(reason),
        panic: attempt.panic,
        timeout: attempt.timeout,
        restored_elems: restored,
        quit: None,
        executed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use wlp_obs::{BufferRecorder, NoopRecorder, ProfileReport};
    use wlp_runtime::{doall_dynamic, Pool, Step};

    #[test]
    fn clean_attempt_is_kept_without_restore() {
        let arr = VersionedArray::new(vec![0i64; 16]);
        let out = run_with_recovery(
            &arr,
            &NoopRecorder,
            || {
                doall_dynamic(&Pool::new(2), 16, |i, _| {
                    arr.write(i, 1, i);
                    Step::Continue
                })
                .into()
            },
            || unreachable!("clean runs never fall back"),
        );
        assert!(!out.recovered);
        assert_eq!(out.executed, 16);
        assert_eq!(arr.snapshot(), vec![1; 16]);
    }

    #[test]
    fn panic_restores_checkpoint_and_reexecutes() {
        let arr = VersionedArray::new(vec![-1i64; 64]);
        let rec = BufferRecorder::new(4);
        let seq_ran = AtomicU64::new(0);
        let out = run_with_recovery(
            &arr,
            &rec,
            || {
                doall_dynamic(&Pool::new(4), 64, |i, _| {
                    if i == 20 {
                        panic!("injected");
                    }
                    arr.write(i, i as i64, i);
                    Step::Continue
                })
                .into()
            },
            || {
                for i in 0..64 {
                    arr.write_direct(i, i as i64);
                    seq_ran.fetch_add(1, Ordering::Relaxed);
                }
                seq_ran.load(Ordering::Relaxed)
            },
        );
        assert!(out.recovered);
        assert_eq!(out.panic.as_ref().unwrap().message, "injected");
        assert_eq!(out.executed, 64);
        assert_eq!(
            arr.snapshot(),
            (0..64i64).collect::<Vec<_>>(),
            "sequential fallback owns the final state"
        );
        let report = ProfileReport::from_trace(&rec.finish());
        assert_eq!(report.spec_aborts, 1, "the abort is visible in the trace");
    }
}
