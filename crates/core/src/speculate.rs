//! Speculative parallel execution with run-time dependence testing
//! (Section 5).
//!
//! When the access pattern of a shared array cannot be analyzed statically,
//! the WHILE loop is *speculatively* executed as a DOALL; every access is
//! routed through a [`SpeculativeArray`], which checkpoints the data
//! (Section 4), time-stamps writes, and marks the PD-test shadow arrays.
//! After the loop:
//!
//! 1. exceptions (panics) during the parallel run ⇒ restore and re-execute
//!    sequentially — the paper's "treat them like an invalid parallel
//!    execution";
//! 2. the PD analysis (with marks of overshot iterations ignored via their
//!    time-stamps) decides whether cross-iteration dependences occurred:
//!    failure ⇒ restore and re-execute sequentially;
//! 3. success ⇒ undo the writes of overshot iterations and keep the
//!    parallel result.
//!
//! [`speculative_while_privatized`] additionally gives each processor a
//! private (copy-in) view of the array, records a time-stamped write trail,
//! and copies out last values on success — the mechanism for arrays whose
//! memory-related dependences privatization removes.

use crate::undo::VersionedArray;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;
use wlp_obs::{AbortReason, Event, NoopRecorder, Recorder};
use wlp_pd::{copy_out_last_values, IterMarker, PdVerdict, Shadow, TrailSet};
use wlp_runtime::{doall_dynamic, doall_dynamic_chunked, ChunkPolicy, Pool, Step};

/// An undo-log budget for one speculative attempt: a cap on the number of
/// stamped (restorable) writes. Exceeding it aborts the speculation with
/// [`AbortReason::Budget`] — the bounded-resources answer to a runaway
/// writer that would otherwise grow trails and overlays without limit
/// (the memory-budget concern of Section 8.2, applied to the undo log).
#[derive(Debug)]
struct SpecBudget {
    limit: u64,
    stamped: AtomicU64,
}

impl SpecBudget {
    /// Adds `n` stamped writes to the charge counter in one RMW. Access
    /// handles buffer their charges locally and flush on drop, so the
    /// shared counter is touched once per *iteration*, not once per
    /// *write* — the budget check itself stays a relaxed load.
    #[inline]
    fn charge_many(&self, n: u64) {
        self.stamped.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    fn exceeded(&self) -> bool {
        self.stamped.load(Ordering::Relaxed) > self.limit
    }
}

/// A shared array under speculation: checkpointed data, write stamps and
/// PD shadow marks, all maintained per access.
#[derive(Debug)]
pub struct SpeculativeArray<T: Copy> {
    versioned: VersionedArray<T>,
    shadow: Shadow,
    budget: Option<SpecBudget>,
}

impl<T: Copy + Send + Sync> SpeculativeArray<T> {
    /// Checkpoints `init` and sets up unmarked shadows.
    pub fn new(init: Vec<T>) -> Self {
        let shadow = Shadow::new(init.len());
        SpeculativeArray {
            versioned: VersionedArray::new(init),
            shadow,
            budget: None,
        }
    }

    /// Caps the stamped (restorable) writes any one speculative attempt
    /// may make on this array. When the cap is exceeded the attempt
    /// aborts with [`AbortReason::Budget`] and falls back to sequential
    /// execution instead of growing speculation state without bound.
    pub fn with_budget(mut self, writes: u64) -> Self {
        self.budget = Some(SpecBudget {
            limit: writes,
            stamped: AtomicU64::new(0),
        });
        self
    }

    /// Whether the undo-log budget (if any) has been exceeded.
    #[inline]
    pub fn budget_exceeded(&self) -> bool {
        self.budget.as_ref().is_some_and(|b| b.exceeded())
    }

    /// Stamped writes charged against the budget so far (0 without one).
    pub fn stamped_writes(&self) -> u64 {
        self.budget
            .as_ref()
            .map_or(0, |b| b.stamped.load(Ordering::Relaxed))
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.versioned.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.versioned.is_empty()
    }

    /// The per-iteration access handle used inside speculative bodies.
    fn access(&self, iter: usize) -> SpecAccess<'_, T> {
        SpecAccess {
            arr: self,
            marker: Some(self.shadow.iteration(iter)),
            iter,
            pending_charges: 0,
        }
    }

    /// A pass-through handle for sequential (re-)execution: no marking, no
    /// stamps.
    pub(crate) fn direct(&self) -> SpecAccess<'_, T> {
        SpecAccess {
            arr: self,
            marker: None,
            iter: 0,
            pending_charges: 0,
        }
    }

    /// Copies the live values out.
    pub fn snapshot(&self) -> Vec<T> {
        self.versioned.snapshot()
    }

    /// Accepts the current values and clears speculation state (including
    /// the budget's charge counter), readying the array for another loop.
    pub fn commit(&mut self) {
        self.versioned.commit();
        self.shadow.reset();
        if let Some(b) = &self.budget {
            b.stamped.store(0, Ordering::Relaxed);
        }
    }
}

/// Per-iteration view of a [`SpeculativeArray`]: reads and writes are
/// recorded when speculating, and pass through untouched during sequential
/// re-execution.
///
/// Budget charges are buffered on the handle and flushed to the shared
/// counter when it drops (one `fetch_add` per iteration). The budget trip
/// is checked at iteration claim time, so per-iteration charge
/// granularity is exactly the granularity the abort path observes.
#[derive(Debug)]
pub struct SpecAccess<'a, T: Copy> {
    arr: &'a SpeculativeArray<T>,
    marker: Option<IterMarker<'a>>,
    iter: usize,
    pending_charges: u64,
}

impl<T: Copy + Send + Sync> SpecAccess<'_, T> {
    /// Reads element `e`.
    pub fn read(&mut self, e: usize) -> T {
        if let Some(m) = &mut self.marker {
            m.mark_read(e);
        }
        self.arr.versioned.read(e)
    }

    /// Writes `v` to element `e`.
    pub fn write(&mut self, e: usize, v: T) {
        match &mut self.marker {
            Some(m) => {
                m.mark_write(e);
                self.pending_charges += 1;
                self.arr.versioned.write(e, v, self.iter);
            }
            None => self.arr.versioned.write_direct(e, v),
        }
    }

    /// The iteration this handle belongs to.
    pub fn iteration(&self) -> usize {
        self.iter
    }
}

impl<T: Copy> Drop for SpecAccess<'_, T> {
    fn drop(&mut self) {
        if self.pending_charges != 0 {
            if let Some(b) = &self.arr.budget {
                b.charge_many(self.pending_charges);
            }
        }
    }
}

/// What a speculative execution did.
#[derive(Debug, Clone)]
pub struct SpecOutcome {
    /// PD verdict of the parallel attempt (`None` if an exception aborted
    /// it before analysis).
    pub verdict: Option<PdVerdict>,
    /// The parallel result was kept.
    pub committed_parallel: bool,
    /// The loop was re-executed sequentially (failed test or exception).
    pub reexecuted_sequentially: bool,
    /// A body panicked during the parallel attempt.
    pub exception: bool,
    /// *Why* the parallel attempt was thrown away, when it was:
    /// a cross-iteration dependence, a contained panic, a watchdog
    /// deadline expiry, or an exhausted undo-log budget. `None` when the
    /// parallel result was kept.
    pub abort: Option<AbortReason>,
    /// The last valid iteration (the first satisfying the terminator).
    pub last_valid: Option<usize>,
    /// Bodies executed during the parallel attempt.
    pub executed_parallel: u64,
    /// Elements restored while undoing overshot iterations.
    pub undone: usize,
}

/// Speculatively executes `while !term(i, A) { body(i, A) }` as a DOALL
/// over `0..upper`, testing at run time that the iterations were
/// independent. On test failure or exception, the array is restored and
/// the loop re-executed sequentially — the paper's complete recipe.
///
/// A panic during sequential (re-)execution is a *real* exception and
/// propagates.
///
/// ```
/// use wlp_core::speculate::{speculative_while, SpeculativeArray};
/// use wlp_runtime::Pool;
///
/// // A[idx[i]] *= 2 through a run-time subscript array: unanalyzable
/// // statically, provably independent at run time (idx is a permutation)
/// let idx = [3usize, 1, 4, 0, 2];
/// let arr = SpeculativeArray::new(vec![1i64; 5]);
/// let out = speculative_while(&Pool::new(2), 5, &arr,
///     |_i, _a| false,
///     |i, a| { let v = a.read(idx[i]); a.write(idx[i], v * 2); });
/// assert!(out.committed_parallel);
/// assert_eq!(arr.snapshot(), vec![2; 5]);
/// ```
pub fn speculative_while<T, TF, BF>(
    pool: &Pool,
    upper: usize,
    arr: &SpeculativeArray<T>,
    term: TF,
    body: BF,
) -> SpecOutcome
where
    T: Copy + Send + Sync,
    TF: Fn(usize, &mut SpecAccess<'_, T>) -> bool + Sync,
    BF: Fn(usize, &mut SpecAccess<'_, T>) + Sync,
{
    speculative_while_rec(pool, upper, arr, &NoopRecorder, term, body)
}

/// [`speculative_while`] with a self-scheduling [`ChunkPolicy`]: the
/// underlying DOALL claims chunks of iterations instead of one at a time,
/// trading shared-counter traffic for a wider in-flight span. Under an RV
/// terminator the extra span means more overshoot to undo on commit —
/// the chunk size is the knob the paper's `T_a` analysis prices.
pub fn speculative_while_chunked<T, TF, BF>(
    pool: &Pool,
    upper: usize,
    policy: ChunkPolicy,
    arr: &SpeculativeArray<T>,
    term: TF,
    body: BF,
) -> SpecOutcome
where
    T: Copy + Send + Sync,
    TF: Fn(usize, &mut SpecAccess<'_, T>) -> bool + Sync,
    BF: Fn(usize, &mut SpecAccess<'_, T>) + Sync,
{
    speculative_while_chunked_rec(pool, upper, policy, arr, &NoopRecorder, term, body)
}

/// [`speculative_while`] with observability: the checkpoint volume
/// (`Backup`), each claim, terminator-only evaluation, executed body and
/// QUIT, the PD analysis (`PdAnalyze`, via
/// [`Shadow::analyze_rec`](wlp_pd::Shadow::analyze_rec)), every restore
/// (`UndoRestore`) and the final `SpecCommit`/`SpecAbort` verdict are
/// reported to `rec`. Sequential re-execution after an abort is *not*
/// recorded as busy time: it happens on the calling thread and shows up
/// as idle in the profile, exactly like the paper's serial fallback.
/// With [`NoopRecorder`] — which is what [`speculative_while`] passes —
/// every probe compiles away.
pub fn speculative_while_rec<T, TF, BF, R>(
    pool: &Pool,
    upper: usize,
    arr: &SpeculativeArray<T>,
    rec: &R,
    term: TF,
    body: BF,
) -> SpecOutcome
where
    T: Copy + Send + Sync,
    TF: Fn(usize, &mut SpecAccess<'_, T>) -> bool + Sync,
    BF: Fn(usize, &mut SpecAccess<'_, T>) + Sync,
    R: Recorder,
{
    speculative_while_chunked_rec(pool, upper, ChunkPolicy::One, arr, rec, term, body)
}

/// [`speculative_while_chunked`] with observability — the fully general
/// driver the other `speculative_while*` entry points delegate to.
#[allow(clippy::too_many_arguments)] // the superset driver: pool, range, policy, data, probe, loop
pub fn speculative_while_chunked_rec<T, TF, BF, R>(
    pool: &Pool,
    upper: usize,
    policy: ChunkPolicy,
    arr: &SpeculativeArray<T>,
    rec: &R,
    term: TF,
    body: BF,
) -> SpecOutcome
where
    T: Copy + Send + Sync,
    TF: Fn(usize, &mut SpecAccess<'_, T>) -> bool + Sync,
    BF: Fn(usize, &mut SpecAccess<'_, T>) + Sync,
    R: Recorder,
{
    if R::ENABLED {
        // the checkpoint copy happened when the array was built; charge
        // its volume here so the report sees the backup side of Tb
        rec.record(
            0,
            Event::Backup {
                elems: arr.len() as u64,
                cost: 0,
            },
        );
    }
    let exception = AtomicBool::new(false);
    let executed = AtomicU64::new(0);

    let out = doall_dynamic_chunked(pool, upper, policy, |i, vpn| {
        if arr.budget_exceeded() {
            // Stop issuing; the budget-abort path below rolls everything
            // back. No events: this is not a terminator hit.
            return Step::Quit;
        }
        if R::ENABLED {
            rec.record(
                vpn,
                Event::IterClaimed {
                    iter: i as u64,
                    cost: 0,
                },
            );
        }
        let mut acc = arr.access(i);
        let t0 = R::ENABLED.then(Instant::now);
        let step = catch_unwind(AssertUnwindSafe(|| {
            if term(i, &mut acc) {
                Step::Quit
            } else {
                body(i, &mut acc);
                executed.fetch_add(1, Ordering::Relaxed);
                Step::Continue
            }
        }));
        match step {
            Ok(Step::Quit) => {
                if R::ENABLED {
                    let cost = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    rec.record(
                        vpn,
                        Event::TermTest {
                            iter: i as u64,
                            cost,
                        },
                    );
                    rec.record(vpn, Event::Quit { iter: i as u64 });
                }
                Step::Quit
            }
            Ok(s) => {
                if R::ENABLED {
                    let cost = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    rec.record(
                        vpn,
                        Event::IterExecuted {
                            iter: i as u64,
                            cost,
                        },
                    );
                }
                s
            }
            Err(_) => {
                exception.store(true, Ordering::Release);
                if R::ENABLED {
                    rec.record(vpn, Event::Quit { iter: i as u64 });
                }
                Step::Quit
            }
        }
    });

    // the runtime-level catch is the backstop: a panic that escapes the
    // per-body catch (e.g. inside a probe) still aborts the speculation
    let had_exception = exception.load(Ordering::Acquire) || out.panic.is_some();
    let last_valid = out.quit;

    // A watchdog expiry, a contained panic, or an exhausted budget all
    // invalidate the parallel attempt the same way — restore the
    // checkpoint, re-execute sequentially — but are *attributed*
    // differently, in that precedence order (a timed-out region may also
    // carry panics from its drain; the timeout caused them to surface).
    let invalid = if let Some(to) = &out.timeout {
        if R::ENABLED {
            rec.record(
                to.vpn,
                Event::TimeoutAbort {
                    vpn: to.vpn as u64,
                    elapsed: to.elapsed.as_nanos() as u64,
                },
            );
        }
        Some(AbortReason::Timeout)
    } else if had_exception {
        Some(AbortReason::Exception)
    } else if arr.budget_exceeded() {
        Some(AbortReason::Budget)
    } else {
        None
    };
    if let Some(reason) = invalid {
        let u0 = R::ENABLED.then(Instant::now);
        arr.versioned.restore_all();
        if R::ENABLED {
            let cost = u0.map_or(0, |t| t.elapsed().as_nanos() as u64);
            rec.record(
                0,
                Event::UndoRestore {
                    elems: arr.len() as u64,
                    cost,
                },
            );
            rec.record(
                0,
                Event::SpecAbort {
                    reason,
                    discarded: executed.load(Ordering::Relaxed),
                },
            );
        }
        let lv = run_sequential(upper, arr, &term, &body);
        return SpecOutcome {
            verdict: None,
            committed_parallel: false,
            reexecuted_sequentially: true,
            exception: had_exception,
            abort: Some(reason),
            last_valid: lv,
            executed_parallel: executed.load(Ordering::Relaxed),
            undone: 0,
        };
    }

    let verdict = arr.shadow.analyze_rec(pool, last_valid, 16, rec);
    if !verdict.doall {
        // cross-iteration dependences: the parallel result is invalid
        let u0 = R::ENABLED.then(Instant::now);
        arr.versioned.restore_all();
        if R::ENABLED {
            let cost = u0.map_or(0, |t| t.elapsed().as_nanos() as u64);
            rec.record(
                0,
                Event::UndoRestore {
                    elems: arr.len() as u64,
                    cost,
                },
            );
            rec.record(
                0,
                Event::SpecAbort {
                    reason: AbortReason::Dependence,
                    discarded: executed.load(Ordering::Relaxed),
                },
            );
        }
        let lv = run_sequential(upper, arr, &term, &body);
        return SpecOutcome {
            verdict: Some(verdict),
            committed_parallel: false,
            reexecuted_sequentially: true,
            exception: false,
            abort: Some(AbortReason::Dependence),
            last_valid: lv,
            executed_parallel: executed.load(Ordering::Relaxed),
            undone: 0,
        };
    }

    // valid: undo only the overshot iterations
    let u0 = R::ENABLED.then(Instant::now);
    let undone = match last_valid {
        Some(li) => arr.versioned.undo_past(li),
        None => 0,
    };
    if R::ENABLED {
        let cost = u0.map_or(0, |t| t.elapsed().as_nanos() as u64);
        if undone > 0 {
            rec.record(
                0,
                Event::UndoRestore {
                    elems: undone as u64,
                    cost,
                },
            );
        }
        // every iteration below the exit executed a body, so the kept
        // share is exactly `last_valid` (or everything, with no exit)
        let exec = executed.load(Ordering::Relaxed);
        let committed = last_valid.map_or(exec, |li| (li as u64).min(exec));
        rec.record(
            0,
            Event::SpecCommit {
                committed,
                undone: exec - committed,
            },
        );
    }
    SpecOutcome {
        verdict: Some(verdict),
        committed_parallel: true,
        reexecuted_sequentially: false,
        exception: false,
        abort: None,
        last_valid,
        executed_parallel: executed.load(Ordering::Relaxed),
        undone,
    }
}

/// [`speculative_while`] under the Section 8.2 sliding window: the span of
/// in-flight iterations never exceeds `window`, so at most `window ×`
/// (writes per iteration) time-stamps are live and RV overshoot is bounded
/// by the window — the resource-controlled variant of speculation. Returns
/// the outcome and the maximum span observed.
pub fn speculative_while_windowed<T, TF, BF>(
    pool: &Pool,
    upper: usize,
    window: usize,
    arr: &SpeculativeArray<T>,
    term: TF,
    body: BF,
) -> (SpecOutcome, usize)
where
    T: Copy + Send + Sync,
    TF: Fn(usize, &mut SpecAccess<'_, T>) -> bool + Sync,
    BF: Fn(usize, &mut SpecAccess<'_, T>) + Sync,
{
    let exception = AtomicBool::new(false);
    let executed = AtomicU64::new(0);

    let (out, span) = wlp_runtime::doall_windowed(pool, upper, window, |i, _vpn| {
        if arr.budget_exceeded() {
            return Step::Quit;
        }
        let mut acc = arr.access(i);
        let step = catch_unwind(AssertUnwindSafe(|| {
            if term(i, &mut acc) {
                Step::Quit
            } else {
                body(i, &mut acc);
                executed.fetch_add(1, Ordering::Relaxed);
                Step::Continue
            }
        }));
        match step {
            Ok(s) => s,
            Err(_) => {
                exception.store(true, Ordering::Release);
                Step::Quit
            }
        }
    });

    let had_exception = exception.load(Ordering::Acquire) || out.panic.is_some();
    let last_valid = out.quit;

    let invalid = if out.timeout.is_some() {
        Some(AbortReason::Timeout)
    } else if had_exception {
        Some(AbortReason::Exception)
    } else if arr.budget_exceeded() {
        Some(AbortReason::Budget)
    } else {
        None
    };
    if let Some(reason) = invalid {
        arr.versioned.restore_all();
        let lv = run_sequential(upper, arr, &term, &body);
        return (
            SpecOutcome {
                verdict: None,
                committed_parallel: false,
                reexecuted_sequentially: true,
                exception: had_exception,
                abort: Some(reason),
                last_valid: lv,
                executed_parallel: executed.load(Ordering::Relaxed),
                undone: 0,
            },
            span,
        );
    }

    let verdict = arr.shadow.analyze(pool, last_valid, 16);
    if !verdict.doall {
        arr.versioned.restore_all();
        let lv = run_sequential(upper, arr, &term, &body);
        return (
            SpecOutcome {
                verdict: Some(verdict),
                committed_parallel: false,
                reexecuted_sequentially: true,
                exception: false,
                abort: Some(AbortReason::Dependence),
                last_valid: lv,
                executed_parallel: executed.load(Ordering::Relaxed),
                undone: 0,
            },
            span,
        );
    }

    let undone = match last_valid {
        Some(li) => arr.versioned.undo_past(li),
        None => 0,
    };
    (
        SpecOutcome {
            verdict: Some(verdict),
            committed_parallel: true,
            reexecuted_sequentially: false,
            exception: false,
            abort: None,
            last_valid,
            executed_parallel: executed.load(Ordering::Relaxed),
            undone,
        },
        span,
    )
}

/// Per-iteration view of *several* arrays under test at once. Real loops
/// usually reference more than one statically-unanalyzable array; the PD
/// test "is applied to each shared variable referenced during the loop
/// whose accesses cannot be analyzed at compile-time" — each array gets
/// its own shadow, and the loop is valid only if every one passes.
#[derive(Debug)]
pub struct GroupAccess<'a, T: Copy> {
    arrays: &'a [SpeculativeArray<T>],
    markers: Vec<Option<IterMarker<'a>>>,
    iter: usize,
    pending_charges: Vec<u64>,
}

impl<T: Copy + Send + Sync> GroupAccess<'_, T> {
    /// Reads element `e` of array `a`.
    pub fn read(&mut self, a: usize, e: usize) -> T {
        if let Some(m) = &mut self.markers[a] {
            m.mark_read(e);
        }
        self.arrays[a].versioned.read(e)
    }

    /// Writes `v` to element `e` of array `a`.
    pub fn write(&mut self, a: usize, e: usize, v: T) {
        match &mut self.markers[a] {
            Some(m) => {
                m.mark_write(e);
                self.pending_charges[a] += 1;
                self.arrays[a].versioned.write(e, v, self.iter);
            }
            None => self.arrays[a].versioned.write_direct(e, v),
        }
    }

    /// The iteration this handle belongs to.
    pub fn iteration(&self) -> usize {
        self.iter
    }
}

impl<T: Copy> Drop for GroupAccess<'_, T> {
    fn drop(&mut self) {
        for (a, &n) in self.pending_charges.iter().enumerate() {
            if n != 0 {
                if let Some(b) = &self.arrays[a].budget {
                    b.charge_many(n);
                }
            }
        }
    }
}

/// Speculative execution over a *group* of arrays under test: like
/// [`speculative_while`], but every array is shadowed independently and
/// the parallel result is kept only when all of them validate.
pub fn speculative_while_group<T, TF, BF>(
    pool: &Pool,
    upper: usize,
    arrays: &[SpeculativeArray<T>],
    term: TF,
    body: BF,
) -> SpecOutcome
where
    T: Copy + Send + Sync,
    TF: Fn(usize, &mut GroupAccess<'_, T>) -> bool + Sync,
    BF: Fn(usize, &mut GroupAccess<'_, T>) + Sync,
{
    let exception = AtomicBool::new(false);
    let executed = AtomicU64::new(0);

    let out = doall_dynamic(pool, upper, |i, _vpn| {
        if arrays.iter().any(|a| a.budget_exceeded()) {
            return Step::Quit;
        }
        let mut acc = GroupAccess {
            arrays,
            markers: arrays.iter().map(|a| Some(a.shadow.iteration(i))).collect(),
            iter: i,
            pending_charges: vec![0; arrays.len()],
        };
        let step = catch_unwind(AssertUnwindSafe(|| {
            if term(i, &mut acc) {
                Step::Quit
            } else {
                body(i, &mut acc);
                executed.fetch_add(1, Ordering::Relaxed);
                Step::Continue
            }
        }));
        match step {
            Ok(s) => s,
            Err(_) => {
                exception.store(true, Ordering::Release);
                Step::Quit
            }
        }
    });

    let had_exception = exception.load(Ordering::Acquire) || out.panic.is_some();
    let last_valid = out.quit;
    let early_abort = if out.timeout.is_some() {
        Some(AbortReason::Timeout)
    } else if had_exception {
        Some(AbortReason::Exception)
    } else if arrays.iter().any(|a| a.budget_exceeded()) {
        Some(AbortReason::Budget)
    } else {
        None
    };

    // every array must pass; merge the verdicts
    let verdict = early_abort.is_none().then(|| {
        let mut merged = PdVerdict {
            doall: true,
            privatized_doall: true,
            conflicts: Vec::new(),
        };
        for a in arrays {
            let v = a.shadow.analyze(pool, last_valid, 16);
            merged.doall &= v.doall;
            merged.privatized_doall &= v.privatized_doall;
            merged.conflicts.extend(v.conflicts);
        }
        merged
    });

    let valid = verdict.as_ref().is_some_and(|v| v.doall);
    if !valid {
        for a in arrays {
            a.versioned.restore_all();
        }
        let mut lv = None;
        for i in 0..upper {
            let mut acc = GroupAccess {
                arrays,
                markers: arrays.iter().map(|_| None).collect(),
                iter: i,
                pending_charges: vec![0; arrays.len()],
            };
            if term(i, &mut acc) {
                lv = Some(i);
                break;
            }
            body(i, &mut acc);
        }
        return SpecOutcome {
            verdict,
            committed_parallel: false,
            reexecuted_sequentially: true,
            exception: had_exception,
            abort: early_abort.or(Some(AbortReason::Dependence)),
            last_valid: lv,
            executed_parallel: executed.load(Ordering::Relaxed),
            undone: 0,
        };
    }

    let undone = match last_valid {
        Some(li) => arrays.iter().map(|a| a.versioned.undo_past(li)).sum(),
        None => 0,
    };
    SpecOutcome {
        verdict,
        committed_parallel: true,
        reexecuted_sequentially: false,
        exception: false,
        abort: None,
        last_valid,
        executed_parallel: executed.load(Ordering::Relaxed),
        undone,
    }
}

/// The Section 5 two-pass scheme: "First, the loop is run in parallel to
/// determine the number of iterations … and once the number of iterations
/// is known the resulting DO loop can be speculatively parallelized using
/// the PD test" — avoiding time-stamped shadow marks entirely, because a
/// known-range DO loop cannot overshoot.
///
/// Pass 1 evaluates the terminator only (it must be cheap/independent —
/// an RI condition); pass 2 speculates over the exact valid range with
/// the ordinary PD test. Dependence failures still fall back to
/// sequential re-execution.
pub fn run_twice_speculative<T, TF, BF>(
    pool: &Pool,
    upper: usize,
    arr: &SpeculativeArray<T>,
    term: TF,
    body: BF,
) -> SpecOutcome
where
    T: Copy + Send + Sync,
    TF: Fn(usize) -> bool + Sync,
    BF: Fn(usize, &mut SpecAccess<'_, T>) + Sync,
{
    // pass 1: terminator-only DOALL with QUIT — finds the trip count
    let pass1 = doall_dynamic(pool, upper, |i, _| {
        if term(i) {
            Step::Quit
        } else {
            Step::Continue
        }
    });
    // a panic in the terminator-only pass happens outside speculation (no
    // writes to protect) — it is a real exception and resumes
    if let Some(wp) = pass1.panic {
        wp.resume();
    }
    if pass1.timeout.is_some() {
        // the trip count was never determined: nothing speculative to
        // salvage, run the whole loop sequentially
        let mut lv = None;
        for i in 0..upper {
            if term(i) {
                lv = Some(i);
                break;
            }
            let mut acc = arr.direct();
            body(i, &mut acc);
        }
        return SpecOutcome {
            verdict: None,
            committed_parallel: false,
            reexecuted_sequentially: true,
            exception: false,
            abort: Some(AbortReason::Timeout),
            last_valid: lv,
            executed_parallel: 0,
            undone: 0,
        };
    }
    let end = pass1.quit.unwrap_or(upper);

    // pass 2: a known-range speculative DOALL (no overshoot possible)
    let mut out = speculative_while(pool, end, arr, |_, _| false, body);
    out.last_valid = pass1.quit;
    out
}

/// Outcome of a strip-mined speculative execution.
#[derive(Debug, Clone)]
pub struct StripSpecOutcome {
    /// Per strip: `true` if the strip's parallel execution was kept,
    /// `false` if it was re-executed sequentially.
    pub strips_committed: Vec<bool>,
    /// The first iteration satisfying the terminator, if reached.
    pub last_valid: Option<usize>,
    /// Bodies executed across all parallel attempts (including discarded
    /// and overshot ones).
    pub executed_parallel: u64,
}

/// Strip-mined speculation (Section 5's recommendation when the
/// termination condition depends on variables with unknown dependences —
/// guarding against mis-determined exits and runaway loops, and bounding
/// the state a failed test discards):
///
/// each strip of `strip` iterations runs speculatively; after the strip,
/// the PD test is applied *to that strip's accesses*. A failing strip is
/// rolled back and re-executed sequentially; a passing strip is committed
/// (becoming the checkpoint for the next). Execution stops after the
/// strip containing the exit.
///
/// # Panics
/// Panics if `strip == 0`.
pub fn speculative_while_strips<T, TF, BF>(
    pool: &Pool,
    upper: usize,
    strip: usize,
    arr: &mut SpeculativeArray<T>,
    term: TF,
    body: BF,
) -> StripSpecOutcome
where
    T: Copy + Send + Sync,
    TF: Fn(usize, &mut SpecAccess<'_, T>) -> bool + Sync,
    BF: Fn(usize, &mut SpecAccess<'_, T>) + Sync,
{
    assert!(strip > 0, "strip size must be positive");
    let mut strips_committed = Vec::new();
    let mut executed_parallel = 0u64;
    let mut lo = 0usize;
    while lo < upper {
        let hi = (lo + strip).min(upper);
        let out = speculative_while(
            pool,
            hi - lo,
            &*arr, // strip-local iteration numbering keeps stamps small
            |local, a| term(lo + local, a),
            |local, a| body(lo + local, a),
        );
        executed_parallel += out.executed_parallel;
        strips_committed.push(out.committed_parallel);
        let strip_exit = out.last_valid;
        // commit the strip (sequential re-execution already wrote direct)
        arr.commit();
        if let Some(local) = strip_exit {
            return StripSpecOutcome {
                strips_committed,
                last_valid: Some(lo + local),
                executed_parallel,
            };
        }
        lo = hi;
    }
    StripSpecOutcome {
        strips_committed,
        last_valid: None,
        executed_parallel,
    }
}

fn run_sequential<T, TF, BF>(
    upper: usize,
    arr: &SpeculativeArray<T>,
    term: &TF,
    body: &BF,
) -> Option<usize>
where
    T: Copy + Send + Sync,
    TF: Fn(usize, &mut SpecAccess<'_, T>) -> bool + Sync,
    BF: Fn(usize, &mut SpecAccess<'_, T>) + Sync,
{
    for i in 0..upper {
        let mut acc = arr.direct();
        if term(i, &mut acc) {
            return Some(i);
        }
        body(i, &mut acc);
    }
    None
}

/// A per-iteration view of a *privatized* speculative array: writes go to
/// a processor-private overlay (recorded in a time-stamped trail), reads
/// prefer the overlay and fall back to the original values (copy-in).
#[derive(Debug)]
pub struct PrivAccess<'a, T: Copy> {
    original: &'a VersionedArray<T>,
    overlay: &'a mut HashMap<usize, T>,
    marker: IterMarker<'a>,
    trail: &'a TrailSet<T>,
    budget: Option<&'a SpecBudget>,
    vpn: usize,
    iter: usize,
    pending_charges: u64,
}

impl<T: Copy + Send + Sync> PrivAccess<'_, T> {
    /// Reads element `e` (private value if this processor wrote one).
    pub fn read(&mut self, e: usize) -> T {
        self.marker.mark_read(e);
        match self.overlay.get(&e) {
            Some(&v) => v,
            None => self.original.read(e),
        }
    }

    /// Writes `v` to this processor's private copy of element `e`.
    pub fn write(&mut self, e: usize, v: T) {
        self.marker.mark_write(e);
        // overlays and trails grow per write — exactly the state the
        // undo-log budget is meant to bound; charges are buffered and
        // flushed in one RMW when the handle drops at iteration end
        self.pending_charges += 1;
        self.overlay.insert(e, v);
        self.trail.record(self.vpn, self.iter, e, v);
    }
}

impl<T: Copy> Drop for PrivAccess<'_, T> {
    fn drop(&mut self) {
        if self.pending_charges != 0 {
            if let Some(b) = self.budget {
                b.charge_many(self.pending_charges);
            }
        }
    }
}

/// Speculative execution with **privatization**: each processor works on a
/// private overlay of the array (copy-in from the original), a
/// time-stamped write trail records every private write, and — if the PD
/// test confirms the privatization was valid — the last value per element
/// (with stamp ≤ the last valid iteration) is copied out to the shared
/// array. On failure the shared array is untouched (the original version
/// *is* the backup, as the paper notes) and the loop re-runs sequentially.
///
/// Soundness of the overshoot exemption (see `wlp_pd::shadow`): overlays
/// persist per worker across iterations, but [`doall_dynamic`] hands each
/// worker monotonically increasing iteration indices, so a *valid*
/// iteration can never observe an *overshot* same-worker overlay write —
/// overshot work always comes after all of a worker's valid work. Any
/// valid-to-valid overlay leak is an exposed read of another iteration's
/// write and fails the privatization criterion, forcing the sequential
/// fallback.
pub fn speculative_while_privatized<T, TF, BF>(
    pool: &Pool,
    upper: usize,
    arr: &SpeculativeArray<T>,
    term: TF,
    body: BF,
) -> SpecOutcome
where
    T: Copy + Send + Sync,
    TF: Fn(usize, &mut PrivAccess<'_, T>) -> bool + Sync,
    BF: Fn(usize, &mut PrivAccess<'_, T>) + Sync,
{
    let p = pool.size();
    let overlays: Vec<parking_lot::Mutex<HashMap<usize, T>>> = (0..p)
        .map(|_| parking_lot::Mutex::new(HashMap::new()))
        .collect();
    let trail: TrailSet<T> = TrailSet::new(p);
    let exception = AtomicBool::new(false);
    let executed = AtomicU64::new(0);

    let out = doall_dynamic(pool, upper, |i, vpn| {
        if arr.budget_exceeded() {
            return Step::Quit;
        }
        let mut overlay = overlays[vpn].lock();
        let mut acc = PrivAccess {
            original: &arr.versioned,
            overlay: &mut overlay,
            marker: arr.shadow.iteration(i),
            trail: &trail,
            budget: arr.budget.as_ref(),
            vpn,
            iter: i,
            pending_charges: 0,
        };
        let step = catch_unwind(AssertUnwindSafe(|| {
            if term(i, &mut acc) {
                Step::Quit
            } else {
                body(i, &mut acc);
                executed.fetch_add(1, Ordering::Relaxed);
                Step::Continue
            }
        }));
        match step {
            Ok(s) => s,
            Err(_) => {
                exception.store(true, Ordering::Release);
                Step::Quit
            }
        }
    });

    let last_valid = out.quit;
    let had_exception = exception.load(Ordering::Acquire) || out.panic.is_some();
    let early_abort = if out.timeout.is_some() {
        Some(AbortReason::Timeout)
    } else if had_exception {
        Some(AbortReason::Exception)
    } else if arr.budget_exceeded() {
        Some(AbortReason::Budget)
    } else {
        None
    };
    let verdict = early_abort
        .is_none()
        .then(|| arr.shadow.analyze(pool, last_valid, 16));

    let valid = verdict.as_ref().is_some_and(|v| v.privatized_doall);
    if !valid {
        // shared data was never touched — no restore needed, just re-run
        let lv = run_sequential_privatized(upper, arr, &term, &body);
        return SpecOutcome {
            verdict,
            committed_parallel: false,
            reexecuted_sequentially: true,
            exception: had_exception,
            abort: early_abort.or(Some(AbortReason::Dependence)),
            last_valid: lv,
            executed_parallel: executed.load(Ordering::Relaxed),
            undone: 0,
        };
    }

    // copy-out: last value per element with stamp ≤ LI (or any stamp if the
    // loop ran its full range)
    let events = trail.into_events();
    let mut values = arr.versioned.snapshot();
    let li = last_valid.unwrap_or(usize::MAX - 1);
    let copied = copy_out_last_values(&events, li, &mut values);
    for (e, v) in values.into_iter().enumerate() {
        arr.versioned.write_direct(e, v);
    }
    SpecOutcome {
        verdict,
        committed_parallel: true,
        reexecuted_sequentially: false,
        exception: false,
        abort: None,
        last_valid,
        executed_parallel: executed.load(Ordering::Relaxed),
        undone: copied, // elements whose value came from the trail
    }
}

fn run_sequential_privatized<T, TF, BF>(
    upper: usize,
    arr: &SpeculativeArray<T>,
    term: &TF,
    body: &BF,
) -> Option<usize>
where
    T: Copy + Send + Sync,
    TF: Fn(usize, &mut PrivAccess<'_, T>) -> bool + Sync,
    BF: Fn(usize, &mut PrivAccess<'_, T>) + Sync,
{
    // Sequential semantics: a single "processor" with a persistent overlay
    // applied in iteration order; writes land directly in the shared array.
    let trail: TrailSet<T> = TrailSet::new(1);
    let shadow_sink = Shadow::new(arr.len()); // marks discarded
    let mut overlay: HashMap<usize, T> = HashMap::new();
    let mut last = None;
    for i in 0..upper {
        let mut acc = PrivAccess {
            original: &arr.versioned,
            overlay: &mut overlay,
            marker: shadow_sink.iteration(i),
            trail: &trail,
            budget: None, // sequential truth is never budget-limited
            vpn: 0,
            iter: i,
            pending_charges: 0,
        };
        if term(i, &mut acc) {
            last = Some(i);
            break;
        }
        body(i, &mut acc);
    }
    for (e, v) in overlay {
        arr.versioned.write_direct(e, v);
    }
    last
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // indexing by iteration number is the semantics under test
mod tests {
    use super::*;

    fn pool() -> Pool {
        Pool::new(4)
    }

    #[test]
    fn independent_loop_commits_parallel() {
        // A[i] = 2·A[i] with an exit — Figure 5(a) with a conditional exit
        let arr = SpeculativeArray::new((0..100i64).collect());
        let out = speculative_while(
            &pool(),
            1000,
            &arr,
            |i, _| i >= 100,
            |i, a| {
                let v = a.read(i);
                a.write(i, 2 * v);
            },
        );
        assert!(out.committed_parallel);
        assert!(!out.reexecuted_sequentially);
        assert_eq!(out.last_valid, Some(100));
        assert_eq!(
            arr.snapshot(),
            (0..100).map(|x| 2 * x).collect::<Vec<i64>>()
        );
    }

    #[test]
    fn flow_dependence_falls_back_to_sequential() {
        // A[i] = A[i] + A[i-1] — Figure 5(c), a true recurrence
        let n = 64usize;
        let arr = SpeculativeArray::new(vec![1i64; n]);
        let out = speculative_while(
            &pool(),
            n,
            &arr,
            |i, _| i >= n - 1,
            |i, a| {
                let prev = a.read(i); // reads own slot …
                let left = a.read(i + 1); // … and the next (cross-iteration)
                a.write(i + 1, prev + left);
            },
        );
        assert!(!out.committed_parallel);
        assert!(out.reexecuted_sequentially);
        assert!(
            !out.verdict.unwrap().doall,
            "PD test must reject the recurrence"
        );
        // sequential semantics: A[i] = 1 + i (prefix sums of ones)
        let snap = arr.snapshot();
        for (i, v) in snap.iter().enumerate().take(n - 1) {
            assert_eq!(*v, 1 + i as i64, "element {i}");
        }
    }

    #[test]
    fn overshot_writes_are_undone() {
        // RV-style exit discovered at iteration 50; overshot iterations
        // write to disjoint cells and must be rolled back
        let arr = SpeculativeArray::new(vec![0i64; 1000]);
        let out = speculative_while(&pool(), 1000, &arr, |i, _| i == 50, |i, a| a.write(i, 1));
        assert!(out.committed_parallel);
        assert_eq!(out.last_valid, Some(50));
        let snap = arr.snapshot();
        for i in 0..50 {
            assert_eq!(snap[i], 1, "valid iteration {i}");
        }
        for i in 51..1000 {
            assert_eq!(snap[i], 0, "overshot iteration {i} must be undone");
        }
    }

    #[test]
    fn exception_triggers_sequential_reexecution() {
        let panic_in_parallel = AtomicBool::new(true);
        let arr = SpeculativeArray::new(vec![0i64; 64]);
        let out = speculative_while(
            &pool(),
            64,
            &arr,
            |_, _| false,
            |i, a| {
                if i == 31 && panic_in_parallel.swap(false, Ordering::SeqCst) {
                    panic!("injected fault");
                }
                a.write(i, i as i64);
            },
        );
        assert!(out.exception);
        assert!(out.reexecuted_sequentially);
        let snap = arr.snapshot();
        for (i, v) in snap.iter().enumerate() {
            assert_eq!(*v, i as i64, "sequential re-execution must be complete");
        }
    }

    #[test]
    fn privatized_tmp_array_commits() {
        // Figure 5(b): every iteration writes tmp (element n) then reads it
        // — output dependences removed by privatization
        let n = 40usize;
        let mut init = vec![0i64; 2 * n + 1];
        for (i, v) in init.iter_mut().enumerate() {
            *v = i as i64;
        }
        let tmp = 2 * n;
        let arr = SpeculativeArray::new(init.clone());
        let out = speculative_while_privatized(
            &pool(),
            n,
            &arr,
            |i, _| i >= n,
            |i, a| {
                // swap A[2i] and A[2i+1] through tmp
                let x = a.read(2 * i);
                a.write(tmp, x);
                let y = a.read(2 * i + 1);
                a.write(2 * i, y);
                let t = a.read(tmp);
                a.write(2 * i + 1, t);
            },
        );
        assert!(out.committed_parallel, "verdict: {:?}", out.verdict);
        let snap = arr.snapshot();
        for i in 0..n {
            assert_eq!(snap[2 * i], init[2 * i + 1], "pair {i} swapped");
            assert_eq!(snap[2 * i + 1], init[2 * i], "pair {i} swapped");
        }
    }

    #[test]
    fn privatized_fallback_on_true_dependence() {
        // a genuine flow dependence that privatization cannot remove
        let n = 32usize;
        let arr = SpeculativeArray::new(vec![1i64; n + 1]);
        let out = speculative_while_privatized(
            &pool(),
            n,
            &arr,
            |i, _| i >= n,
            |i, a| {
                let left = a.read(i);
                a.write(i + 1, left + 1);
            },
        );
        assert!(!out.committed_parallel);
        assert!(out.reexecuted_sequentially);
        // sequential semantics: A[i] = i + 1
        let snap = arr.snapshot();
        for i in 0..=n {
            assert_eq!(snap[i], i as i64 + 1, "element {i}");
        }
    }

    #[test]
    fn privatized_copy_out_respects_last_valid() {
        // every iteration writes element 0 (privatized); exit at 10 ⇒ the
        // copy-out must take iteration 9's value, not a later one
        let arr = SpeculativeArray::new(vec![-1i64]);
        let out = speculative_while_privatized(
            &pool(),
            1000,
            &arr,
            |i, _| i == 10,
            |i, a| a.write(0, i as i64),
        );
        assert!(out.committed_parallel, "verdict: {:?}", out.verdict);
        assert_eq!(out.last_valid, Some(10));
        assert_eq!(arr.snapshot(), vec![9]);
    }

    #[test]
    fn strips_commit_independent_work_and_find_the_exit() {
        let mut arr = SpeculativeArray::new(vec![0i64; 1000]);
        let out = speculative_while_strips(
            &pool(),
            1000,
            64,
            &mut arr,
            |i, _| i == 400,
            |i, a| a.write(i, i as i64),
        );
        assert_eq!(out.last_valid, Some(400));
        assert!(
            out.strips_committed.iter().all(|&c| c),
            "all strips independent"
        );
        // strips 0..=6 ran (exit inside strip [384, 448)); nothing later
        assert_eq!(out.strips_committed.len(), 7);
        let snap = arr.snapshot();
        for i in 0..400 {
            assert_eq!(snap[i], i as i64);
        }
        for i in 401..1000 {
            assert_eq!(snap[i], 0, "iteration {i} must not survive");
        }
    }

    #[test]
    fn only_the_poisoned_strip_reexecutes() {
        // a flow dependence confined to iterations 70→71 (strip 1 of 64)
        let n = 256usize;
        let mut arr = SpeculativeArray::new(vec![1i64; n + 1]);
        let out = speculative_while_strips(
            &pool(),
            n,
            64,
            &mut arr,
            |_, _| false,
            |i, a| {
                if i == 70 {
                    a.write(n, 5);
                } else if i == 71 {
                    let v = a.read(n);
                    a.write(71, v);
                } else {
                    a.write(i, 2);
                }
            },
        );
        assert_eq!(out.last_valid, None);
        assert_eq!(out.strips_committed.len(), 4);
        assert!(!out.strips_committed[1], "strip with the dependence fails");
        assert!(out.strips_committed[0] && out.strips_committed[2] && out.strips_committed[3]);
        // sequential semantics inside the failed strip
        assert_eq!(arr.snapshot()[71], 5);
    }

    #[test]
    fn strips_match_unstripped_results() {
        let make = || SpeculativeArray::new((0..500i64).collect());
        let term = |i: usize, _: &mut SpecAccess<'_, i64>| i >= 333;
        let body = |i: usize, a: &mut SpecAccess<'_, i64>| {
            let v = a.read(i);
            a.write(i, v + 100);
        };
        let whole = make();
        speculative_while(&pool(), 500, &whole, term, body);
        let mut strips = make();
        speculative_while_strips(&pool(), 500, 50, &mut strips, term, body);
        assert_eq!(whole.snapshot(), strips.snapshot());
    }

    #[test]
    fn run_twice_speculative_avoids_overshoot_entirely() {
        let arr = SpeculativeArray::new(vec![0i64; 1000]);
        let out = run_twice_speculative(&pool(), 1000, &arr, |i| i == 250, |i, a| a.write(i, 1));
        assert!(out.committed_parallel);
        assert_eq!(out.last_valid, Some(250));
        assert_eq!(out.undone, 0, "a known-range DOALL cannot overshoot");
        let snap = arr.snapshot();
        assert_eq!(snap.iter().filter(|&&v| v == 1).count(), 250);
        assert_eq!(snap[250], 0);
    }

    #[test]
    fn run_twice_speculative_still_catches_dependences() {
        let n = 64usize;
        let arr = SpeculativeArray::new(vec![1i64; n + 1]);
        let out = run_twice_speculative(
            &pool(),
            n,
            &arr,
            |_| false,
            |i, a| {
                let left = a.read(i);
                a.write(i + 1, left + 1);
            },
        );
        assert!(!out.committed_parallel);
        assert!(out.reexecuted_sequentially);
        let snap = arr.snapshot();
        for i in 0..=n {
            assert_eq!(snap[i], i as i64 + 1);
        }
    }

    #[test]
    fn windowed_speculation_bounds_overshoot_and_span() {
        let arr = SpeculativeArray::new(vec![0i64; 2000]);
        let (out, span) = speculative_while_windowed(
            &pool(),
            2000,
            8,
            &arr,
            |i, _| i == 300,
            |i, a| a.write(i, 1),
        );
        assert!(out.committed_parallel, "{:?}", out.verdict);
        assert_eq!(out.last_valid, Some(300));
        assert!(span <= 8, "span {span}");
        assert!(
            out.undone <= 8,
            "undo bounded by the window: {}",
            out.undone
        );
        let snap = arr.snapshot();
        assert_eq!(snap.iter().filter(|&&v| v == 1).count(), 300);
    }

    #[test]
    fn windowed_speculation_matches_unwindowed_results() {
        let term = |i: usize, _: &mut SpecAccess<'_, i64>| i >= 700;
        let body = |i: usize, a: &mut SpecAccess<'_, i64>| {
            let v = a.read(i);
            a.write(i, v + 5);
        };
        let a1 = SpeculativeArray::new((0..1000i64).collect());
        speculative_while(&pool(), 1000, &a1, term, body);
        let a2 = SpeculativeArray::new((0..1000i64).collect());
        let (out, _) = speculative_while_windowed(&pool(), 1000, 16, &a2, term, body);
        assert!(out.committed_parallel);
        assert_eq!(a1.snapshot(), a2.snapshot());
    }

    #[test]
    fn group_speculation_validates_independent_arrays() {
        // two arrays: a data array and a count array, disjoint per iteration
        let arrays = [
            SpeculativeArray::new(vec![0i64; 100]),
            SpeculativeArray::new(vec![10i64; 100]),
        ];
        let out = speculative_while_group(
            &pool(),
            100,
            &arrays,
            |_, _| false,
            |i, g| {
                let v = g.read(1, i);
                g.write(0, i, v + i as i64);
                g.write(1, i, v + 1);
            },
        );
        assert!(out.committed_parallel, "{:?}", out.verdict);
        assert_eq!(arrays[0].snapshot()[7], 17);
        assert_eq!(arrays[1].snapshot()[7], 11);
    }

    #[test]
    fn group_speculation_fails_if_any_array_conflicts() {
        // array 0 is independent; array 1 is a shared accumulator
        let arrays = [
            SpeculativeArray::new(vec![0i64; 50]),
            SpeculativeArray::new(vec![0i64; 1]),
        ];
        let out = speculative_while_group(
            &pool(),
            50,
            &arrays,
            |_, _| false,
            |i, g| {
                g.write(0, i, 1);
                let acc = g.read(1, 0);
                g.write(1, 0, acc + 1);
            },
        );
        assert!(!out.committed_parallel);
        assert!(out.reexecuted_sequentially);
        // sequential semantics hold for both arrays
        assert_eq!(arrays[1].snapshot()[0], 50);
        assert!(arrays[0].snapshot().iter().all(|&v| v == 1));
    }

    #[test]
    fn group_speculation_undoes_overshoot_across_arrays() {
        let arrays = [
            SpeculativeArray::new(vec![0i64; 500]),
            SpeculativeArray::new(vec![0i64; 500]),
        ];
        let out = speculative_while_group(
            &pool(),
            500,
            &arrays,
            |i, _| i == 60,
            |i, g| {
                g.write(0, i, 1);
                g.write(1, i, 2);
            },
        );
        assert!(out.committed_parallel);
        assert_eq!(out.last_valid, Some(60));
        for arr in &arrays {
            let snap = arr.snapshot();
            assert!(snap[..60].iter().all(|&v| v != 0));
            assert!(snap[61..].iter().all(|&v| v == 0));
        }
    }

    #[test]
    fn recorded_speculation_reports_commit_and_abort() {
        use wlp_obs::{BufferRecorder, ProfileReport};

        // committing run with overshoot past the exit at 50
        let arr = SpeculativeArray::new(vec![0i64; 500]);
        let rec = BufferRecorder::new(4);
        let out = speculative_while_rec(
            &pool(),
            500,
            &arr,
            &rec,
            |i, _| i == 50,
            |i, a| a.write(i, 1),
        );
        assert!(out.committed_parallel);
        let report = ProfileReport::from_trace(&rec.finish());
        assert_eq!(report.spec_commits, 1);
        assert_eq!(report.spec_aborts, 0);
        assert_eq!(report.committed, 50);
        assert_eq!(report.backup_elems, 500);
        assert_eq!(report.undo_elems, out.undone as u64);
        assert!(report.pd_analyzed > 0, "analysis volume recorded");
        assert_eq!(report.spec_success_rate(), Some(1.0));
        report.check_conservation().expect("laws hold");

        // dependence failure aborts and discards everything
        let n = 64usize;
        let arr = SpeculativeArray::new(vec![1i64; n + 1]);
        let rec = BufferRecorder::new(4);
        let out = speculative_while_rec(
            &pool(),
            n,
            &arr,
            &rec,
            |i, _| i >= n,
            |i, a| {
                let left = a.read(i);
                a.write(i + 1, left + 1);
            },
        );
        assert!(out.reexecuted_sequentially);
        let report = ProfileReport::from_trace(&rec.finish());
        assert_eq!(report.spec_aborts, 1);
        assert_eq!(report.committed, 0);
        assert_eq!(report.undone, report.executed, "abort discards all bodies");
        assert_eq!(report.undo_elems, (n + 1) as u64, "full restore volume");
        report.check_conservation().expect("laws hold");
    }

    #[test]
    fn chunked_speculation_matches_one_at_a_time() {
        let term = |i: usize, _: &mut SpecAccess<'_, i64>| i >= 333;
        let body = |i: usize, a: &mut SpecAccess<'_, i64>| {
            let v = a.read(i);
            a.write(i, v + 100);
        };
        let base = SpeculativeArray::new((0..500i64).collect());
        let b = speculative_while(&pool(), 500, &base, term, body);
        assert!(b.committed_parallel);
        for policy in [ChunkPolicy::Fixed(16), ChunkPolicy::Guided { min: 2 }] {
            let arr = SpeculativeArray::new((0..500i64).collect());
            let out = speculative_while_chunked(&pool(), 500, policy, &arr, term, body);
            assert!(out.committed_parallel, "{policy:?}");
            assert_eq!(out.last_valid, Some(333), "{policy:?}");
            assert_eq!(arr.snapshot(), base.snapshot(), "{policy:?}");
        }
    }

    #[test]
    fn chunked_speculation_still_catches_dependences() {
        let n = 64usize;
        let arr = SpeculativeArray::new(vec![1i64; n + 1]);
        let out = speculative_while_chunked(
            &pool(),
            n,
            ChunkPolicy::Fixed(8),
            &arr,
            |_, _| false,
            |i, a| {
                let left = a.read(i);
                a.write(i + 1, left + 1);
            },
        );
        assert!(!out.committed_parallel);
        assert!(out.reexecuted_sequentially);
        let snap = arr.snapshot();
        for i in 0..=n {
            assert_eq!(snap[i], i as i64 + 1);
        }
    }

    #[test]
    fn budget_trip_degrades_to_sequential_with_correct_result() {
        // every iteration writes: a budget of 20 stamped writes trips long
        // before the 500-iteration range is exhausted
        let arr = SpeculativeArray::new(vec![0i64; 500]).with_budget(20);
        let out = speculative_while(
            &pool(),
            500,
            &arr,
            |i, _| i >= 500,
            |i, a| {
                let v = a.read(i);
                a.write(i, v + 1 + i as i64);
            },
        );
        assert_eq!(out.abort, Some(AbortReason::Budget));
        assert!(out.reexecuted_sequentially);
        assert!(!out.committed_parallel);
        let snap = arr.snapshot();
        for (i, v) in snap.iter().enumerate() {
            assert_eq!(*v, 1 + i as i64, "element {i}: sequential semantics");
        }
    }

    #[test]
    fn generous_budget_still_commits_parallel() {
        let arr = SpeculativeArray::new(vec![0i64; 100]).with_budget(1_000);
        let out = speculative_while(&pool(), 100, &arr, |_, _| false, |i, a| a.write(i, 1));
        assert!(out.committed_parallel);
        assert_eq!(out.abort, None);
        assert_eq!(arr.stamped_writes(), 100);
    }

    #[test]
    fn abort_reason_attributes_dependence_and_exception() {
        let n = 32usize;
        let arr = SpeculativeArray::new(vec![1i64; n + 1]);
        let out = speculative_while(
            &pool(),
            n,
            &arr,
            |_, _| false,
            |i, a| {
                let left = a.read(i);
                a.write(i + 1, left + 1);
            },
        );
        assert_eq!(out.abort, Some(AbortReason::Dependence));

        let first = AtomicBool::new(true);
        let arr = SpeculativeArray::new(vec![0i64; 32]);
        let out = speculative_while(
            &pool(),
            32,
            &arr,
            |_, _| false,
            |i, a| {
                if i == 7 && first.swap(false, Ordering::SeqCst) {
                    panic!("boom");
                }
                a.write(i, 1);
            },
        );
        assert_eq!(out.abort, Some(AbortReason::Exception));
    }

    #[test]
    fn deadline_expiry_aborts_with_timeout_and_correct_result() {
        use wlp_obs::{BufferRecorder, ProfileReport};
        use wlp_runtime::Deadline;

        let pool = Pool::new(4).with_deadline(Deadline::from_millis(25));
        let arr = SpeculativeArray::new(vec![0i64; 10_000]);
        let rec = BufferRecorder::new(4);
        let out = speculative_while_rec(
            &pool,
            10_000,
            &arr,
            &rec,
            |i, _| i >= 10_000,
            |i, a| {
                if i == 3 {
                    // a stalled writer: holds its lane far past the deadline
                    std::thread::sleep(std::time::Duration::from_millis(200));
                }
                a.write(i, 7);
            },
        );
        assert_eq!(out.abort, Some(AbortReason::Timeout));
        assert!(out.reexecuted_sequentially);
        assert!(arr.snapshot().iter().all(|&v| v == 7), "sequential truth");

        let report = ProfileReport::from_trace(&rec.finish());
        assert_eq!(report.timeouts, 1, "TimeoutAbort recorded");
        assert_eq!(report.aborts_timeout, 1, "SpecAbort attributed to timeout");
        report.check_conservation().expect("laws hold");

        // the same (resident) pool stays reusable after the timeout
        let arr2 = SpeculativeArray::new(vec![0i64; 64]);
        let out2 = speculative_while(&pool, 64, &arr2, |_, _| false, |i, a| a.write(i, 1));
        assert!(out2.committed_parallel);
        assert_eq!(out2.abort, None);
    }

    // `atomic_`-prefixed tests are pool-free (scoped std threads only) so
    // the CI Miri job can select them by name filter and check the relaxed
    // stamp/charge protocol under the weak-memory interpreter.

    #[test]
    fn atomic_spec_budget_charges_are_exact_under_contention() {
        let threads: usize = 4;
        let iters_per_thread: usize = if cfg!(miri) { 8 } else { 200 };
        let writes_per_iter: usize = 3;
        let arr =
            SpeculativeArray::new(vec![0u64; threads * iters_per_thread]).with_budget(u64::MAX - 1);
        std::thread::scope(|s| {
            for t in 0..threads {
                let arr = &arr;
                s.spawn(move || {
                    for k in 0..iters_per_thread {
                        let i = t * iters_per_thread + k;
                        let mut acc = arr.access(i);
                        for _ in 0..writes_per_iter {
                            acc.write(i, i as u64);
                        }
                        // drop flushes the buffered charges in one RMW
                    }
                });
            }
        });
        assert_eq!(
            arr.stamped_writes(),
            (threads * iters_per_thread * writes_per_iter) as u64,
            "no charge lost or duplicated by the batched flush"
        );
        assert!(!arr.budget_exceeded());
    }

    #[test]
    fn atomic_spec_array_relaxed_stamps_survive_concurrent_writers() {
        // Several threads write the same element on behalf of different
        // iterations: the kept stamp must be the smallest iteration, and
        // undoing past it must restore the checkpoint — the exact protocol
        // the relaxed fast path in `VersionedArray::write` relies on.
        let threads: usize = if cfg!(miri) { 3 } else { 8 };
        let arr = SpeculativeArray::new(vec![7i64; 4]);
        std::thread::scope(|s| {
            for t in 0..threads {
                let arr = &arr;
                s.spawn(move || {
                    let mut acc = arr.access(t + 1);
                    acc.write(0, (t + 1) as i64);
                });
            }
        });
        let mut acc = arr.access(0);
        acc.write(0, 100);
        drop(acc);
        assert_eq!(arr.versioned.stamp(0), Some(0), "earliest writer wins");
        // every writer overshot except iteration 0 → undo keeps its value
        assert_eq!(arr.versioned.undo_past(0), 0);
        assert_eq!(arr.snapshot()[0], 100);
    }

    #[test]
    fn spec_array_commit_enables_reuse() {
        let mut arr = SpeculativeArray::new(vec![0i64; 10]);
        let out1 = speculative_while(&pool(), 10, &arr, |_, _| false, |i, a| a.write(i, 1));
        assert!(out1.committed_parallel);
        arr.commit();
        let out2 = speculative_while(
            &pool(),
            10,
            &arr,
            |_, _| false,
            |i, a| {
                let v = a.read(i);
                a.write(i, v + 1);
            },
        );
        assert!(out2.committed_parallel);
        assert_eq!(arr.snapshot(), vec![2; 10]);
    }
}
