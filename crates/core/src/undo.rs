//! Undoing iterations that overshoot the termination condition (Section 4).
//!
//! "Perhaps the easiest method … is to checkpoint prior to executing the
//! DOALL, and to maintain a record of when (i.e., iteration number) a
//! memory location is written during the loop. … after the DOALL has
//! terminated and the last valid iteration is known, the work of iterations
//! that have overshot can be undone by restoring the values that were
//! overwritten during these iterations."
//!
//! [`VersionedArray`] is exactly that triple: the checkpoint copy, the live
//! data, and per-location write time-stamps — the paper's "three times the
//! actual memory" worst case. Writes from different iterations to
//! *different* locations proceed without contention; writes to the *same*
//! location are what the PD test exists to detect, and remain memory-safe
//! here (via `crossbeam`'s `AtomicCell`) so a failed speculation can be
//! rolled back cleanly.

use crossbeam::atomic::AtomicCell;
use std::sync::atomic::{AtomicU32, Ordering};

const UNWRITTEN: u32 = u32::MAX;

/// A checkpointed array with per-location write time-stamps.
///
/// ```
/// use wlp_core::undo::VersionedArray;
///
/// let a = VersionedArray::new(vec![0; 4]);
/// a.write(0, 10, 2);    // iteration 2 wrote element 0
/// a.write(1, 20, 7);    // iteration 7 wrote element 1 … but the loop
/// a.undo_past(5);       // exited at iteration 5: undo the overshoot
/// assert_eq!(a.snapshot(), vec![10, 0, 0, 0]);
/// ```
#[derive(Debug)]
pub struct VersionedArray<T: Copy> {
    data: Vec<AtomicCell<T>>,
    stamp: Vec<AtomicU32>,
    checkpoint: Vec<T>,
}

impl<T: Copy> VersionedArray<T> {
    /// Checkpoints `init` and exposes it as the live array.
    pub fn new(init: Vec<T>) -> Self {
        VersionedArray {
            data: init.iter().copied().map(AtomicCell::new).collect(),
            stamp: (0..init.len()).map(|_| AtomicU32::new(UNWRITTEN)).collect(),
            checkpoint: init,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads element `e`.
    #[inline]
    pub fn read(&self, e: usize) -> T {
        self.data[e].load()
    }

    /// Writes `v` to element `e` on behalf of iteration `iter`, recording
    /// the earliest writing iteration as the element's time-stamp. (In a
    /// valid independent loop each location is written during at most one
    /// iteration, so "earliest" is simply "the" writer.)
    ///
    /// The stamped-write hot path is two `Relaxed` operations: a load of
    /// the current stamp, then — only when this iteration is earlier — a
    /// `fetch_min` RMW. The skip branch is the common case in a valid
    /// loop, where each location has exactly one writer and later strips
    /// reuse the same stamp. `Relaxed` is sound because a stamp is plain
    /// data: nothing is published through it, and every reader of the
    /// stamps (`undo_past`, `restore_all`, the PD analysis) runs after
    /// the region join, which is the happens-before edge that flushes all
    /// in-flight RMWs.
    #[inline]
    pub fn write(&self, e: usize, v: T, iter: usize) {
        let it = u32::try_from(iter).expect("iteration fits in u32");
        assert!(it < UNWRITTEN, "iteration stamp space exhausted");
        self.data[e].store(v);
        if self.stamp[e].load(Ordering::Relaxed) > it {
            self.stamp[e].fetch_min(it, Ordering::Relaxed);
        }
    }

    /// Time-stamp of element `e`: the earliest iteration that wrote it, if
    /// any. (`Relaxed`: stamps are self-contained data, ordered by the
    /// region join — see [`write`](Self::write).)
    pub fn stamp(&self, e: usize) -> Option<usize> {
        let s = self.stamp[e].load(Ordering::Relaxed);
        (s != UNWRITTEN).then_some(s as usize)
    }

    /// Restores every element whose time-stamp is greater than
    /// `last_valid` to its checkpoint value, clearing those stamps.
    /// Returns the number of elements restored.
    pub fn undo_past(&self, last_valid: usize) -> usize {
        let li = u32::try_from(last_valid).unwrap_or(UNWRITTEN - 1);
        let mut restored = 0;
        for e in 0..self.data.len() {
            let s = self.stamp[e].load(Ordering::Relaxed);
            if s != UNWRITTEN && s > li {
                self.data[e].store(self.checkpoint[e]);
                self.stamp[e].store(UNWRITTEN, Ordering::Relaxed);
                restored += 1;
            }
        }
        restored
    }

    /// Restores *every* written element to its checkpoint (a failed
    /// speculation or an exception), clearing all stamps. Returns the
    /// number of elements restored.
    pub fn restore_all(&self) -> usize {
        let mut restored = 0;
        for e in 0..self.data.len() {
            if self.stamp[e].swap(UNWRITTEN, Ordering::Relaxed) != UNWRITTEN {
                self.data[e].store(self.checkpoint[e]);
                restored += 1;
            }
        }
        restored
    }

    /// Accepts the current live values as the new checkpoint and clears all
    /// stamps (a successful loop, ready for the next one).
    pub fn commit(&mut self) {
        for e in 0..self.data.len() {
            self.checkpoint[e] = self.data[e].load();
            *self.stamp[e].get_mut() = UNWRITTEN;
        }
    }

    /// Copies the live values out.
    pub fn snapshot(&self) -> Vec<T> {
        self.data.iter().map(|c| c.load()).collect()
    }

    /// Direct un-stamped write, for sequential re-execution after a failed
    /// speculation (no undo support needed — the re-execution is the
    /// semantics).
    #[inline]
    pub fn write_direct(&self, e: usize, v: T) {
        self.data[e].store(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_see_initial_values() {
        let a = VersionedArray::new(vec![1, 2, 3]);
        assert_eq!(a.read(1), 2);
        assert_eq!(a.len(), 3);
        assert_eq!(a.stamp(0), None);
    }

    #[test]
    fn undo_past_restores_only_overshot_writes() {
        let a = VersionedArray::new(vec![0; 5]);
        a.write(0, 10, 1);
        a.write(1, 20, 4);
        a.write(2, 30, 9); // overshot
        let restored = a.undo_past(5);
        assert_eq!(restored, 1);
        assert_eq!(a.snapshot(), vec![10, 20, 0, 0, 0]);
        assert_eq!(a.stamp(2), None, "undone stamps are cleared");
        assert_eq!(a.stamp(1), Some(4), "valid stamps survive");
    }

    #[test]
    fn restore_all_rolls_back_everything() {
        let a = VersionedArray::new(vec![7, 8]);
        a.write(0, 100, 0);
        a.write(1, 200, 3);
        assert_eq!(a.restore_all(), 2);
        assert_eq!(a.snapshot(), vec![7, 8]);
        assert_eq!(a.restore_all(), 0, "second restore finds nothing");
    }

    #[test]
    fn commit_adopts_new_baseline() {
        let mut a = VersionedArray::new(vec![0]);
        a.write(0, 42, 2);
        a.commit();
        a.write(0, 99, 0);
        a.restore_all();
        assert_eq!(a.read(0), 42, "restore goes to the committed value");
    }

    #[test]
    fn stamp_keeps_earliest_writer() {
        let a = VersionedArray::new(vec![0]);
        a.write(0, 1, 9);
        a.write(0, 2, 3); // an invalid loop wrote twice; min stamp = 3
        assert_eq!(a.stamp(0), Some(3));
    }

    #[test]
    fn concurrent_disjoint_writes() {
        let a = VersionedArray::new(vec![0u64; 1000]);
        let pool = wlp_runtime::Pool::new(4);
        wlp_runtime::doall_dynamic(&pool, 1000, |i, _| {
            a.write(i, i as u64 * 2, i);
            wlp_runtime::Step::Continue
        });
        for e in (0..1000).step_by(97) {
            assert_eq!(a.read(e), e as u64 * 2);
            assert_eq!(a.stamp(e), Some(e));
        }
        assert_eq!(a.undo_past(499), 500);
        assert_eq!(a.read(700), 0);
        assert_eq!(a.read(400), 800);
    }

    #[test]
    fn write_direct_bypasses_stamps() {
        let a = VersionedArray::new(vec![0]);
        a.write_direct(0, 5);
        assert_eq!(a.stamp(0), None);
        assert_eq!(a.restore_all(), 0, "direct writes are not rolled back");
        assert_eq!(a.read(0), 5);
    }
}
