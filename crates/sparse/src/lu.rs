//! Sparse LU factorization with threshold Markowitz pivoting — the solver
//! the MA28 loops live inside.
//!
//! [`factorize`] drives [`EliminationWork`] to completion, choosing each
//! pivot with the MA30AD discipline ([`search_pivot`] over
//! count-ordered candidates) and recording the multipliers and pivot rows;
//! [`LuFactors::solve`] then solves `A·x = b` by replaying the eliminations
//! on `b` (forward) and back-substituting through the recorded pivot rows.
//!
//! The pivot search is the pluggable piece: [`factorize_with`] accepts any
//! pivot chooser, which is how the parallel (sequentially-consistent)
//! search of `wlp-workloads::ma28` slots into a full solve.

use crate::csr::Csr;
use crate::markowitz::{candidate_rows, search_pivot, Pivot};
use crate::work::EliminationWork;

/// A recorded LU factorization of a square matrix.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    /// Per step: pivot `(row, col, value)`.
    pivots: Vec<(usize, usize, f64)>,
    /// Per step: the multipliers applied to each target row.
    multipliers: Vec<Vec<(usize, f64)>>,
    /// Per step: the pivot row's active entries (excluding the pivot).
    pivot_rows: Vec<Vec<(u32, f64)>>,
}

/// Why a factorization stopped early.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorizeError {
    /// Steps completed before the failure.
    pub completed: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for FactorizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} after {} steps", self.msg, self.completed)
    }
}

/// Factorizes `m` with the default sequential Markowitz pivot search and
/// relative threshold `u`.
pub fn factorize(m: &Csr, u: f64) -> Result<LuFactors, FactorizeError> {
    factorize_with(m, |work| search_pivot(work, candidate_rows(work), u))
}

/// Factorizes `m`, choosing each pivot with `choose` (e.g. the parallel
/// pivot search). `choose` must return an active, stored pivot.
pub fn factorize_with(
    m: &Csr,
    mut choose: impl FnMut(&EliminationWork) -> Option<Pivot>,
) -> Result<LuFactors, FactorizeError> {
    assert_eq!(m.n_rows(), m.n_cols(), "LU needs a square matrix");
    let n = m.n_rows();
    let mut work = EliminationWork::from_csr(m);
    let mut lu = LuFactors {
        n,
        pivots: Vec::with_capacity(n),
        multipliers: Vec::with_capacity(n),
        pivot_rows: Vec::with_capacity(n),
    };
    for step in 0..n {
        let Some(p) = choose(&work) else {
            return Err(FactorizeError {
                completed: step,
                msg: "no admissible pivot (structurally singular or threshold too strict)".into(),
            });
        };
        let rec = work.eliminate_recording(p.row, p.col);
        lu.pivots.push((p.row, p.col, rec.pivot_value));
        lu.multipliers.push(rec.multipliers);
        lu.pivot_rows.push(rec.pivot_row);
    }
    Ok(lu)
}

impl LuFactors {
    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total stored multiplier entries (the `L` factor's size).
    pub fn l_nnz(&self) -> usize {
        self.multipliers.iter().map(|m| m.len()).sum()
    }

    /// Total stored pivot-row entries plus pivots (the `U` factor's size).
    pub fn u_nnz(&self) -> usize {
        self.pivot_rows.iter().map(|r| r.len()).sum::<usize>() + self.pivots.len()
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    /// Panics if `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "dimension mismatch");
        // forward: replay the eliminations on b
        let mut y = b.to_vec();
        for (k, &(pi, _, _)) in self.pivots.iter().enumerate() {
            let ypi = y[pi];
            for &(t, f) in &self.multipliers[k] {
                y[t] -= f * ypi;
            }
        }
        // backward: in reverse pivot order, each pivot row only references
        // columns eliminated later, whose x is already known
        let mut x = vec![0.0; self.n];
        for (k, &(pi, pj, pv)) in self.pivots.iter().enumerate().rev() {
            let mut acc = y[pi];
            for &(c, v) in &self.pivot_rows[k] {
                acc -= v * x[c as usize];
            }
            x[pj] = acc / pv;
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::gen::{gemat_like, stencil7};

    fn residual(m: &Csr, x: &[f64], b: &[f64]) -> f64 {
        m.spmv(x)
            .iter()
            .zip(b)
            .map(|(ax, bb)| (ax - bb).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_a_small_dense_system() {
        // [2 1 0; 1 3 1; 0 1 4] x = b
        let mut c = Coo::new(3, 3);
        for (i, j, v) in [
            (0, 0, 2.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 1, 3.0),
            (1, 2, 1.0),
            (2, 1, 1.0),
            (2, 2, 4.0),
        ] {
            c.push(i, j, v);
        }
        let m = c.to_csr();
        let lu = factorize(&m, 0.1).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let b = m.spmv(&x_true);
        let x = lu.solve(&b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10, "{x:?}");
        }
    }

    #[test]
    fn solves_a_reservoir_stencil_system() {
        let m = stencil7(6, 5, 3, 17);
        let lu = factorize(&m, 0.1).unwrap();
        let n = m.n_rows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let b = m.spmv(&x_true);
        let x = lu.solve(&b);
        assert!(residual(&m, &x, &b) < 1e-8);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8);
        }
    }

    #[test]
    fn solves_a_gemat_class_system() {
        let m = gemat_like(120, 800, 3);
        let lu = factorize(&m, 0.01).expect("diag-dominant factorizes");
        let x_true: Vec<f64> = (0..m.n_rows())
            .map(|i| (i % 11) as f64 * 0.5 - 2.0)
            .collect();
        let b = m.spmv(&x_true);
        let x = lu.solve(&b);
        assert!(
            residual(&m, &x, &b) < 1e-6,
            "residual {}",
            residual(&m, &x, &b)
        );
    }

    #[test]
    fn factor_sizes_reflect_fill() {
        let m = stencil7(5, 5, 2, 1);
        let lu = factorize(&m, 0.1).unwrap();
        assert_eq!(lu.n(), 50);
        assert!(lu.u_nnz() >= 50, "every pivot is stored");
        assert!(lu.l_nnz() > 0, "elimination produced multipliers");
    }

    #[test]
    fn custom_pivot_chooser_is_used() {
        // diagonal pivoting in natural order (valid for dominant stencils)
        let m = stencil7(4, 4, 2, 5);
        let mut next = 0usize;
        let lu = factorize_with(&m, |work| {
            let p = next;
            next += 1;
            work.get(p, p).map(|value| Pivot {
                row: p,
                col: p,
                cost: work.markowitz_cost(p, p),
                value,
            })
        })
        .unwrap();
        let x_true: Vec<f64> = (0..m.n_rows()).map(|i| i as f64 * 0.25).collect();
        let b = m.spmv(&x_true);
        assert!(residual(&m, &lu.solve(&b), &b) < 1e-8);
    }

    #[test]
    fn singular_matrix_reports_the_step() {
        // rank-deficient: an empty row
        let mut c = Coo::new(3, 3);
        c.push(0, 0, 1.0);
        c.push(2, 2, 1.0);
        let e = factorize(&c.to_csr(), 0.1).unwrap_err();
        assert!(e.completed < 3);
        assert!(e.msg.contains("pivot"));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn solve_checks_dimensions() {
        let m = stencil7(3, 3, 1, 1);
        let lu = factorize(&m, 0.1).unwrap();
        let _ = lu.solve(&[1.0, 2.0]);
    }
}
