//! Triplet (coordinate) assembly format.

use crate::csr::Csr;

/// A matrix under assembly: an unordered list of `(row, col, value)`
/// triplets. Duplicate coordinates are summed on conversion to CSR.
#[derive(Debug, Clone, Default)]
pub struct Coo {
    n_rows: usize,
    n_cols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl Coo {
    /// Creates an empty `n_rows × n_cols` assembly.
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        Coo {
            n_rows,
            n_cols,
            entries: Vec::new(),
        }
    }

    /// Adds `value` at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.n_rows && col < self.n_cols,
            "entry out of bounds"
        );
        self.entries.push((row as u32, col as u32, value));
    }

    /// Number of raw triplets (before duplicate summing).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no triplets have been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Row dimension.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Column dimension.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Converts to CSR, summing duplicates and dropping exact zeros that
    /// result from cancellation.
    pub fn to_csr(&self) -> Csr {
        let mut entries = self.entries.clone();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_ptr = Vec::with_capacity(self.n_rows + 1);
        let mut col_idx: Vec<u32> = Vec::with_capacity(entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(entries.len());
        row_ptr.push(0);

        let mut cur_row = 0u32;
        let mut i = 0usize;
        while i < entries.len() {
            let (r, c, _) = entries[i];
            while cur_row < r {
                row_ptr.push(col_idx.len());
                cur_row += 1;
            }
            let mut v = 0.0;
            while i < entries.len() && entries[i].0 == r && entries[i].1 == c {
                v += entries[i].2;
                i += 1;
            }
            if v != 0.0 {
                col_idx.push(c);
                values.push(v);
            }
        }
        while row_ptr.len() < self.n_rows + 1 {
            row_ptr.push(col_idx.len());
        }
        Csr::from_parts(self.n_rows, self.n_cols, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_converts() {
        let coo = Coo::new(3, 3);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.n_rows(), 3);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 2.0);
        coo.push(0, 1, 3.0);
        coo.push(1, 0, 1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 1), Some(5.0));
        assert_eq!(csr.get(1, 0), Some(1.0));
    }

    #[test]
    fn cancelled_entries_are_dropped() {
        let mut coo = Coo::new(1, 1);
        coo.push(0, 0, 1.5);
        coo.push(0, 0, -1.5);
        assert_eq!(coo.to_csr().nnz(), 0);
    }

    #[test]
    fn unsorted_input_sorts() {
        let mut coo = Coo::new(3, 3);
        coo.push(2, 2, 9.0);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 5.0);
        coo.push(0, 2, 3.0);
        let csr = coo.to_csr();
        assert_eq!(csr.row_cols(0), &[0, 2]);
        assert_eq!(csr.get(2, 2), Some(9.0));
    }

    #[test]
    fn trailing_empty_rows_have_pointers() {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 0, 1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.row_cols(3), &[] as &[u32]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let mut coo = Coo::new(2, 2);
        coo.push(2, 0, 1.0);
    }
}
