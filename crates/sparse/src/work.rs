//! Mutable elimination workspace with fill-in (the state MA30AD maintains).

use crate::csr::Csr;

/// The active submatrix during Gaussian elimination: per-row sorted entry
/// lists, per-column counts, and activity flags. Supports Markowitz-style
/// pivoting with fill-in.
#[derive(Debug, Clone)]
pub struct EliminationWork {
    n: usize,
    rows: Vec<Vec<(u32, f64)>>,
    col_count: Vec<u32>,
    row_active: Vec<bool>,
    col_active: Vec<bool>,
    eliminated: usize,
}

/// Entries with magnitude below this are dropped after an update.
const DROP_TOL: f64 = 1e-12;

/// What one elimination step did — the information an LU factorization
/// records (see [`crate::lu`]).
#[derive(Debug, Clone)]
pub struct EliminationRecord {
    /// Fill-in entries created.
    pub fill: usize,
    /// The pivot's numerical value.
    pub pivot_value: f64,
    /// `(target_row, a_tj / pivot)` for every row the step updated.
    pub multipliers: Vec<(usize, f64)>,
    /// The pivot row's active entries at elimination time, excluding the
    /// pivot column itself (`(col, value)` pairs, sorted by column).
    pub pivot_row: Vec<(u32, f64)>,
}

impl EliminationWork {
    /// Builds the workspace from a square CSR matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn from_csr(m: &Csr) -> Self {
        assert_eq!(m.n_rows(), m.n_cols(), "elimination needs a square matrix");
        let n = m.n_rows();
        let rows: Vec<Vec<(u32, f64)>> = (0..n)
            .map(|i| {
                m.row_cols(i)
                    .iter()
                    .copied()
                    .zip(m.row_vals(i).iter().copied())
                    .collect()
            })
            .collect();
        let mut col_count = vec![0u32; n];
        for row in &rows {
            for &(c, _) in row {
                col_count[c as usize] += 1;
            }
        }
        EliminationWork {
            n,
            rows,
            col_count,
            row_active: vec![true; n],
            col_active: vec![true; n],
            eliminated: 0,
        }
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Pivots applied so far.
    pub fn eliminated(&self) -> usize {
        self.eliminated
    }

    /// Whether row `i` is still in the active submatrix.
    pub fn is_row_active(&self, i: usize) -> bool {
        self.row_active[i]
    }

    /// Whether column `j` is still in the active submatrix.
    pub fn is_col_active(&self, j: usize) -> bool {
        self.col_active[j]
    }

    /// Entries of row `i` (including entries in eliminated columns; filter
    /// with [`EliminationWork::is_col_active`]).
    pub fn row(&self, i: usize) -> &[(u32, f64)] {
        &self.rows[i]
    }

    /// Count of *active* entries in row `i`.
    pub fn row_count(&self, i: usize) -> u32 {
        self.rows[i]
            .iter()
            .filter(|&&(c, _)| self.col_active[c as usize])
            .count() as u32
    }

    /// Count of entries in active rows of column `j`.
    pub fn col_count(&self, j: usize) -> u32 {
        self.col_count[j]
    }

    /// Markowitz cost `(r_i − 1)(c_j − 1)` of pivoting at `(i, j)`.
    pub fn markowitz_cost(&self, i: usize, j: usize) -> u64 {
        let r = self.row_count(i).saturating_sub(1) as u64;
        let c = self.col_count(j).saturating_sub(1) as u64;
        r * c
    }

    /// Largest magnitude among active entries of row `i` (0.0 if none).
    pub fn row_abs_max(&self, i: usize) -> f64 {
        self.rows[i]
            .iter()
            .filter(|&&(c, _)| self.col_active[c as usize])
            .map(|&(_, v)| v.abs())
            .fold(0.0, f64::max)
    }

    /// Value at `(i, j)` if stored and the column is active.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if !self.col_active[j] {
            return None;
        }
        self.rows[i]
            .binary_search_by_key(&(j as u32), |&(c, _)| c)
            .ok()
            .map(|k| self.rows[i][k].1)
    }

    /// Rows of the active submatrix (ascending index).
    pub fn active_rows(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(|&i| self.row_active[i])
    }

    /// Applies the pivot at `(pi, pj)`: eliminates column `pj` from every
    /// other active row containing it (creating fill-in), then retires row
    /// `pi` and column `pj`. Returns the number of fill-in entries created.
    ///
    /// # Panics
    /// Panics if the pivot is inactive or not stored.
    pub fn eliminate(&mut self, pi: usize, pj: usize) -> usize {
        self.eliminate_recording(pi, pj).fill
    }

    /// Like [`EliminationWork::eliminate`], but returns everything an LU
    /// factorization needs to record about the step: the multipliers
    /// applied to each target row and the pivot row's active entries at
    /// elimination time.
    ///
    /// # Panics
    /// Panics if the pivot is inactive or not stored.
    pub fn eliminate_recording(&mut self, pi: usize, pj: usize) -> EliminationRecord {
        assert!(self.row_active[pi] && self.col_active[pj], "pivot inactive");
        let pval = self.get(pi, pj).expect("pivot entry must be stored");

        // rows that hold an entry in the pivot column (gathered before the
        // column is retired)
        let targets: Vec<(usize, f64)> = (0..self.n)
            .filter(|&k| k != pi && self.row_active[k])
            .filter_map(|k| self.get(k, pj).map(|akj| (k, akj)))
            .collect();

        // retire the pivot row/column so updates see the new counts
        self.row_active[pi] = false;
        self.col_active[pj] = false;
        for &(c, _) in &self.rows[pi] {
            let c = c as usize;
            if self.col_active[c] || c == pj {
                self.col_count[c] -= 1;
            }
        }

        let pivot_row: Vec<(u32, f64)> = self.rows[pi]
            .iter()
            .copied()
            .filter(|&(c, _)| self.col_active[c as usize])
            .collect();

        let mut fill = 0usize;
        let mut multipliers = Vec::with_capacity(targets.len());
        for (k, akj) in targets {
            let factor = akj / pval;
            multipliers.push((k, factor));
            // merge row_k ← row_k − factor · pivot_row (sorted lists)
            let old = std::mem::take(&mut self.rows[k]);
            let mut merged: Vec<(u32, f64)> = Vec::with_capacity(old.len() + pivot_row.len());
            let (mut a, mut b) = (0usize, 0usize);
            while a < old.len() || b < pivot_row.len() {
                match (old.get(a), pivot_row.get(b)) {
                    (Some(&(ca, va)), Some(&(cb, vb))) if ca == cb => {
                        // pivot_row holds only active columns, so ca is active
                        let v = va - factor * vb;
                        if v.abs() > DROP_TOL {
                            merged.push((ca, v));
                        } else {
                            self.col_count[ca as usize] -= 1;
                        }
                        a += 1;
                        b += 1;
                    }
                    (Some(&(ca, va)), Some(&(cb, _))) if ca < cb => {
                        merged.push((ca, va));
                        a += 1;
                    }
                    (Some(_), Some(&(cb, vb))) => {
                        let v = -factor * vb;
                        if v.abs() > DROP_TOL {
                            merged.push((cb, v));
                            self.col_count[cb as usize] += 1;
                            fill += 1;
                        }
                        b += 1;
                    }
                    (Some(&(ca, va)), None) => {
                        merged.push((ca, va));
                        a += 1;
                    }
                    (None, Some(&(cb, vb))) => {
                        let v = -factor * vb;
                        if v.abs() > DROP_TOL {
                            merged.push((cb, v));
                            self.col_count[cb as usize] += 1;
                            fill += 1;
                        }
                        b += 1;
                    }
                    (None, None) => unreachable!(),
                }
            }
            // drop the (now inactive) pivot-column entry from the row; keep
            // other inactive-column entries (they are L/U factors)
            self.rows[k] = merged;
        }

        self.eliminated += 1;
        EliminationRecord {
            fill,
            pivot_value: pval,
            multipliers,
            pivot_row,
        }
    }

    /// Recomputes column counts from scratch (test/debug invariant check).
    pub fn recount_cols(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.n];
        for i in 0..self.n {
            if !self.row_active[i] {
                continue;
            }
            for &(c, _) in &self.rows[i] {
                if self.col_active[c as usize] {
                    counts[c as usize] += 1;
                }
            }
        }
        counts
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // column indices are the semantics under test
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn small() -> EliminationWork {
        // [2 1 0]
        // [1 3 1]
        // [0 1 4]
        let mut c = Coo::new(3, 3);
        for (i, j, v) in [
            (0, 0, 2.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 1, 3.0),
            (1, 2, 1.0),
            (2, 1, 1.0),
            (2, 2, 4.0),
        ] {
            c.push(i, j, v);
        }
        EliminationWork::from_csr(&c.to_csr())
    }

    #[test]
    fn initial_counts() {
        let w = small();
        assert_eq!(w.row_count(0), 2);
        assert_eq!(w.row_count(1), 3);
        assert_eq!(w.col_count(1), 3);
        assert_eq!(w.markowitz_cost(0, 0), 1); // (2-1)(2-1)
        assert_eq!(w.markowitz_cost(1, 1), 2 * 2);
    }

    #[test]
    fn eliminate_updates_values_and_counts() {
        let mut w = small();
        let fill = w.eliminate(0, 0);
        assert_eq!(fill, 0, "no new pattern entries here");
        assert!(!w.is_row_active(0));
        assert!(!w.is_col_active(0));
        // row 1: a11 ← 3 − (1/2)·1 = 2.5
        assert_eq!(w.get(1, 1), Some(2.5));
        assert_eq!(w.recount_cols(), {
            let mut v = vec![0, 0, 0];
            v[1] = w.col_count(1);
            v[2] = w.col_count(2);
            v
        });
    }

    #[test]
    fn fill_in_is_created() {
        // [1 1 0]
        // [1 0 1]   pivot (0,0) ⇒ row1 gains a (1,1) fill entry
        // [0 0 1]
        let mut c = Coo::new(3, 3);
        for (i, j, v) in [
            (0, 0, 1.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 2, 1.0),
            (2, 2, 1.0),
        ] {
            c.push(i, j, v);
        }
        let mut w = EliminationWork::from_csr(&c.to_csr());
        let fill = w.eliminate(0, 0);
        assert_eq!(fill, 1);
        assert_eq!(w.get(1, 1), Some(-1.0));
    }

    #[test]
    fn counts_stay_consistent_across_eliminations() {
        let m = crate::gen::stencil7(4, 4, 2, 5);
        let mut w = EliminationWork::from_csr(&m);
        for _ in 0..10 {
            // pick the first active row's first active entry as pivot
            let pi = w.active_rows().next().unwrap();
            let pj = w
                .row(pi)
                .iter()
                .find(|&&(c, _)| w.is_col_active(c as usize))
                .map(|&(c, _)| c as usize)
                .unwrap();
            w.eliminate(pi, pj);
            let recount = w.recount_cols();
            for j in 0..w.n() {
                if w.is_col_active(j) {
                    assert_eq!(w.col_count(j), recount[j], "col {j}");
                }
            }
        }
        assert_eq!(w.eliminated(), 10);
    }

    #[test]
    fn full_elimination_terminates() {
        let m = crate::gen::stencil7(3, 3, 1, 2);
        let mut w = EliminationWork::from_csr(&m);
        for _ in 0..w.n() {
            let pi = w.active_rows().next().unwrap();
            // diagonal pivoting works for this dominant stencil
            w.eliminate(pi, pi);
        }
        assert_eq!(w.eliminated(), 9);
        assert_eq!(w.active_rows().count(), 0);
    }

    #[test]
    #[should_panic(expected = "pivot inactive")]
    fn double_elimination_panics() {
        let mut w = small();
        w.eliminate(0, 0);
        w.eliminate(0, 0);
    }

    #[test]
    fn row_abs_max_ignores_inactive_columns() {
        let mut w = small();
        assert_eq!(w.row_abs_max(1), 3.0);
        // pivot (2,2): row 1 holds a12 = 1, so a11 ← 3 − (1/4)·1 = 2.75,
        // and column 2 drops out of row 1's active view
        w.eliminate(2, 2);
        assert_eq!(w.row_abs_max(1), 2.75);
        // pivot (1,1): a00 ← 2 − (1/2.75)·1
        w.eliminate(1, 1);
        let expect = 2.0 - 1.0 / 2.75;
        assert!((w.row_abs_max(0) - expect).abs() < 1e-12);
    }
}
