//! Threshold Markowitz pivot searching (the MA28/MA30AD discipline).
//!
//! MA30AD's loops 270 and 320 "cooperatively search for a pivot": among
//! candidate rows, find the entry minimizing the Markowitz cost
//! `(r_i − 1)(c_j − 1)` subject to the numerical threshold
//! `|a_ij| ≥ u · max_k |a_ik|`. The search over candidate rows is the WHILE
//! loop the paper parallelizes with Induction-1/General-3, using a
//! time-stamp-ordered minimum reduction to preserve sequential consistency
//! (the sequential code takes the *first* minimal-cost pivot in row order).

use crate::work::EliminationWork;

/// A selected pivot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pivot {
    /// Pivot row.
    pub row: usize,
    /// Pivot column.
    pub col: usize,
    /// Markowitz cost `(r−1)(c−1)`.
    pub cost: u64,
    /// Pivot value.
    pub value: f64,
}

/// Best admissible entry of row `i` under relative threshold `u ∈ (0, 1]`:
/// minimal Markowitz cost among entries with `|a_ij| ≥ u · row_abs_max(i)`,
/// ties broken toward the smallest column. `None` for empty/inactive rows.
pub fn best_in_row(work: &EliminationWork, i: usize, u: f64) -> Option<Pivot> {
    if !work.is_row_active(i) {
        return None;
    }
    let max = work.row_abs_max(i);
    if max == 0.0 {
        return None;
    }
    let mut best: Option<Pivot> = None;
    for &(c, v) in work.row(i) {
        let j = c as usize;
        if !work.is_col_active(j) || v.abs() < u * max {
            continue;
        }
        let cost = work.markowitz_cost(i, j);
        let better = match best {
            None => true,
            Some(b) => cost < b.cost,
        };
        if better {
            best = Some(Pivot {
                row: i,
                col: j,
                cost,
                value: v,
            });
        }
    }
    best
}

/// Sequential pivot search over `candidate_rows`, in order, with the MA28
/// early-exit: the scan stops as soon as a pivot of cost 0 (a singleton
/// row/column) is found — this conditional exit is what makes the loop a
/// WHILE loop rather than a DO loop. Returns the first pivot achieving the
/// minimal cost seen.
pub fn search_pivot(
    work: &EliminationWork,
    candidate_rows: impl IntoIterator<Item = usize>,
    u: f64,
) -> Option<Pivot> {
    let mut best: Option<Pivot> = None;
    for i in candidate_rows {
        if let Some(p) = best_in_row(work, i, u) {
            let better = match best {
                None => true,
                Some(b) => p.cost < b.cost,
            };
            if better {
                best = Some(p);
                if p.cost == 0 {
                    break; // cannot do better: conditional exit
                }
            }
        }
    }
    best
}

/// Candidate rows in MA28 order: active rows sorted by ascending active-row
/// count (fewest-entries first), ties by index. MA30AD searches rows of
/// count 1, then 2, … — this is the iteration space of loops 270/320.
pub fn candidate_rows(work: &EliminationWork) -> Vec<usize> {
    let mut rows: Vec<usize> = work.active_rows().collect();
    rows.sort_by_key(|&i| (work.row_count(i), i));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::gen::stencil7;

    fn work_from(entries: &[(usize, usize, f64)], n: usize) -> EliminationWork {
        let mut c = Coo::new(n, n);
        for &(i, j, v) in entries {
            c.push(i, j, v);
        }
        EliminationWork::from_csr(&c.to_csr())
    }

    #[test]
    fn best_in_row_respects_threshold() {
        // row 0: 10 at col 0 (dense col), 1 at col 1 (sparse col)
        let w = work_from(
            &[
                (0, 0, 10.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (2, 0, 1.0),
                (1, 1, 0.0),
            ],
            3,
        );
        // u = 1.0: only the 10.0 entry is admissible despite worse cost
        let p = best_in_row(&w, 0, 1.0).unwrap();
        assert_eq!(p.col, 0);
        // u = 0.01: the sparse column wins on Markowitz cost
        let p = best_in_row(&w, 0, 0.01).unwrap();
        assert_eq!(p.col, 1);
        assert_eq!(p.cost, 0); // (2-1)(1-1)
    }

    #[test]
    fn best_in_row_skips_inactive() {
        let mut w = work_from(&[(0, 0, 1.0), (1, 1, 1.0)], 2);
        w.eliminate(1, 1);
        assert_eq!(best_in_row(&w, 1, 0.1), None);
        assert!(best_in_row(&w, 0, 0.1).is_some());
    }

    #[test]
    fn search_finds_minimum_cost_pivot() {
        let w = work_from(
            &[
                (0, 0, 1.0),
                (0, 1, 1.0),
                (0, 2, 1.0), // row 0: count 3
                (1, 1, 5.0), // row 1: singleton → cost 0 possible
                (2, 0, 1.0),
                (2, 2, 1.0),
            ],
            3,
        );
        let p = search_pivot(&w, candidate_rows(&w), 0.1).unwrap();
        // row 1's (1,1): row count 1, col 1 count 2 → cost 0·1 = 0
        assert_eq!((p.row, p.col, p.cost), (1, 1, 0));
    }

    #[test]
    fn candidate_rows_sorted_by_count() {
        let w = work_from(
            &[
                (0, 0, 1.0),
                (0, 1, 1.0),
                (1, 1, 1.0),
                (2, 0, 1.0),
                (2, 1, 1.0),
                (2, 2, 1.0),
            ],
            3,
        );
        assert_eq!(candidate_rows(&w), vec![1, 0, 2]);
    }

    #[test]
    fn full_markowitz_factorization_runs() {
        let m = stencil7(5, 4, 2, 3);
        let mut w = EliminationWork::from_csr(&m);
        let mut total_fill = 0usize;
        for step in 0..w.n() {
            let p = search_pivot(&w, candidate_rows(&w), 0.1)
                .unwrap_or_else(|| panic!("no pivot at step {step}"));
            total_fill += w.eliminate(p.row, p.col);
        }
        assert_eq!(w.eliminated(), 40);
        // Markowitz ordering keeps fill modest on a stencil
        assert!(total_fill < m.nnz() * 3, "fill {total_fill}");
    }

    #[test]
    fn zero_cost_exit_fires() {
        // A singleton row early in candidate order must stop the scan.
        let w = work_from(&[(0, 0, 3.0), (1, 0, 1.0), (1, 1, 1.0)], 2);
        let order = candidate_rows(&w);
        assert_eq!(order[0], 0);
        let p = search_pivot(&w, order, 0.1).unwrap();
        assert_eq!(p.cost, 0);
        assert_eq!(p.row, 0);
    }

    #[test]
    fn empty_workspace_has_no_pivot() {
        let mut w = work_from(&[(0, 0, 1.0)], 1);
        w.eliminate(0, 0);
        assert_eq!(search_pivot(&w, candidate_rows(&w), 0.5), None);
    }
}
