//! Compressed sparse row storage.

/// An immutable sparse matrix in CSR form.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl Csr {
    /// Assembles a CSR from raw parts.
    ///
    /// # Panics
    /// Panics if the parts are inconsistent (pointer length, monotonicity,
    /// index bounds, or unsorted columns within a row).
    pub fn from_parts(
        n_rows: usize,
        n_cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), n_rows + 1, "row_ptr length");
        assert_eq!(col_idx.len(), values.len(), "col/value length");
        assert_eq!(*row_ptr.last().unwrap(), col_idx.len(), "row_ptr end");
        for w in row_ptr.windows(2) {
            assert!(w[0] <= w[1], "row_ptr must be monotone");
            let row = &col_idx[w[0]..w[1]];
            for pair in row.windows(2) {
                assert!(pair[0] < pair[1], "columns must be strictly sorted");
            }
        }
        assert!(
            col_idx.iter().all(|&c| (c as usize) < n_cols),
            "column index out of bounds"
        );
        Csr {
            n_rows,
            n_cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Row dimension.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Column dimension.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Column indices of row `i` (strictly increasing).
    pub fn row_cols(&self, i: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Values of row `i`, parallel to [`Csr::row_cols`].
    pub fn row_vals(&self, i: usize) -> &[f64] {
        &self.values[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Number of stored entries in row `i`.
    pub fn row_len(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Value at `(i, j)` if stored.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        let cols = self.row_cols(i);
        cols.binary_search(&(j as u32))
            .ok()
            .map(|k| self.row_vals(i)[k])
    }

    /// Per-column stored-entry counts.
    pub fn col_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.n_cols];
        for &c in &self.col_idx {
            counts[c as usize] += 1;
        }
        counts
    }

    /// `y = A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != n_cols`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_cols, "dimension mismatch");
        let mut y = vec![0.0; self.n_rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (&c, &v) in self.row_cols(i).iter().zip(self.row_vals(i)) {
                acc += v * x[c as usize];
            }
            *yi = acc;
        }
        y
    }

    /// The transpose (also usable as a CSC view of `self`).
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.n_cols];
        for &c in &self.col_idx {
            counts[c as usize] += 1;
        }
        let mut row_ptr = Vec::with_capacity(self.n_cols + 1);
        row_ptr.push(0usize);
        for &c in &counts {
            row_ptr.push(row_ptr.last().unwrap() + c);
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        for i in 0..self.n_rows {
            for (&c, &v) in self.row_cols(i).iter().zip(self.row_vals(i)) {
                let dst = cursor[c as usize];
                col_idx[dst] = i as u32;
                values[dst] = v;
                cursor[c as usize] += 1;
            }
        }
        Csr::from_parts(self.n_cols, self.n_rows, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sample() -> Csr {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        let mut c = Coo::new(3, 3);
        for (i, j, v) in [
            (0, 0, 1.0),
            (0, 2, 2.0),
            (1, 1, 3.0),
            (2, 0, 4.0),
            (2, 2, 5.0),
        ] {
            c.push(i, j, v);
        }
        c.to_csr()
    }

    #[test]
    fn accessors() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row_len(0), 2);
        assert_eq!(m.get(0, 2), Some(2.0));
        assert_eq!(m.get(0, 1), None);
        assert_eq!(m.col_counts(), vec![2, 1, 2]);
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let y = m.spmv(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![1.0 + 6.0, 6.0, 4.0 + 15.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(2, 0), Some(2.0));
        assert_eq!(t.get(0, 2), Some(4.0));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_of_rectangular() {
        let mut c = Coo::new(2, 4);
        c.push(0, 3, 7.0);
        c.push(1, 0, 1.0);
        let m = c.to_csr();
        let t = m.transpose();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.get(3, 0), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn unsorted_columns_rejected() {
        let _ = Csr::from_parts(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn spmv_dimension_checked() {
        let _ = sample().spmv(&[1.0, 2.0]);
    }
}
