//! Seeded generators for Harwell–Boeing-class test matrices.
//!
//! The paper's inputs are four matrices from the Harwell–Boeing collection.
//! The originals are distributed under their own terms and are not bundled
//! here; instead each generator produces a matrix of the **same order, the
//! same nonzero budget and the same pattern class**, deterministically from
//! a seed:
//!
//! | paper input | order | nnz | class | substitute |
//! |---|---|---|---|---|
//! | GEMAT11 | 4929 | 33108 | power-flow basis, irregular unsymmetric | [`gemat_like`] |
//! | GEMAT12 | 4929 | 33044 | power-flow basis, irregular unsymmetric | [`gemat_like`] |
//! | ORSREG1 | 2205 | 14133 | 21×21×5 oil-reservoir 7-point stencil | [`orsreg_like`] |
//! | SAYLR4 | 3564 | 22316 | 33×6×18 reservoir 7-point stencil | [`saylr_like`] |
//!
//! The pivot-search loops the paper parallelizes are sensitive to the row
//! count distribution and density, not to exact entry values — the
//! generators reproduce the former (skewed, heavy-tailed rows for GEMAT;
//! uniform 7-ish rows for the stencils).

use crate::coo::Coo;
use crate::csr::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A GEMAT-class matrix: `n × n`, ~`nnz` stored entries, nonzero diagonal,
/// heavy-tailed row lengths (a few "bus" rows touch many columns, most rows
/// touch 2–6), unsymmetric pattern, values in `[-10, 10]` with a dominant
/// diagonal so threshold pivoting has work to do.
pub fn gemat_like(n: usize, nnz: usize, seed: u64) -> Csr {
    assert!(nnz >= n, "need at least a full diagonal");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    // diagonal: always present, dominant
    for i in 0..n {
        coo.push(i, i, 10.0 + rng.gen_range(0.0..10.0));
    }
    let mut remaining = nnz - n;
    // ~2% heavy rows get long spans (power-network buses)
    let heavy = (n / 50).max(1);
    let heavy_budget = remaining / 3;
    let mut placed = 0usize;
    for _ in 0..heavy {
        let i = rng.gen_range(0..n);
        let len = rng.gen_range(20..60).min(n - 1);
        for _ in 0..len {
            if placed >= heavy_budget {
                break;
            }
            let j = rng.gen_range(0..n);
            if j != i {
                coo.push(i, j, rng.gen_range(-10.0..10.0f64));
                placed += 1;
            }
        }
    }
    remaining -= placed;
    // the rest: short random rows (duplicates are summed, so the final nnz
    // lands slightly under the budget — matching HB counts loosely)
    for _ in 0..remaining {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i != j {
            coo.push(i, j, rng.gen_range(-10.0..10.0f64));
        }
    }
    coo.to_csr()
}

/// A 7-point stencil on an `nx × ny × nz` grid (ORSREG/SAYLR class):
/// diagonal plus the six axis neighbours, diagonally dominant values.
pub fn stencil7(nx: usize, ny: usize, nz: usize, seed: u64) -> Csr {
    let n = nx * ny * nz;
    let mut rng = StdRng::seed_from_u64(seed);
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut coo = Coo::new(n, n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let i = idx(x, y, z);
                coo.push(i, i, 12.0 + rng.gen_range(0.0..4.0));
                let mut off = |j: usize| coo.push(i, j, -1.0 - rng.gen_range(0.0..1.0f64));
                if x > 0 {
                    off(idx(x - 1, y, z));
                }
                if x + 1 < nx {
                    off(idx(x + 1, y, z));
                }
                if y > 0 {
                    off(idx(x, y - 1, z));
                }
                if y + 1 < ny {
                    off(idx(x, y + 1, z));
                }
                if z > 0 {
                    off(idx(x, y, z - 1));
                }
                if z + 1 < nz {
                    off(idx(x, y, z + 1));
                }
            }
        }
    }
    coo.to_csr()
}

/// ORSREG1-class input: 21×21×5 reservoir stencil, n = 2205.
pub fn orsreg_like(seed: u64) -> Csr {
    stencil7(21, 21, 5, seed)
}

/// SAYLR4-class input: 33×6×18 reservoir stencil, n = 3564.
pub fn saylr_like(seed: u64) -> Csr {
    stencil7(33, 6, 18, seed)
}

/// GEMAT11-class input: n = 4929, nnz ≈ 33108.
pub fn gemat11_like(seed: u64) -> Csr {
    gemat_like(4929, 33108, seed)
}

/// GEMAT12-class input: n = 4929, nnz ≈ 33044.
pub fn gemat12_like(seed: u64) -> Csr {
    gemat_like(4929, 33044, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemat_matches_order_and_budget() {
        let m = gemat11_like(1);
        assert_eq!(m.n_rows(), 4929);
        // duplicate triplets collapse: allow 10% under budget
        assert!(m.nnz() > 29_000 && m.nnz() <= 33_108, "nnz = {}", m.nnz());
        // diagonal fully present
        for i in (0..m.n_rows()).step_by(97) {
            assert!(m.get(i, i).is_some(), "missing diagonal at {i}");
        }
    }

    #[test]
    fn gemat_is_deterministic_per_seed() {
        assert_eq!(gemat11_like(7), gemat11_like(7));
        assert_ne!(gemat11_like(7).nnz(), 0);
    }

    #[test]
    fn gemat_rows_are_heavy_tailed() {
        let m = gemat11_like(1);
        let lens: Vec<usize> = (0..m.n_rows()).map(|i| m.row_len(i)).collect();
        let max = *lens.iter().max().unwrap();
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        assert!(max as f64 > 4.0 * mean, "max {max} vs mean {mean:.1}");
    }

    #[test]
    fn orsreg_matches_hb_shape() {
        let m = orsreg_like(3);
        assert_eq!(m.n_rows(), 2205);
        // 7-point stencil on 21×21×5: interior rows have 7 entries
        assert_eq!(m.nnz(), 14_133, "exact stencil count");
        let interior = (2 * 21 + 10) * 21 + 10; // some interior point
        assert_eq!(m.row_len(interior), 7);
    }

    #[test]
    fn saylr_matches_hb_shape() {
        let m = saylr_like(3);
        assert_eq!(m.n_rows(), 3564);
        // a complete 7-point stencil on 33×6×18 stores 23148 entries; the
        // real SAYLR4 (22316) is missing a few boundary couplings — within
        // 4% of the substitute, which is what the pivot loops care about
        assert_eq!(m.nnz(), 23_148);
        assert!((m.nnz() as f64 - 22_316.0).abs() / 22_316.0 < 0.04);
    }

    #[test]
    fn stencil_is_structurally_symmetric() {
        let m = stencil7(4, 3, 2, 9);
        let t = m.transpose();
        for i in 0..m.n_rows() {
            assert_eq!(m.row_cols(i), t.row_cols(i), "row {i}");
        }
    }

    #[test]
    fn stencil_is_diagonally_dominant() {
        let m = stencil7(5, 5, 3, 11);
        for i in 0..m.n_rows() {
            let diag = m.get(i, i).unwrap();
            let off: f64 = m
                .row_cols(i)
                .iter()
                .zip(m.row_vals(i))
                .filter(|(&c, _)| c as usize != i)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(diag > off, "row {i}: {diag} vs {off}");
        }
    }
}
