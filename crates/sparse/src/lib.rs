//! Sparse-matrix substrate for the paper's evaluation loops.
//!
//! The paper's experiments run on loops from MA28 (a sparse unsymmetric
//! solver), MCSPARSE (a parallel sparse solver) and sparse inputs from the
//! Harwell–Boeing collection (gemat11/12, orsreg1, saylr4). This crate
//! provides the pieces those loops need:
//!
//! * [`coo`]/[`csr`] — triplet assembly and compressed sparse row storage;
//! * [`gen`] — deterministic, seeded generators producing matrices of the
//!   same order, density and pattern class as the four Harwell–Boeing
//!   inputs (the originals are not redistributable; see DESIGN.md for the
//!   substitution argument);
//! * [`work`] — a mutable elimination workspace (row lists + column
//!   counts) supporting fill-in, as MA30AD maintains during factorization;
//! * [`markowitz`] — threshold Markowitz pivot searching, both the
//!   sequential reference and the iteration-decomposed form the paper's
//!   loops 270/320/500 parallelize;
//! * [`lu`] — a complete sparse LU factorization + solve built on the
//!   workspace, with a pluggable pivot chooser so the parallel
//!   (sequentially-consistent) search drops in.

pub mod coo;
pub mod csr;
pub mod gen;
pub mod lu;
pub mod markowitz;
pub mod work;

pub use coo::Coo;
pub use csr::Csr;
pub use gen::{gemat_like, orsreg_like, saylr_like};
pub use lu::{factorize, factorize_with, LuFactors};
pub use markowitz::{best_in_row, search_pivot, Pivot};
pub use work::EliminationWork;
