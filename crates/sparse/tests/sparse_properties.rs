//! Property tests on the sparse substrate: COO assembly vs a dense model,
//! transpose involution, and elimination-workspace invariants under random
//! pivot sequences.

#![allow(clippy::needless_range_loop)] // dense-model comparisons index by coordinate

use proptest::prelude::*;
use std::collections::HashMap;
use wlp_sparse::{Coo, EliminationWork};

fn triplets_strategy(n: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec((0..n, 0..n, -10.0f64..10.0), 0..80)
}

fn build(n: usize, trips: &[(usize, usize, f64)]) -> Coo {
    let mut coo = Coo::new(n, n);
    for &(i, j, v) in trips {
        coo.push(i, j, v);
    }
    coo
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn coo_to_csr_matches_dense_accumulation(trips in triplets_strategy(8)) {
        let csr = build(8, &trips).to_csr();
        let mut dense: HashMap<(usize, usize), f64> = HashMap::new();
        for &(i, j, v) in &trips {
            *dense.entry((i, j)).or_insert(0.0) += v;
        }
        for i in 0..8 {
            for j in 0..8 {
                let want = dense.get(&(i, j)).copied().filter(|v| *v != 0.0);
                let got = csr.get(i, j);
                // summation order differs between CSR assembly and the
                // model: compare with last-ulp tolerance, treating values
                // within it of zero as absent (cancellation may land on
                // exact 0.0 on one side and an ulp on the other)
                let g = got.unwrap_or(0.0);
                let w = want.unwrap_or(0.0);
                prop_assert!(
                    (g - w).abs() <= 1e-12 * w.abs().max(1.0),
                    "({}, {}): {:?} vs {:?}",
                    i,
                    j,
                    got,
                    want
                );
            }
        }
        // nnz is exact up to cancellation landing on 0.0 in one summation
        // order and an ulp in the other
        let definite = dense.values().filter(|v| v.abs() > 1e-9).count();
        prop_assert!(csr.nnz() >= definite && csr.nnz() <= dense.len());
    }

    #[test]
    fn transpose_is_an_involution(trips in triplets_strategy(10)) {
        let csr = build(10, &trips).to_csr();
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn spmv_agrees_with_dense(trips in triplets_strategy(6), x in prop::collection::vec(-5.0f64..5.0, 6)) {
        let csr = build(6, &trips).to_csr();
        let y = csr.spmv(&x);
        for i in 0..6 {
            let mut want = 0.0;
            for j in 0..6 {
                want += csr.get(i, j).unwrap_or(0.0) * x[j];
            }
            prop_assert!((y[i] - want).abs() < 1e-9, "row {}: {} vs {}", i, y[i], want);
        }
    }

    #[test]
    fn elimination_keeps_column_counts_consistent(
        trips in triplets_strategy(7),
        pivots in prop::collection::vec((0usize..7, 0usize..7), 0..7),
    ) {
        // put a strong diagonal in so pivots exist
        let mut all = trips.clone();
        for d in 0..7 {
            all.push((d, d, 50.0 + d as f64));
        }
        let mut work = EliminationWork::from_csr(&build(7, &all).to_csr());
        for (pi, pj) in pivots {
            if !work.is_row_active(pi) || !work.is_col_active(pj) || work.get(pi, pj).is_none() {
                continue;
            }
            work.eliminate(pi, pj);
            // column counts must equal a from-scratch recount
            let recount = work.recount_cols();
            for j in 0..7 {
                if work.is_col_active(j) {
                    prop_assert_eq!(work.col_count(j), recount[j], "col {}", j);
                }
            }
            // Markowitz costs stay within structural bounds
            for i in (0..7).filter(|&i| work.is_row_active(i)) {
                let rc = work.row_count(i) as u64;
                for &(c, _) in work.row(i) {
                    let j = c as usize;
                    if work.is_col_active(j) {
                        let cost = work.markowitz_cost(i, j);
                        prop_assert!(cost <= (rc.max(1) - 1) * 6, "cost bound at ({}, {})", i, j);
                    }
                }
            }
        }
    }

    #[test]
    fn eliminated_rows_and_cols_never_return(
        trips in triplets_strategy(6),
        pivots in prop::collection::vec((0usize..6, 0usize..6), 1..6),
    ) {
        let mut all = trips.clone();
        for d in 0..6 {
            all.push((d, d, 100.0));
        }
        let mut work = EliminationWork::from_csr(&build(6, &all).to_csr());
        let mut gone_rows = Vec::new();
        for (pi, pj) in pivots {
            if work.is_row_active(pi) && work.is_col_active(pj) && work.get(pi, pj).is_some() {
                work.eliminate(pi, pj);
                gone_rows.push(pi);
            }
            for &r in &gone_rows {
                prop_assert!(!work.is_row_active(r));
            }
        }
        prop_assert_eq!(work.eliminated(), gone_rows.len());
    }
}
