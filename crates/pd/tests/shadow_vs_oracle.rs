//! Property tests: the shadow analysis must agree with the brute-force
//! oracle on arbitrary access patterns and arbitrary last-valid cuts.

use proptest::prelude::*;
use wlp_pd::{oracle_verdict, Access, Shadow};
use wlp_runtime::Pool;

fn access_strategy(m: usize) -> impl Strategy<Value = Access> {
    prop_oneof![
        (0..m).prop_map(Access::Read),
        (0..m).prop_map(Access::Write),
    ]
}

fn iterations_strategy(m: usize) -> impl Strategy<Value = Vec<Vec<Access>>> {
    prop::collection::vec(prop::collection::vec(access_strategy(m), 0..6), 0..12)
}

fn shadow_verdict(iterations: &[Vec<Access>], last_valid: Option<usize>, m: usize) -> (bool, bool) {
    let sh = Shadow::new(m);
    for (i, accs) in iterations.iter().enumerate() {
        let mut marker = sh.iteration(i);
        for acc in accs {
            match *acc {
                Access::Read(e) => marker.mark_read(e),
                Access::Write(e) => marker.mark_write(e),
            }
        }
    }
    let v = sh.analyze(&Pool::new(2), last_valid, 64);
    (v.doall, v.privatized_doall)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn shadow_matches_oracle_without_overshoot(iters in iterations_strategy(8)) {
        let expected = oracle_verdict(&iters, None);
        let got = shadow_verdict(&iters, None, 8);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn shadow_matches_oracle_for_every_cut(iters in iterations_strategy(6)) {
        for li in 0..iters.len() {
            let expected = oracle_verdict(&iters, Some(li));
            let got = shadow_verdict(&iters, Some(li), 6);
            prop_assert_eq!(got, expected, "cut at last_valid = {}", li);
        }
    }

    #[test]
    fn privatized_is_implied_by_doall(iters in iterations_strategy(8)) {
        let (doall, privatized) = shadow_verdict(&iters, None, 8);
        // valid-as-is loops are trivially valid privatized
        prop_assert!(!doall || privatized);
    }

    #[test]
    fn marking_order_across_iterations_is_irrelevant(
        iters in iterations_strategy(6),
        seed in any::<u64>(),
    ) {
        // Mark iterations in a shuffled order (as a parallel execution
        // would); the verdict must not change.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut order: Vec<usize> = (0..iters.len()).collect();
        order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));

        let sh = Shadow::new(6);
        for &i in &order {
            let mut marker = sh.iteration(i);
            for acc in &iters[i] {
                match *acc {
                    Access::Read(e) => marker.mark_read(e),
                    Access::Write(e) => marker.mark_write(e),
                }
            }
        }
        let v = sh.analyze(&Pool::new(2), None, 64);
        prop_assert_eq!((v.doall, v.privatized_doall), oracle_verdict(&iters, None));
    }
}

/// The sparse shadow must agree with the dense shadow (and hence the
/// oracle) on every pattern and cut.
fn sparse_verdict(iterations: &[Vec<Access>], last_valid: Option<usize>) -> (bool, bool) {
    let sh = wlp_pd::SparseShadow::new(4);
    for (i, accs) in iterations.iter().enumerate() {
        let mut marker = sh.iteration(i);
        for acc in accs {
            match *acc {
                Access::Read(e) => marker.mark_read(e as u64),
                Access::Write(e) => marker.mark_write(e as u64),
            }
        }
    }
    let v = sh.analyze(last_valid, 64);
    (v.doall, v.privatized_doall)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sparse_shadow_matches_dense(iters in iterations_strategy(8)) {
        prop_assert_eq!(sparse_verdict(&iters, None), shadow_verdict(&iters, None, 8));
    }

    #[test]
    fn sparse_shadow_matches_dense_for_every_cut(iters in iterations_strategy(6)) {
        for li in 0..iters.len() {
            prop_assert_eq!(
                sparse_verdict(&iters, Some(li)),
                shadow_verdict(&iters, Some(li), 6),
                "cut at {}", li
            );
        }
    }
}
