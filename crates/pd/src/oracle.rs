//! Ground-truth dependence checking over explicit access logs.
//!
//! The oracle implements, by brute force over complete per-iteration access
//! sequences, the definitions the shadow analysis must agree with:
//!
//! * a loop is a valid **DOALL** iff no element is accessed by two
//!   different iterations with at least one access being a write, *except*
//!   that reads covered by an earlier write in their own iteration never
//!   participate in a dependence (they observe their own iteration's
//!   value);
//! * a loop is a valid **privatized DOALL** iff, additionally ignoring
//!   output dependences, every read of a written element is covered by a
//!   write earlier in the same iteration (the paper's Privatization
//!   Criterion).
//!
//! Property tests in this crate and in `wlp-core` drive random access
//! patterns through both the oracle and [`crate::Shadow`] and require
//! identical verdicts for every possible last-valid-iteration cut.

use std::collections::{HashMap, HashSet};

/// One dynamic access to the array under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Read of element `e`.
    Read(usize),
    /// Write of element `e`.
    Write(usize),
}

/// Brute-force verdict over per-iteration access logs.
///
/// `iterations[i]` is iteration `i`'s access sequence in program order.
/// `last_valid` restricts the analysis to iterations `0..=last_valid`
/// (`None` = all iterations). Returns `(doall, privatized_doall)`.
pub fn oracle_verdict(iterations: &[Vec<Access>], last_valid: Option<usize>) -> (bool, bool) {
    let cut = last_valid.map_or(iterations.len(), |li| (li + 1).min(iterations.len()));

    // Per element: writing iterations and exposed-reading iterations.
    let mut writers: HashMap<usize, HashSet<usize>> = HashMap::new();
    let mut exposed: HashMap<usize, HashSet<usize>> = HashMap::new();

    for (i, accs) in iterations.iter().take(cut).enumerate() {
        let mut written_here: HashSet<usize> = HashSet::new();
        for acc in accs {
            match *acc {
                Access::Write(e) => {
                    written_here.insert(e);
                    writers.entry(e).or_default().insert(i);
                }
                Access::Read(e) => {
                    if !written_here.contains(&e) {
                        exposed.entry(e).or_default().insert(i);
                    }
                }
            }
        }
    }

    let mut doall = true;
    let mut privatized = true;

    // Overshoot hazard (in-place execution only, see the shadow module
    // docs): an element written by an overshot iteration while also
    // accessed by a valid one. The privatized verdict is exempt.
    for (i, accs) in iterations.iter().enumerate().skip(cut) {
        for acc in accs {
            if let Access::Write(e) = *acc {
                let touched_validly = iterations.iter().take(cut).any(|valid| {
                    valid
                        .iter()
                        .any(|a| matches!(*a, Access::Read(x) | Access::Write(x) if x == e))
                });
                if touched_validly {
                    doall = false;
                }
            }
        }
        let _ = i;
    }
    let empty = HashSet::new();
    for (e, w) in &writers {
        let er = exposed.get(e).unwrap_or(&empty);
        if w.len() >= 2 {
            doall = false;
        }
        // exposed read outside the write set ⇒ cross-iteration flow/anti
        // dependence (with |W| ≥ 2, *any* exposed read is outside some write)
        if !er.is_empty() && (w.len() >= 2 || er.iter().any(|i| !w.contains(i))) {
            privatized = false;
            doall = false;
        }
    }
    (doall, privatized)
}

#[cfg(test)]
mod tests {
    use super::*;
    use Access::{Read, Write};

    #[test]
    fn independent_iterations_pass() {
        let iters = vec![vec![Write(0), Read(0)], vec![Write(1)], vec![Read(2)]];
        assert_eq!(oracle_verdict(&iters, None), (true, true));
    }

    #[test]
    fn flow_dependence_fails_both() {
        let iters = vec![vec![Write(5)], vec![Read(5)]];
        assert_eq!(oracle_verdict(&iters, None), (false, false));
    }

    #[test]
    fn anti_dependence_fails_both() {
        let iters = vec![vec![Read(5)], vec![Write(5)]];
        assert_eq!(oracle_verdict(&iters, None), (false, false));
    }

    #[test]
    fn output_dependence_privatizes() {
        // tmp-style element: written (then covered-read) in every iteration
        let iters = vec![
            vec![Write(0), Read(0)],
            vec![Write(0), Read(0)],
            vec![Write(0)],
        ];
        assert_eq!(oracle_verdict(&iters, None), (false, true));
    }

    #[test]
    fn figure5b_swap_loop_privatizes_tmp() {
        // s4: tmp = A[2i]; A[2i] = A[2i-1]; s6: A[2i-1] = tmp
        // model tmp as element 100; A as elements 0..; iterations i=1..4
        let iters: Vec<Vec<Access>> = (1usize..=4)
            .map(|i| {
                vec![
                    Read(2 * i),
                    Write(100), // tmp = A[2i]
                    Read(2 * i - 1),
                    Write(2 * i), // A[2i] = A[2i-1]
                    Read(100),
                    Write(2 * i - 1), // A[2i-1] = tmp
                ]
            })
            .collect();
        // tmp (100) causes output deps across iterations but its reads are
        // covered → privatizable; A's accesses are disjoint per iteration.
        assert_eq!(oracle_verdict(&iters, None), (false, true));
    }

    #[test]
    fn figure5c_recurrence_fails() {
        // s4: A[i] = A[i] + A[i-1], i = 2..n — true recurrence
        let iters: Vec<Vec<Access>> = (2usize..6)
            .map(|i| vec![Read(i), Read(i - 1), Write(i)])
            .collect();
        assert_eq!(oracle_verdict(&iters, None), (false, false));
    }

    #[test]
    fn last_valid_cut_restores_validity() {
        let iters = vec![vec![Write(0)], vec![Write(1)], vec![Read(0)]];
        assert_eq!(oracle_verdict(&iters, None), (false, false));
        assert_eq!(oracle_verdict(&iters, Some(1)), (true, true));
    }

    #[test]
    fn empty_loop_is_valid() {
        assert_eq!(oracle_verdict(&[], None), (true, true));
    }
}
