//! Shadow arrays and the PD-test analysis.
//!
//! # Marking scheme
//!
//! For a shared array `A` of `m` elements under test, the shadow keeps two
//! marks per element:
//!
//! * a **write mark** (`Aw` in the paper): iterations that wrote the
//!   element;
//! * an **exposed-read mark** (`Ar`): iterations that read the element
//!   *before writing it within the same iteration*. An exposed read is
//!   simultaneously the "not privatizable in that iteration" information,
//!   so no separate `Ap` array is needed in this formulation.
//!
//! Instead of a boolean, each mark stores the **two smallest distinct
//! iteration numbers** that produced it, packed into one `AtomicU64`. This
//! is the time-stamping Section 5.1 requires for overshooting loops — and
//! keeping *two* stamps instead of the paper's one makes the filtered
//! analysis exact:
//!
//! Let `LI` be the last valid iteration and, per element `e`, let
//! `W(e)`/`ER(e)` be the sets of writing/exposed-reading iterations `≤ LI`.
//! The loop (restricted to valid iterations) is
//!
//! * a **valid DOALL as-is** iff for every `e`: `W(e) = ∅`, or
//!   `|W(e)| = 1 ∧ ER(e) ⊆ W(e)` (the only exposed read, if any, is in the
//!   single writing iteration itself — a loop-independent dependence);
//! * a **valid privatized DOALL** iff for every `e` there is no pair
//!   `r ∈ ER(e)`, `w ∈ W(e)` with `r ≠ w` — i.e. every read of a written
//!   element is covered by a write in its own iteration (the paper's
//!   Privatization Criterion), except that an element touched by a *single*
//!   iteration may freely read-then-write it.
//!
//! With the two smallest distinct stamps `(w₁, w₂)` and `(r₁, r₂)` these
//! predicates are decidable exactly for *any* `LI`:
//! `|W| ≥ 2 ⟺ w₂ ≤ LI`; `W = ∅ ⟺ w₁ > LI`; `ER ⊆ W ⟺ r₁ > LI ∨
//! (r₁ = w₁ ∧ r₂ > LI)` (when `|W| ≤ 1`). No conservatism is introduced by
//! the filtering.
//!
//! One further hazard exists only for **in-place** speculation (Section 4
//! execution, writes applied directly with time-stamps): an *overshot*
//! iteration's write to an element that a *valid* iteration also touched
//! may have been observed by the valid read, or may have clobbered the
//! valid write after its stamp was recorded — and the post-loop undo
//! restores neither effect. The `doall` verdict therefore additionally
//! fails any element with both valid-region activity and an overshot
//! writer. The `privatized_doall` verdict is exempt: privatized execution
//! confines overshot writes to per-processor overlays, and the
//! time-stamped copy-out already filters them.
//!
//! Marking is contention-free in the common path: each worker marks through
//! its own [`IterMarker`], whose covered-write set lives inline on the
//! marker (spilling to a heap set only for iterations that write more than
//! a handful of distinct elements) and whose access totals are buffered
//! locally, flushed with one `fetch_add` per counter when the marker drops.
//! Only the per-element stamp atomics are shared, updated with a `Relaxed`
//! CAS loop — the stamps carry plain data (iteration numbers), not
//! publication of other memory, so no acquire/release edges are needed on
//! the marking path; the region join of the executing [`Pool`] is the one
//! happens-before edge that orders *all* marking before the analysis reads
//! the cells.
//!
//! The post-execution analysis is **fully parallel** (a parallel fold over
//! 64-element bitset words), matching the paper's `O(a/p + log p)` bound.
//! Each word's sweep computes the per-element predicates branchlessly into
//! three masks (output dependence, exposed cross-iteration read, overshoot
//! hazard) and only falls into the conflict-recording slow path for words
//! with at least one bit set — on the common all-clear array the sweep is
//! a straight-line load/compare/or loop per element.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use wlp_runtime::{parallel_fold, Pool};

const UNMARKED: u32 = u32::MAX;

#[inline]
fn pack(min: u32, second: u32) -> u64 {
    ((min as u64) << 32) | second as u64
}

#[inline]
fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// Inserts iteration `t` into a packed (min, second-distinct-min) pair.
///
/// All orderings are `Relaxed`: the cell is self-contained data (two
/// iteration numbers updated in one 64-bit RMW), so the CAS needs no
/// acquire/release semantics — it never publishes or consumes other
/// memory. The analysis only reads the cells after the executing pool's
/// region join, which is the happens-before edge making every marker's
/// final stamp visible.
#[inline]
fn insert_stamp(cell: &AtomicU64, t: u32) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let (m, s) = unpack(cur);
        let new = if t < m {
            pack(t, m)
        } else if t == m || t >= s {
            return; // already represented, or not among two smallest
        } else {
            pack(m, t) // m < t < s
        };
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Reads a packed stamp pair as `(min, second)` iteration numbers.
/// `Relaxed` is sound for the same reason as [`insert_stamp`]: the region
/// join already ordered all marking before any analysis read.
#[inline]
fn stamps(cell: &AtomicU64) -> (u32, u32) {
    unpack(cell.load(Ordering::Relaxed))
}

/// The kind of cross-iteration dependence a conflict represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictKind {
    /// An element is written in one iteration and exposed-read in another
    /// (flow or anti dependence, depending on direction).
    FlowOrAnti,
    /// An element is written in two or more different iterations (output
    /// dependence). Removable by privatization when no exposed reads exist.
    Output,
}

/// A dependence found by the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conflict {
    /// Element index in the tested array.
    pub element: usize,
    /// Dependence class.
    pub kind: ConflictKind,
}

/// Outcome of the PD-test analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdVerdict {
    /// The loop (valid iterations only) was a correct DOALL as executed.
    pub doall: bool,
    /// The loop is a correct DOALL if the tested array is privatized
    /// (with last-value copy-out for live arrays).
    pub privatized_doall: bool,
    /// Conflicting elements (capped by the caller-supplied limit).
    pub conflicts: Vec<Conflict>,
}

impl PdVerdict {
    /// True when the speculative parallel execution must be discarded and
    /// the loop re-executed sequentially, even allowing privatization.
    #[inline]
    pub fn failed(&self) -> bool {
        !self.privatized_doall
    }
}

/// Shadow arrays for one shared array of `m` elements.
#[derive(Debug)]
pub struct Shadow {
    w: Vec<AtomicU64>,
    r: Vec<AtomicU64>,
    total_writes: AtomicU64,
    total_reads: AtomicU64,
}

impl Shadow {
    /// Creates unmarked shadows for an array of `m` elements.
    pub fn new(m: usize) -> Self {
        Shadow {
            w: (0..m)
                .map(|_| AtomicU64::new(pack(UNMARKED, UNMARKED)))
                .collect(),
            r: (0..m)
                .map(|_| AtomicU64::new(pack(UNMARKED, UNMARKED)))
                .collect(),
            total_writes: AtomicU64::new(0),
            total_reads: AtomicU64::new(0),
        }
    }

    /// Number of shadowed elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// Whether the shadow covers zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Total dynamic accesses marked so far (the paper's `a`, used by the
    /// cost model to size `Td` and `Ta`).
    pub fn total_accesses(&self) -> u64 {
        self.total_writes.load(Ordering::Relaxed) + self.total_reads.load(Ordering::Relaxed)
    }

    /// Begins marking for iteration `iter`. The returned marker is meant to
    /// live on the worker executing that iteration; it tracks which
    /// elements the iteration has written so far, to classify reads as
    /// exposed or covered.
    ///
    /// # Panics
    /// Panics if `iter >= u32::MAX − 1` (stamp space).
    pub fn iteration(&self, iter: usize) -> IterMarker<'_> {
        let iter32 = u32::try_from(iter).expect("iteration fits in u32");
        assert!(iter32 < UNMARKED, "iteration stamp space exhausted");
        IterMarker {
            shadow: self,
            iter: iter32,
            written: WriteSet::new(),
            pending_writes: 0,
            pending_reads: 0,
        }
    }

    /// Filtered predicates for the 64-element word starting at `base`,
    /// for `LI = li`. Returns three bitmasks over the word's elements:
    /// `(multi_valid_write, exposed_outside_write, overshoot_hazard)` —
    /// bit `k` describes element `base + k`.
    ///
    /// The predicate evaluation is branch-free: every element costs two
    /// relaxed 64-bit loads and a fixed handful of compares/shifts, so
    /// the sweep over a clean (conflict-free) shadow never mispredicts.
    fn word_state(&self, base: usize, li: u32) -> (u64, u64, u64) {
        let lanes = (self.len() - base).min(64);
        let mut m_multi = 0u64;
        let mut m_exposed = 0u64;
        let mut m_hazard = 0u64;
        for k in 0..lanes {
            let (w1, w2) = stamps(&self.w[base + k]);
            let (r1, r2) = stamps(&self.r[base + k]);
            let has_write = w1 <= li;
            let multi_write = w2 <= li;
            // ∃ r ∈ ER_f, w ∈ W_f with r ≠ w: a write and an exposed read
            // in different iterations (cross-iteration flow/anti
            // dependence, and a violation of the privatization
            // criterion). With a single filtered writer `w1`, the only
            // harmless shape is ER_f = {w1}.
            let exposed_outside_write =
                has_write && r1 <= li && (multi_write || r1 != w1 || r2 <= li);
            // Overshoot hazard (in-place speculation only): an element
            // written by an *overshot* iteration while also touched by a
            // *valid* one. The valid read may have observed the doomed
            // value, or the valid write may have been clobbered after its
            // stamp was recorded — the undo pass restores neither. (With
            // ≥3 writers straddling LI the two-stamp pair cannot see the
            // overshot one, but then `w2 ≤ li` already fails the DOALL
            // via the output dependence, so the verdict stays exact.)
            let overshot_write = (w1 != UNMARKED && w1 > li) || (w2 != UNMARKED && w2 > li);
            let valid_access = has_write || r1 <= li;
            let overshoot_hazard = overshot_write && valid_access;
            m_multi |= (multi_write as u64) << k;
            m_exposed |= (exposed_outside_write as u64) << k;
            m_hazard |= (overshoot_hazard as u64) << k;
        }
        (m_multi, m_exposed, m_hazard)
    }

    /// Runs the post-execution analysis in parallel on `pool`.
    ///
    /// `last_valid` is the last valid iteration (marks stamped later are
    /// ignored); `None` means the loop did not overshoot. At most
    /// `max_conflicts` conflicting elements are reported (the verdict
    /// booleans always reflect *all* elements).
    pub fn analyze(
        &self,
        pool: &Pool,
        last_valid: Option<usize>,
        max_conflicts: usize,
    ) -> PdVerdict {
        self.analyze_rec(pool, last_valid, max_conflicts, &wlp_obs::NoopRecorder)
    }

    /// [`Shadow::analyze`] with observability: the analysis is reported to
    /// `rec` as one `PdAnalyze` event carrying the marked access count and
    /// the measured analysis time (`Ta`). With [`wlp_obs::NoopRecorder`] —
    /// which is what [`Shadow::analyze`] passes — the probe compiles away.
    pub fn analyze_rec<R: wlp_obs::Recorder>(
        &self,
        pool: &Pool,
        last_valid: Option<usize>,
        max_conflicts: usize,
        rec: &R,
    ) -> PdVerdict {
        let t0 = R::ENABLED.then(std::time::Instant::now);
        let verdict = self.analyze_inner(pool, last_valid, max_conflicts);
        if R::ENABLED {
            let cost = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
            rec.record(
                0,
                wlp_obs::Event::PdAnalyze {
                    accesses: self.total_accesses(),
                    cost,
                },
            );
        }
        verdict
    }

    fn analyze_inner(
        &self,
        pool: &Pool,
        last_valid: Option<usize>,
        max_conflicts: usize,
    ) -> PdVerdict {
        let li: u32 = match last_valid {
            Some(v) => u32::try_from(v).expect("iteration fits in u32"),
            None => UNMARKED - 1,
        };

        #[derive(Clone)]
        struct Acc {
            doall: bool,
            privatized: bool,
            conflicts: Vec<Conflict>,
        }

        let max_c = max_conflicts;
        // Fold over 64-element words, not elements: the clean-word case
        // (no dependence anywhere in the word) reduces to three mask ORs
        // and one zero test, and conflict enumeration touches only the
        // set bits via trailing_zeros.
        let words = self.len().div_ceil(64);
        let acc = parallel_fold(
            pool,
            words,
            Acc {
                doall: true,
                privatized: true,
                conflicts: Vec::new(),
            },
            |mut acc, wi| {
                let base = wi * 64;
                let (m_multi, m_exposed, m_hazard) = self.word_state(base, li);
                let mut any = m_multi | m_exposed | m_hazard;
                if any == 0 {
                    return acc;
                }
                acc.doall = false;
                acc.privatized &= m_exposed == 0;
                // Per element, report in the fixed order the sequential
                // analysis used: overshoot hazard (unsound to keep the
                // in-place result; privatized execution is unaffected
                // because overshot writes landed in private overlays and
                // are filtered at copy-out), then output dependence, then
                // exposed cross-iteration read.
                while any != 0 && acc.conflicts.len() < max_c {
                    let k = any.trailing_zeros() as usize;
                    any &= any - 1;
                    let bit = 1u64 << k;
                    let e = base + k;
                    if m_hazard & bit != 0 && acc.conflicts.len() < max_c {
                        acc.conflicts.push(Conflict {
                            element: e,
                            kind: ConflictKind::FlowOrAnti,
                        });
                    }
                    if m_multi & bit != 0 && acc.conflicts.len() < max_c {
                        acc.conflicts.push(Conflict {
                            element: e,
                            kind: ConflictKind::Output,
                        });
                    }
                    if m_exposed & bit != 0 && acc.conflicts.len() < max_c {
                        acc.conflicts.push(Conflict {
                            element: e,
                            kind: ConflictKind::FlowOrAnti,
                        });
                    }
                }
                acc
            },
            |mut a, b| {
                a.doall &= b.doall;
                a.privatized &= b.privatized;
                for c in b.conflicts {
                    if a.conflicts.len() >= max_c {
                        break;
                    }
                    a.conflicts.push(c);
                }
                a
            },
        );

        PdVerdict {
            doall: acc.doall,
            privatized_doall: acc.privatized,
            conflicts: acc.conflicts,
        }
    }

    /// Clears all marks for reuse across strips or loop invocations.
    pub fn reset(&mut self) {
        for cell in self.w.iter_mut().chain(self.r.iter_mut()) {
            *cell.get_mut() = pack(UNMARKED, UNMARKED);
        }
        *self.total_writes.get_mut() = 0;
        *self.total_reads.get_mut() = 0;
    }
}

/// How many distinct written elements an [`IterMarker`] tracks inline
/// before spilling to a heap set. Loop bodies in the paper's workloads
/// write one or two shared elements per iteration; eight covers them with
/// no allocation and no hashing.
const INLINE_WRITES: usize = 8;

/// The covered-write set of one iteration: a tiny inline array scanned
/// linearly, spilling to a [`HashSet`] only past [`INLINE_WRITES`]
/// distinct elements. The inline scan beats hashing at these sizes and
/// keeps `Shadow::iteration` allocation-free.
#[derive(Debug)]
enum WriteSet {
    Inline {
        buf: [usize; INLINE_WRITES],
        len: usize,
    },
    Spilled(HashSet<usize>),
}

impl WriteSet {
    #[inline]
    fn new() -> Self {
        WriteSet::Inline {
            buf: [0; INLINE_WRITES],
            len: 0,
        }
    }

    #[inline]
    fn contains(&self, e: usize) -> bool {
        match self {
            WriteSet::Inline { buf, len } => buf[..*len].contains(&e),
            WriteSet::Spilled(set) => set.contains(&e),
        }
    }

    /// Inserts `e`; returns `true` when it was not already present.
    #[inline]
    fn insert(&mut self, e: usize) -> bool {
        match self {
            WriteSet::Inline { buf, len } => {
                if buf[..*len].contains(&e) {
                    return false;
                }
                if *len < INLINE_WRITES {
                    buf[*len] = e;
                    *len += 1;
                } else {
                    let mut set: HashSet<usize> = buf.iter().copied().collect();
                    set.insert(e);
                    *self = WriteSet::Spilled(set);
                }
                true
            }
            WriteSet::Spilled(set) => set.insert(e),
        }
    }
}

/// Marks accesses for one iteration. Create with [`Shadow::iteration`].
///
/// Call order matters within an iteration: a read is *exposed* unless this
/// marker has already seen a write to the same element.
///
/// Access totals are buffered on the marker and flushed to the shared
/// [`Shadow`] counters in one `fetch_add` per counter when the marker
/// drops, so a dense loop body costs two shared RMWs per *iteration*
/// instead of one per *access*. [`Shadow::total_accesses`] is therefore
/// only meaningful once the iteration's marker has been dropped — which
/// the region join guarantees before any post-pass reads it.
#[derive(Debug)]
pub struct IterMarker<'a> {
    shadow: &'a Shadow,
    iter: u32,
    written: WriteSet,
    pending_writes: u64,
    pending_reads: u64,
}

impl IterMarker<'_> {
    /// Records a read of element `e`.
    pub fn mark_read(&mut self, e: usize) {
        self.pending_reads += 1;
        if !self.written.contains(e) {
            insert_stamp(&self.shadow.r[e], self.iter);
        }
    }

    /// Records a write of element `e`.
    pub fn mark_write(&mut self, e: usize) {
        self.pending_writes += 1;
        if self.written.insert(e) {
            insert_stamp(&self.shadow.w[e], self.iter);
        }
    }

    /// The iteration this marker stamps with.
    #[inline]
    pub fn iter(&self) -> usize {
        self.iter as usize
    }
}

impl Drop for IterMarker<'_> {
    fn drop(&mut self) {
        if self.pending_writes != 0 {
            self.shadow
                .total_writes
                .fetch_add(self.pending_writes, Ordering::Relaxed);
        }
        if self.pending_reads != 0 {
            self.shadow
                .total_reads
                .fetch_add(self.pending_reads, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Pool {
        Pool::new(4)
    }

    #[test]
    fn disjoint_writes_are_a_doall() {
        let sh = Shadow::new(16);
        for i in 0..16 {
            let mut m = sh.iteration(i);
            m.mark_write(i);
            m.mark_read(i); // covered read
        }
        let v = sh.analyze(&pool(), None, 8);
        assert!(v.doall);
        assert!(v.privatized_doall);
        assert!(v.conflicts.is_empty());
    }

    #[test]
    fn cross_iteration_flow_fails_both() {
        let sh = Shadow::new(4);
        sh.iteration(0).mark_write(2);
        sh.iteration(1).mark_read(2); // exposed read of another iter's write
        let v = sh.analyze(&pool(), None, 8);
        assert!(!v.doall);
        assert!(!v.privatized_doall);
        assert_eq!(
            v.conflicts,
            vec![Conflict {
                element: 2,
                kind: ConflictKind::FlowOrAnti
            }]
        );
    }

    #[test]
    fn output_dependence_is_rescued_by_privatization() {
        let sh = Shadow::new(4);
        // two iterations write element 1, neither exposed-reads it
        {
            let mut m = sh.iteration(0);
            m.mark_write(1);
            m.mark_read(1); // covered
        }
        sh.iteration(5).mark_write(1);
        let v = sh.analyze(&pool(), None, 8);
        assert!(!v.doall);
        assert!(v.privatized_doall);
        assert_eq!(v.conflicts[0].kind, ConflictKind::Output);
    }

    #[test]
    fn read_before_write_same_single_iteration_is_fine() {
        // Only iteration 3 touches element 0: reads it, then writes it.
        // Loop-independent anti dependence — still a valid DOALL.
        let sh = Shadow::new(1);
        let mut m = sh.iteration(3);
        m.mark_read(0);
        m.mark_write(0);
        let v = sh.analyze(&pool(), None, 8);
        assert!(v.doall);
        assert!(v.privatized_doall);
    }

    #[test]
    fn read_before_write_plus_other_reader_fails() {
        let sh = Shadow::new(1);
        {
            let mut m = sh.iteration(3);
            m.mark_read(0);
            m.mark_write(0);
        }
        sh.iteration(7).mark_read(0); // exposed read in another iteration
        let v = sh.analyze(&pool(), None, 8);
        assert!(!v.doall);
        assert!(!v.privatized_doall);
    }

    #[test]
    fn read_only_elements_never_conflict() {
        let sh = Shadow::new(8);
        for i in 0..20 {
            sh.iteration(i).mark_read(i % 8);
        }
        let v = sh.analyze(&pool(), None, 8);
        assert!(v.doall);
    }

    #[test]
    fn overshoot_filtering_ignores_late_marks() {
        let sh = Shadow::new(4);
        sh.iteration(2).mark_write(0);
        sh.iteration(9).mark_read(0); // conflicting, but iteration 9 overshot
        let bad = sh.analyze(&pool(), None, 8);
        assert!(!bad.doall);
        let good = sh.analyze(&pool(), Some(5), 8);
        assert!(good.doall, "marks past LI=5 must be ignored");
    }

    #[test]
    fn overshoot_filtering_is_exact_with_two_stamps() {
        // W = {3, 10}: with LI = 5 only iteration 3 remains a valid writer,
        // but the overshot write by 10 may have clobbered 3's value after
        // its stamp was recorded — unsound to keep in place (doall fails),
        // yet perfectly privatizable (the overlay confines iteration 10).
        let sh = Shadow::new(1);
        sh.iteration(3).mark_write(0);
        sh.iteration(10).mark_write(0);
        assert!(!sh.analyze(&pool(), None, 8).doall);
        let v = sh.analyze(&pool(), Some(5), 8);
        assert!(!v.doall, "overshoot hazard must fail in-place speculation");
        assert!(v.privatized_doall, "privatized execution is immune");
        // W = {3, 4}: LI = 5 keeps both → output dependence.
        let sh2 = Shadow::new(1);
        sh2.iteration(3).mark_write(0);
        sh2.iteration(4).mark_write(0);
        let v = sh2.analyze(&pool(), Some(5), 8);
        assert!(!v.doall);
        assert!(v.privatized_doall);
    }

    #[test]
    fn overshot_write_to_untouched_element_is_harmless() {
        // only overshot iterations write e: the undo restores the
        // checkpoint and nobody valid observed anything
        let sh = Shadow::new(1);
        sh.iteration(9).mark_write(0);
        sh.iteration(11).mark_write(0);
        let v = sh.analyze(&pool(), Some(5), 8);
        assert!(v.doall);
        assert!(v.privatized_doall);
    }

    #[test]
    fn valid_read_with_overshot_writer_is_a_hazard() {
        // iteration 2 (valid) reads e; iteration 9 (overshot) writes it —
        // the read may have observed the doomed value
        let sh = Shadow::new(1);
        sh.iteration(2).mark_read(0);
        sh.iteration(9).mark_write(0);
        let v = sh.analyze(&pool(), Some(5), 8);
        assert!(!v.doall);
        assert!(v.privatized_doall, "the overlay shields the read");
    }

    #[test]
    fn exposed_read_in_writing_iteration_plus_late_read_filters() {
        // ER = {3, 9}, W = {3}. With LI = 5: ER_f = {3} ⊆ W_f → valid.
        let sh = Shadow::new(1);
        {
            let mut m = sh.iteration(3);
            m.mark_read(0);
            m.mark_write(0);
        }
        sh.iteration(9).mark_read(0);
        assert!(!sh.analyze(&pool(), None, 8).doall);
        assert!(sh.analyze(&pool(), Some(5), 8).doall);
    }

    #[test]
    fn covered_reads_do_not_mark_exposed() {
        let sh = Shadow::new(2);
        {
            let mut m = sh.iteration(0);
            m.mark_write(1);
            m.mark_read(1); // covered: must not create an ER mark
        }
        sh.iteration(4).mark_write(1); // second writer
        let v = sh.analyze(&pool(), None, 8);
        assert!(!v.doall); // output dep
        assert!(
            v.privatized_doall,
            "covered read must not block privatization"
        );
    }

    #[test]
    fn covered_reads_stay_covered_past_the_inline_spill() {
        // One iteration writes more distinct elements than the inline
        // write-set holds, then reads every one of them: all reads are
        // covered, so a second writer per element must still leave the
        // loop privatizable.
        let n = INLINE_WRITES * 3;
        let sh = Shadow::new(n);
        {
            let mut m = sh.iteration(0);
            for e in 0..n {
                m.mark_write(e);
            }
            for e in 0..n {
                m.mark_read(e); // covered, before AND after the spill
            }
        }
        for e in 0..n {
            sh.iteration(4).mark_write(e);
        }
        let v = sh.analyze(&pool(), None, n);
        assert!(!v.doall, "double writes are an output dependence");
        assert!(
            v.privatized_doall,
            "spilled write-set must keep classifying reads as covered"
        );
        assert_eq!(sh.total_accesses(), (3 * n) as u64);
    }

    #[test]
    fn conflicts_report_in_element_order_across_words() {
        // Elements straddling several 64-bit sweep words, each with an
        // output dependence: the report must stay in ascending element
        // order exactly like the elementwise analysis produced.
        let picks = [3usize, 63, 64, 65, 130, 200];
        let sh = Shadow::new(256);
        for &e in &picks {
            sh.iteration(0).mark_write(e);
            sh.iteration(1).mark_write(e);
        }
        let v = sh.analyze(&pool(), None, 16);
        let got: Vec<usize> = v.conflicts.iter().map(|c| c.element).collect();
        assert_eq!(got, picks.to_vec());
        assert!(v.conflicts.iter().all(|c| c.kind == ConflictKind::Output));
    }

    #[test]
    fn stamp_insertion_keeps_two_smallest_distinct() {
        let cell = AtomicU64::new(pack(UNMARKED, UNMARKED));
        for t in [7u32, 3, 7, 9, 5, 3, 1] {
            insert_stamp(&cell, t);
        }
        assert_eq!(stamps(&cell), (1, 3));
    }

    #[test]
    fn concurrent_marking_is_consistent() {
        let sh = Shadow::new(64);
        let p = Pool::new(8);
        p.run(|vpn| {
            // each worker is "iterations" vpn, vpn+8, ... writing disjoint cells
            for k in 0..8 {
                let iter = vpn + 8 * k;
                let mut m = sh.iteration(iter);
                m.mark_write(iter);
                m.mark_read(iter);
            }
        });
        let v = sh.analyze(&p, None, 8);
        assert!(v.doall);
        assert_eq!(sh.total_accesses(), 128);
    }

    #[test]
    fn reset_clears_marks() {
        let mut sh = Shadow::new(2);
        sh.iteration(0).mark_write(0);
        sh.iteration(1).mark_read(0);
        assert!(!sh.analyze(&pool(), None, 8).doall);
        sh.reset();
        assert!(sh.analyze(&pool(), None, 8).doall);
        assert_eq!(sh.total_accesses(), 0);
    }

    #[test]
    fn conflict_cap_limits_report_not_verdict() {
        let sh = Shadow::new(32);
        for e in 0..32 {
            sh.iteration(0).mark_write(e);
            sh.iteration(1).mark_write(e);
        }
        let v = sh.analyze(&pool(), None, 4);
        assert!(!v.doall);
        assert_eq!(v.conflicts.len(), 4);
    }
}
