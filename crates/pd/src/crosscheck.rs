//! Cross-validation of *static* safety claims against the dynamic PD
//! machinery.
//!
//! A static certifier (e.g. `wlp-analyze`) may claim that a loop is a
//! DOALL, or a DOALL after privatization, without running it. This module
//! replays a concrete per-iteration access log through **both** dynamic
//! checkers — the brute-force [`oracle`](crate::oracle) and the production
//! [`Shadow`] analysis — and falsifies any claim the execution contradicts.
//! A falsified certificate is a hard failure: it means the static analysis
//! would have licensed an unsound parallel execution.

use crate::oracle::{oracle_verdict, Access};
use crate::shadow::Shadow;
use wlp_runtime::Pool;

/// The statically certified properties to validate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Claims {
    /// The loop was certified a valid DOALL as-is.
    pub doall: bool,
    /// The loop was certified a valid DOALL after privatization.
    pub privatized_doall: bool,
}

/// A claim the dynamic execution contradicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Falsified {
    /// Which claim failed (`"doall"`, `"privatized_doall"`, or
    /// `"shadow_agreement"` when the two dynamic checkers disagree —
    /// a bug in this crate rather than in the certifier).
    pub claim: &'static str,
    /// Human-readable evidence.
    pub detail: String,
}

impl std::fmt::Display for Falsified {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "falsified static claim `{}`: {}",
            self.claim, self.detail
        )
    }
}

impl std::error::Error for Falsified {}

/// Replays `iterations` (per-iteration access logs, program order) into a
/// [`Shadow`] sized to the touched elements.
pub fn replay(iterations: &[Vec<Access>]) -> Shadow {
    let m = iterations
        .iter()
        .flatten()
        .map(|a| match *a {
            Access::Read(e) | Access::Write(e) => e + 1,
        })
        .max()
        .unwrap_or(0);
    let sh = Shadow::new(m);
    for (i, accs) in iterations.iter().enumerate() {
        let mut marker = sh.iteration(i);
        for acc in accs {
            match *acc {
                Access::Read(e) => marker.mark_read(e),
                Access::Write(e) => marker.mark_write(e),
            }
        }
    }
    sh
}

/// Validates `claims` against one concrete execution.
///
/// `last_valid` restricts the oracle and the shadow analysis to iterations
/// `0..=last_valid` (the overshoot cut), exactly as at run time. The log is
/// driven through the oracle *and* through [`Shadow::analyze`]; the two
/// must agree with each other, and both must confirm every claim.
pub fn crosscheck(
    iterations: &[Vec<Access>],
    last_valid: Option<usize>,
    claims: Claims,
) -> Result<(), Falsified> {
    let (doall, privatized) = oracle_verdict(iterations, last_valid);

    let sh = replay(iterations);
    let v = sh.analyze(&Pool::new(2), last_valid, 16);
    if v.doall != doall || v.privatized_doall != privatized {
        return Err(Falsified {
            claim: "shadow_agreement",
            detail: format!(
                "oracle says (doall={doall}, privatized={privatized}) but shadow says \
                 (doall={}, privatized={}) over {} iterations",
                v.doall,
                v.privatized_doall,
                iterations.len()
            ),
        });
    }

    if claims.doall && !doall {
        return Err(Falsified {
            claim: "doall",
            detail: format!(
                "certified DOALL, but the execution carries a cross-iteration \
                 dependence (conflicts: {:?})",
                v.conflicts
            ),
        });
    }
    if claims.privatized_doall && !privatized {
        return Err(Falsified {
            claim: "privatized_doall",
            detail: format!(
                "certified privatizable, but a read is exposed across iterations \
                 (conflicts: {:?})",
                v.conflicts
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use Access::{Read, Write};

    #[test]
    fn honest_doall_claim_passes() {
        let iters = vec![vec![Write(0)], vec![Write(1)], vec![Write(2)]];
        let claims = Claims {
            doall: true,
            privatized_doall: true,
        };
        assert!(crosscheck(&iters, None, claims).is_ok());
    }

    #[test]
    fn false_doall_claim_is_falsified() {
        let iters = vec![vec![Write(0)], vec![Read(0)]];
        let err = crosscheck(
            &iters,
            None,
            Claims {
                doall: true,
                privatized_doall: false,
            },
        )
        .unwrap_err();
        assert_eq!(err.claim, "doall");
    }

    #[test]
    fn privatization_claim_checks_exposed_reads() {
        // tmp written-then-read per iteration: output deps only
        let ok = vec![vec![Write(9), Read(9)], vec![Write(9), Read(9)]];
        assert!(crosscheck(
            &ok,
            None,
            Claims {
                doall: false,
                privatized_doall: true
            }
        )
        .is_ok());
        // exposed first read: privatization is unsound
        let bad = vec![vec![Read(9), Write(9)], vec![Write(9)]];
        let err = crosscheck(
            &bad,
            None,
            Claims {
                doall: false,
                privatized_doall: true,
            },
        )
        .unwrap_err();
        assert_eq!(err.claim, "privatized_doall");
    }

    #[test]
    fn overshoot_cut_is_honored() {
        let iters = vec![vec![Write(0)], vec![Read(0)]];
        // iteration 1 overshot: the dependence never happened
        assert!(crosscheck(
            &iters,
            Some(0),
            Claims {
                doall: true,
                privatized_doall: true
            }
        )
        .is_ok());
    }

    #[test]
    fn no_claims_still_verifies_shadow_agreement() {
        let iters = vec![vec![Write(3), Read(3)], vec![Read(3)]];
        assert!(crosscheck(&iters, None, Claims::default()).is_ok());
    }
}
